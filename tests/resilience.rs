//! The resilience suite: every injected fault must map to a typed error —
//! never a hang, an abort, or poisoned cross-query state.
//!
//! Faults are injected through the deterministic [`FaultPlan`] harness
//! (worker panics, forced draw failures), through adversarial
//! zero-acceptance workloads from `cdb-workloads::pathological`, and through
//! artificially starved [`QueryBudget`]s. Each test asserts three things:
//! the fault surfaces as the *right* [`SpatialDbError`] variant, unaffected
//! work completes, and the shared database keeps answering correctly
//! afterwards.
//!
//! Set `CDB_RESILIENCE_QUICK=1` (the `ci.sh --quick` default) to run a
//! reduced plan: smaller batches, fewer thread counts.

use cdb_bench::load::{class_stats, render_report, run, schedule, LoadError, LoadSpec};
use cdb_bench::report;
use cdb_constraint::GeneralizedRelation;
use cdb_core::{QueryPhase, SpatialDatabase, SpatialDbError};
use cdb_sampler::{
    BudgetTrip, CancelToken, DifferenceGenerator, FaultPlan, GeneratorParams,
    IntersectionGenerator, PreparedStore, QueryBudget, RelationGenerator, SeedSequence,
};
use cdb_workloads::pathological;
use cdb_workloads::sessions::SessionMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick() -> bool {
    std::env::var("CDB_RESILIENCE_QUICK").is_ok_and(|v| v != "0")
}

fn batch_n() -> usize {
    if quick() {
        16
    } else {
        48
    }
}

fn thread_counts() -> &'static [usize] {
    if quick() {
        &[1, 4]
    } else {
        &[1, 2, 8, 0]
    }
}

fn params() -> GeneratorParams {
    GeneratorParams::fast()
}

fn sample_db() -> SpatialDatabase {
    let mut db = SpatialDatabase::with_params(params());
    db.insert(
        "R",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
    );
    db.insert(
        "U",
        GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
            .union(&GeneralizedRelation::from_box_f64(&[3.0], &[4.0])),
    );
    db
}

/// An injected worker panic is contained: it surfaces as
/// [`SpatialDbError::WorkerPanicked`], the surviving workers' items all
/// complete, the containment is counted, and the same database keeps
/// serving afterwards.
#[test]
fn injected_worker_panic_is_contained_and_typed() {
    let db = sample_db();
    let seq = SeedSequence::new(0xFA117);
    let n = 16;
    {
        let _plan = FaultPlan::new(1).with_worker_panic_at(5).install();
        let batch = db
            .approx_generate_batch_partial("R", n, &seq, 4, &QueryBudget::unlimited())
            .expect("the relation itself is fine");
        match &batch.error {
            Some(SpatialDbError::WorkerPanicked { payload, .. }) => {
                assert!(
                    payload.starts_with("injected"),
                    "unexpected payload: {payload}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Worker 1 owns items 4..8 (chunked fan-out) and dies at item 5:
        // item 4 completed first, items 5..8 are lost, everyone else runs
        // to completion.
        assert_eq!(batch.completed, n - 3, "survivors did not complete");
        assert!(batch.results[4].is_some());
        assert!(batch.results[5].is_none() && batch.results[7].is_none());
        assert!(db.store_stats().panics_recovered >= 1);
    }
    // The fault plan is gone; the shared database is not poisoned.
    let mut rng = StdRng::seed_from_u64(3);
    let p = db.approx_generate("R", &mut rng).unwrap();
    assert!(db.relation("R").unwrap().contains_f64(&p));
    let clean = db
        .approx_generate_batch_partial("R", n, &seq, 4, &QueryBudget::unlimited())
        .unwrap();
    assert!(clean.error.is_none());
    assert_eq!(clean.completed, n);
}

/// A forced draw failure (the oracle/LP-failure stand-in) maps to
/// [`SpatialDbError::GenerationFailed`] with the relation name and phase —
/// never to a panic or a budget error.
#[test]
fn forced_draw_failure_is_a_typed_generation_failure() {
    let db = sample_db();
    let mut rng = StdRng::seed_from_u64(5);
    // Warm the prepared store first, so the forced failure hits the draw
    // itself rather than being consumed during preparation.
    db.approx_generate("R", &mut rng).unwrap();
    {
        let _plan = FaultPlan::new(2).with_forced_draw_failures(1).install();
        match db.approx_generate("R", &mut rng) {
            Err(SpatialDbError::GenerationFailed {
                relation, phase, ..
            }) => {
                assert_eq!(relation, "R");
                assert_eq!(phase, QueryPhase::Sampling);
            }
            other => panic!("expected GenerationFailed, got {other:?}"),
        }
    }
    // The single injected failure is consumed; the next draw succeeds.
    db.approx_generate("R", &mut rng).unwrap();
}

/// A zero-acceptance composition under an attempt budget gives up promptly
/// with a typed trip instead of grinding through the full retry cap.
#[test]
fn zero_acceptance_intersection_trips_the_attempt_budget() {
    let [a, b] = pathological::sliver_intersection(1e-6);
    let mut gen = IntersectionGenerator::new(&[a, b], params()).unwrap();
    gen.set_budget(QueryBudget::unlimited().with_max_attempts(200));
    let mut rng = StdRng::seed_from_u64(7);
    assert!(gen.sample(&mut rng).is_none());
    assert_eq!(gen.budget_trip(), Some(BudgetTrip::Attempts));
}

/// The vanishing difference trips the attempt budget long before the
/// `retry_rounds × COMPOSE_ATTEMPT_FACTOR` loop cap would give up.
#[test]
fn vanishing_difference_trips_the_attempt_budget() {
    let (s1, s2) = pathological::vanishing_difference(1e-7);
    let mut gen = DifferenceGenerator::new(&s1, &s2, params()).unwrap();
    gen.set_budget(QueryBudget::unlimited().with_max_attempts(64));
    let mut rng = StdRng::seed_from_u64(9);
    assert!(gen.sample(&mut rng).is_none());
    assert_eq!(gen.budget_trip(), Some(BudgetTrip::Attempts));
}

/// The public budgeted entry point reports attempt exhaustion with the
/// relation's name and the trip cause.
#[test]
fn budgeted_generate_reports_attempt_exhaustion() {
    let db = sample_db();
    let budget = QueryBudget::unlimited().with_max_attempts(0);
    let mut rng = StdRng::seed_from_u64(13);
    match db.approx_generate_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted {
            relation, cause, ..
        }) => {
            assert_eq!(relation, "R");
            assert_eq!(cause, BudgetTrip::Attempts);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

/// A cancelled token is observed at the next cooperative boundary and
/// reported as a cancellation, not as a generic failure.
#[test]
fn cancelled_token_is_reported_as_cancellation() {
    let db = sample_db();
    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::unlimited().with_cancel(token);
    let mut rng = StdRng::seed_from_u64(11);
    match db.approx_generate_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted { cause, .. }) => {
            assert_eq!(cause, BudgetTrip::Cancelled);
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    // Volume estimation observes the same token.
    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::unlimited().with_cancel(token);
    match db.approx_volume_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted { cause, .. }) => {
            assert_eq!(cause, BudgetTrip::Cancelled);
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
}

/// A step budget too small for a single walk chunk exhausts identically —
/// same outcome vector, same typed error — for every thread count.
#[test]
fn starved_step_budget_exhausts_identically_across_thread_counts() {
    let db = sample_db();
    let seq = SeedSequence::new(0x57A2);
    let budget = QueryBudget::unlimited().with_max_steps(3);
    let n = batch_n();
    let baseline = db
        .approx_generate_batch_partial("R", n, &seq, 1, &budget)
        .unwrap();
    assert_eq!(baseline.completed, 0);
    assert!(baseline.results.iter().all(|r| r.is_none()));
    match &baseline.error {
        Some(SpatialDbError::BudgetExhausted {
            cause, completed, ..
        }) => {
            assert_eq!(*cause, BudgetTrip::Steps);
            assert_eq!(*completed, 0);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    for &threads in thread_counts() {
        let run = db
            .approx_generate_batch_partial("R", n, &seq, threads, &budget)
            .unwrap();
        assert_eq!(
            baseline.results, run.results,
            "starved batch differs at {threads} threads"
        );
        assert_eq!(run.completed, 0);
    }
}

/// A poisoned prepared-store shard is discarded and rebuilt: the next
/// lookup succeeds and the rebuild is counted.
#[test]
fn poisoned_store_shard_is_rebuilt_not_propagated() {
    let _quiet = FaultPlan::new(0).install();
    let store: PreparedStore<u64, u64> = PreparedStore::new(8);
    store.get_or_prepare(&1, || 111);
    store.get_or_prepare(&2, || 222);
    store.poison_shard(&1);
    // Recovery is on-demand and local to the poisoned shard.
    assert_eq!(*store.get_or_prepare(&1, || 111), 111);
    assert_eq!(*store.get_or_prepare(&2, || 222), 222);
    let stats = store.stats();
    assert!(stats.shards_rebuilt >= 1, "rebuild not recorded: {stats:?}");
}

/// The fault harness itself is bitwise invisible: installing and dropping
/// an empty plan changes nothing about a batch.
#[test]
fn empty_fault_plan_is_bitwise_invisible() {
    let db = sample_db();
    let seq = SeedSequence::new(0x1D1E);
    let n = batch_n();
    let baseline = db.approx_generate_batch("U", n, &seq, 4).unwrap();
    let observed = {
        let _plan = FaultPlan::new(3).install();
        db.approx_generate_batch("U", n, &seq, 4).unwrap()
    };
    assert_eq!(baseline, observed, "an empty fault plan perturbed a batch");
    let after = db.approx_generate_batch("U", n, &seq, 4).unwrap();
    assert_eq!(baseline, after);
}

/// Partial volume batches carry every completed estimate alongside the
/// first failure under budget pressure.
#[test]
fn partial_volume_batch_returns_completed_estimates() {
    let db = sample_db();
    let seq = SeedSequence::new(0x70CC5);
    // Unlimited: everything completes.
    let full = db
        .approx_volume_batch_partial("R", 4, &seq, 2, &QueryBudget::unlimited())
        .unwrap();
    assert!(full.error.is_none());
    assert_eq!(full.completed, 4);
    for v in full.results.iter().flatten() {
        assert!((v - 2.0).abs() < 1.0, "volume {v} far off");
    }
    // Starved: nothing completes, and the error is a typed trip.
    let starved = db
        .approx_volume_batch_partial("R", 4, &seq, 2, &QueryBudget::unlimited().with_max_steps(1))
        .unwrap();
    assert_eq!(starved.completed, 0);
    assert!(matches!(
        starved.error,
        Some(SpatialDbError::BudgetExhausted {
            cause: BudgetTrip::Steps,
            ..
        })
    ));
}

// ---------------------------------------------------------------------------
// The load harness under faults
// ---------------------------------------------------------------------------

fn load_db() -> (SpatialDatabase, Vec<String>) {
    let mut db = SpatialDatabase::with_params(params());
    db.insert(
        "Fast",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
    );
    db.insert(
        "Starved",
        GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 1.0]),
    );
    (db, vec!["Fast".into(), "Starved".into()])
}

/// A worker panic injected mid-load-run is contained by the harness: the
/// dead worker's remaining requests are reported as *lost* (never silently
/// dropped, never double-counted), every survivor's latency is recorded,
/// and the emitted report stays well-formed.
#[test]
fn load_run_contains_an_injected_worker_panic() {
    let (db, names) = load_db();
    let n = 32;
    // 4 client threads over 32 requests → worker 1 owns items 8..16. The
    // panic fires at item 10, so 8 and 9 complete and 10..16 are lost.
    let spec =
        LoadSpec::new(n, 8000.0, 0xFA17, SessionMix::no_reconstruction(0.7, 0.3)).with_threads(4);
    let sched = schedule(&spec, &names);
    let rep = {
        let _plan = FaultPlan::new(4).with_worker_panic_at(10).install();
        run(&db, &spec, &sched)
    };
    assert_eq!(rep.panics.len(), 1, "exactly one contained panic");
    assert_eq!(rep.panics[0].worker, 1);
    assert!(rep.panics[0].payload.starts_with("injected"));
    assert_eq!(rep.lost(), 6);
    for (i, slot) in rep.outcomes.iter().enumerate() {
        assert_eq!(
            slot.is_none(),
            (10..16).contains(&i),
            "request {i}: wrong lost/survivor state"
        );
    }

    // Per-class accounting is exact: scheduled == completed + lost, so no
    // request is dropped or double-counted, and survivors' percentiles are
    // computable.
    let stats = class_stats(&sched, &rep);
    let counts = sched.class_counts();
    assert_eq!(stats.iter().map(|s| s.lost).sum::<usize>(), 6);
    for s in &stats {
        assert_eq!(s.scheduled, s.completed + s.lost);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
    }
    assert_eq!(
        stats.iter().map(|s| s.scheduled).sum::<usize>(),
        counts.iter().sum::<usize>()
    );

    // The report still renders and parses with the lost count visible.
    let rows: Vec<(String, _)> = stats
        .into_iter()
        .map(|s| (format!("load_faulted.{}", s.class.label()), s))
        .collect();
    let parsed = report::parse_report(&render_report(&rows, true)).unwrap();
    assert_eq!(parsed.iter().filter_map(|r| r.lost).sum::<f64>(), 6.0);

    // The plan is gone: the same schedule replays clean on the shared db.
    let clean = run(&db, &spec, &sched);
    assert!(clean.panics.is_empty());
    assert_eq!(clean.lost(), 0);
}

/// A starved per-request budget on one relation degrades that relation's
/// requests into typed `BudgetExhausted` errors mid-run while the other
/// relation keeps serving; every request still resolves with a recorded
/// latency and exact per-class error accounting.
#[test]
fn load_run_survives_a_starved_per_relation_budget() {
    let (db, names) = load_db();
    let spec = LoadSpec::new(40, 8000.0, 0xB0D6, SessionMix::no_reconstruction(0.6, 0.4))
        .with_threads(2)
        .with_budget(QueryBudget::unlimited().with_max_steps(50_000_000))
        .with_budget_override("Starved", QueryBudget::unlimited().with_max_steps(3));
    let sched = schedule(&spec, &names);
    let rep = run(&db, &spec, &sched);
    assert!(rep.panics.is_empty());
    assert_eq!(rep.lost(), 0);

    let mut starved = 0usize;
    for (slot, req) in rep.outcomes.iter().zip(&sched.requests) {
        let outcome = slot.as_ref().expect("budget trips lose no requests");
        match (&outcome.result, req.relation.as_str()) {
            (Err(LoadError::Budget(BudgetTrip::Steps)), "Starved") => starved += 1,
            (Ok(_), "Fast") => {}
            (result, relation) => panic!("{relation} resolved to {result:?}"),
        }
    }
    assert!(starved > 0, "the schedule must hit the starved relation");

    // Error accounting matches exactly and the report stays well-formed.
    let stats = class_stats(&sched, &rep);
    assert_eq!(stats.iter().map(|s| s.errors).sum::<usize>(), starved);
    for s in &stats {
        assert_eq!(s.scheduled, s.completed);
        assert_eq!(s.lost, 0);
    }
    let rows: Vec<(String, _)> = stats
        .into_iter()
        .map(|s| (format!("load_starved.{}", s.class.label()), s))
        .collect();
    let parsed = report::parse_report(&render_report(&rows, true)).unwrap();
    assert_eq!(
        parsed.iter().filter_map(|r| r.errors).sum::<f64>(),
        starved as f64
    );

    // Lifting the override restores full service on the shared database.
    let healed = LoadSpec {
        budget_overrides: Default::default(),
        ..spec
    };
    let clean = run(&db, &healed, &sched);
    assert!(clean
        .outcomes
        .iter()
        .all(|s| s.as_ref().is_some_and(|o| o.result.is_ok())));
}
