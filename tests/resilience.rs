//! The resilience suite: every injected fault must map to a typed error —
//! never a hang, an abort, or poisoned cross-query state.
//!
//! Faults are injected through the deterministic [`FaultPlan`] harness
//! (worker panics, forced draw failures), through adversarial
//! zero-acceptance workloads from `cdb-workloads::pathological`, and through
//! artificially starved [`QueryBudget`]s. Each test asserts three things:
//! the fault surfaces as the *right* [`SpatialDbError`] variant, unaffected
//! work completes, and the shared database keeps answering correctly
//! afterwards.
//!
//! Set `CDB_RESILIENCE_QUICK=1` (the `ci.sh --quick` default) to run a
//! reduced plan: smaller batches, fewer thread counts.

use cdb_constraint::GeneralizedRelation;
use cdb_core::{QueryPhase, SpatialDatabase, SpatialDbError};
use cdb_sampler::{
    BudgetTrip, CancelToken, DifferenceGenerator, FaultPlan, GeneratorParams,
    IntersectionGenerator, PreparedStore, QueryBudget, RelationGenerator, SeedSequence,
};
use cdb_workloads::pathological;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick() -> bool {
    std::env::var("CDB_RESILIENCE_QUICK").is_ok_and(|v| v != "0")
}

fn batch_n() -> usize {
    if quick() {
        16
    } else {
        48
    }
}

fn thread_counts() -> &'static [usize] {
    if quick() {
        &[1, 4]
    } else {
        &[1, 2, 8, 0]
    }
}

fn params() -> GeneratorParams {
    GeneratorParams::fast()
}

fn sample_db() -> SpatialDatabase {
    let mut db = SpatialDatabase::with_params(params());
    db.insert(
        "R",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
    );
    db.insert(
        "U",
        GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
            .union(&GeneralizedRelation::from_box_f64(&[3.0], &[4.0])),
    );
    db
}

/// An injected worker panic is contained: it surfaces as
/// [`SpatialDbError::WorkerPanicked`], the surviving workers' items all
/// complete, the containment is counted, and the same database keeps
/// serving afterwards.
#[test]
fn injected_worker_panic_is_contained_and_typed() {
    let db = sample_db();
    let seq = SeedSequence::new(0xFA117);
    let n = 16;
    {
        let _plan = FaultPlan::new(1).with_worker_panic_at(5).install();
        let batch = db
            .approx_generate_batch_partial("R", n, &seq, 4, &QueryBudget::unlimited())
            .expect("the relation itself is fine");
        match &batch.error {
            Some(SpatialDbError::WorkerPanicked { payload, .. }) => {
                assert!(
                    payload.starts_with("injected"),
                    "unexpected payload: {payload}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Worker 1 owns items 4..8 (chunked fan-out) and dies at item 5:
        // item 4 completed first, items 5..8 are lost, everyone else runs
        // to completion.
        assert_eq!(batch.completed, n - 3, "survivors did not complete");
        assert!(batch.results[4].is_some());
        assert!(batch.results[5].is_none() && batch.results[7].is_none());
        assert!(db.store_stats().panics_recovered >= 1);
    }
    // The fault plan is gone; the shared database is not poisoned.
    let mut rng = StdRng::seed_from_u64(3);
    let p = db.approx_generate("R", &mut rng).unwrap();
    assert!(db.relation("R").unwrap().contains_f64(&p));
    let clean = db
        .approx_generate_batch_partial("R", n, &seq, 4, &QueryBudget::unlimited())
        .unwrap();
    assert!(clean.error.is_none());
    assert_eq!(clean.completed, n);
}

/// A forced draw failure (the oracle/LP-failure stand-in) maps to
/// [`SpatialDbError::GenerationFailed`] with the relation name and phase —
/// never to a panic or a budget error.
#[test]
fn forced_draw_failure_is_a_typed_generation_failure() {
    let db = sample_db();
    let mut rng = StdRng::seed_from_u64(5);
    // Warm the prepared store first, so the forced failure hits the draw
    // itself rather than being consumed during preparation.
    db.approx_generate("R", &mut rng).unwrap();
    {
        let _plan = FaultPlan::new(2).with_forced_draw_failures(1).install();
        match db.approx_generate("R", &mut rng) {
            Err(SpatialDbError::GenerationFailed {
                relation, phase, ..
            }) => {
                assert_eq!(relation, "R");
                assert_eq!(phase, QueryPhase::Sampling);
            }
            other => panic!("expected GenerationFailed, got {other:?}"),
        }
    }
    // The single injected failure is consumed; the next draw succeeds.
    db.approx_generate("R", &mut rng).unwrap();
}

/// A zero-acceptance composition under an attempt budget gives up promptly
/// with a typed trip instead of grinding through the full retry cap.
#[test]
fn zero_acceptance_intersection_trips_the_attempt_budget() {
    let [a, b] = pathological::sliver_intersection(1e-6);
    let mut gen = IntersectionGenerator::new(&[a, b], params()).unwrap();
    gen.set_budget(QueryBudget::unlimited().with_max_attempts(200));
    let mut rng = StdRng::seed_from_u64(7);
    assert!(gen.sample(&mut rng).is_none());
    assert_eq!(gen.budget_trip(), Some(BudgetTrip::Attempts));
}

/// The vanishing difference trips the attempt budget long before the
/// `retry_rounds × COMPOSE_ATTEMPT_FACTOR` loop cap would give up.
#[test]
fn vanishing_difference_trips_the_attempt_budget() {
    let (s1, s2) = pathological::vanishing_difference(1e-7);
    let mut gen = DifferenceGenerator::new(&s1, &s2, params()).unwrap();
    gen.set_budget(QueryBudget::unlimited().with_max_attempts(64));
    let mut rng = StdRng::seed_from_u64(9);
    assert!(gen.sample(&mut rng).is_none());
    assert_eq!(gen.budget_trip(), Some(BudgetTrip::Attempts));
}

/// The public budgeted entry point reports attempt exhaustion with the
/// relation's name and the trip cause.
#[test]
fn budgeted_generate_reports_attempt_exhaustion() {
    let db = sample_db();
    let budget = QueryBudget::unlimited().with_max_attempts(0);
    let mut rng = StdRng::seed_from_u64(13);
    match db.approx_generate_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted {
            relation, cause, ..
        }) => {
            assert_eq!(relation, "R");
            assert_eq!(cause, BudgetTrip::Attempts);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

/// A cancelled token is observed at the next cooperative boundary and
/// reported as a cancellation, not as a generic failure.
#[test]
fn cancelled_token_is_reported_as_cancellation() {
    let db = sample_db();
    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::unlimited().with_cancel(token);
    let mut rng = StdRng::seed_from_u64(11);
    match db.approx_generate_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted { cause, .. }) => {
            assert_eq!(cause, BudgetTrip::Cancelled);
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    // Volume estimation observes the same token.
    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::unlimited().with_cancel(token);
    match db.approx_volume_budgeted("R", &budget, &mut rng) {
        Err(SpatialDbError::BudgetExhausted { cause, .. }) => {
            assert_eq!(cause, BudgetTrip::Cancelled);
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
}

/// A step budget too small for a single walk chunk exhausts identically —
/// same outcome vector, same typed error — for every thread count.
#[test]
fn starved_step_budget_exhausts_identically_across_thread_counts() {
    let db = sample_db();
    let seq = SeedSequence::new(0x57A2);
    let budget = QueryBudget::unlimited().with_max_steps(3);
    let n = batch_n();
    let baseline = db
        .approx_generate_batch_partial("R", n, &seq, 1, &budget)
        .unwrap();
    assert_eq!(baseline.completed, 0);
    assert!(baseline.results.iter().all(|r| r.is_none()));
    match &baseline.error {
        Some(SpatialDbError::BudgetExhausted {
            cause, completed, ..
        }) => {
            assert_eq!(*cause, BudgetTrip::Steps);
            assert_eq!(*completed, 0);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    for &threads in thread_counts() {
        let run = db
            .approx_generate_batch_partial("R", n, &seq, threads, &budget)
            .unwrap();
        assert_eq!(
            baseline.results, run.results,
            "starved batch differs at {threads} threads"
        );
        assert_eq!(run.completed, 0);
    }
}

/// A poisoned prepared-store shard is discarded and rebuilt: the next
/// lookup succeeds and the rebuild is counted.
#[test]
fn poisoned_store_shard_is_rebuilt_not_propagated() {
    let _quiet = FaultPlan::new(0).install();
    let store: PreparedStore<u64, u64> = PreparedStore::new(8);
    store.get_or_prepare(&1, || 111);
    store.get_or_prepare(&2, || 222);
    store.poison_shard(&1);
    // Recovery is on-demand and local to the poisoned shard.
    assert_eq!(*store.get_or_prepare(&1, || 111), 111);
    assert_eq!(*store.get_or_prepare(&2, || 222), 222);
    let stats = store.stats();
    assert!(stats.shards_rebuilt >= 1, "rebuild not recorded: {stats:?}");
}

/// The fault harness itself is bitwise invisible: installing and dropping
/// an empty plan changes nothing about a batch.
#[test]
fn empty_fault_plan_is_bitwise_invisible() {
    let db = sample_db();
    let seq = SeedSequence::new(0x1D1E);
    let n = batch_n();
    let baseline = db.approx_generate_batch("U", n, &seq, 4).unwrap();
    let observed = {
        let _plan = FaultPlan::new(3).install();
        db.approx_generate_batch("U", n, &seq, 4).unwrap()
    };
    assert_eq!(baseline, observed, "an empty fault plan perturbed a batch");
    let after = db.approx_generate_batch("U", n, &seq, 4).unwrap();
    assert_eq!(baseline, after);
}

/// Partial volume batches carry every completed estimate alongside the
/// first failure under budget pressure.
#[test]
fn partial_volume_batch_returns_completed_estimates() {
    let db = sample_db();
    let seq = SeedSequence::new(0x70CC5);
    // Unlimited: everything completes.
    let full = db
        .approx_volume_batch_partial("R", 4, &seq, 2, &QueryBudget::unlimited())
        .unwrap();
    assert!(full.error.is_none());
    assert_eq!(full.completed, 4);
    for v in full.results.iter().flatten() {
        assert!((v - 2.0).abs() < 1.0, "volume {v} far off");
    }
    // Starved: nothing completes, and the error is a typed trip.
    let starved = db
        .approx_volume_batch_partial("R", 4, &seq, 2, &QueryBudget::unlimited().with_max_steps(1))
        .unwrap();
    assert_eq!(starved.completed, 0);
    assert!(matches!(
        starved.error,
        Some(SpatialDbError::BudgetExhausted {
            cause: BudgetTrip::Steps,
            ..
        })
    ));
}
