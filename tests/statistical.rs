//! Statistical acceptance harness for the randomized deliverables.
//!
//! The generators and estimators of the paper are correct *in distribution*,
//! so spot checks prove nothing: following the discipline of seeded
//! acceptance testing (cf. Mandelkern & Schultz on confidence-interval
//! construction and the Gonogo sensitivity-testing suite in PAPERS.md), every
//! gate here is a chi-square uniformity statistic or an `(ε, δ)`
//! relative-error bound evaluated on a *fixed seed tree*, so a failure is a
//! deterministic regression, never flakiness.
//!
//! Two kinds of gates, for all five generators (`DfkSampler`,
//! `UnionGenerator`, `IntersectionGenerator`, `DifferenceGenerator`,
//! `ProjectionGenerator`):
//!
//! * **uniformity** — chi-square statistics of sampled marginals against the
//!   uniform histogram, gated by the loose 0.999-quantile bound of
//!   `cdb_sampler::diagnostics`;
//! * **volume** — relative error of median-of-repeats volume estimates
//!   against closed-form box/ball/simplex volumes.
//!
//! The heavy gates are skipped when `CDB_STAT_QUICK` is set in the
//! environment (`./ci.sh --quick`) so local iteration stays fast.

use cdb_constraint::poly::PolyBody;
use cdb_constraint::{Atom, GeneralizedRelation, GeneralizedTuple};
use cdb_linalg::Vector;
use cdb_sampler::diagnostics::{
    chi_square_loose_bound, poisson_count_interval, relative_error, uniformity_chi_square,
};
use cdb_sampler::{
    CellSelection, ConvexBody, DfkSampler, DifferenceGenerator, FiberVolume, GeneratorParams,
    IntersectionGenerator, ProjectionGenerator, ProjectionParams, RelationGenerator,
    RelationVolumeEstimator, SeedSequence, UnionGenerator,
};
use cdb_workloads::polytopes;
use cdb_workloads::projection::{deep_cone, deep_cone_shifted, skewed_prism};
use std::sync::Arc;

/// `true` when the heavy statistical gates should be skipped
/// (`./ci.sh --quick` sets `CDB_STAT_QUICK`).
fn quick_mode() -> bool {
    std::env::var_os("CDB_STAT_QUICK").is_some()
}

fn params() -> GeneratorParams {
    GeneratorParams::fast()
}

/// Unwraps a batch of optional samples, requiring a high success rate.
fn successes(batch: Vec<Option<Vec<f64>>>) -> Vec<Vec<f64>> {
    let n = batch.len();
    let kept: Vec<Vec<f64>> = batch.into_iter().flatten().collect();
    assert!(
        kept.len() * 10 >= n * 9,
        "generator failure rate too high: {} of {n}",
        n - kept.len()
    );
    kept
}

/// Chi-square uniformity gate on one coordinate marginal of a sample, after
/// mapping each point through `fold` (used to fold disconnected parts onto a
/// common interval).
fn assert_marginal_uniform(
    points: &[Vec<f64>],
    fold: impl Fn(&[f64]) -> f64,
    lo: f64,
    hi: f64,
    bins: usize,
    label: &str,
) {
    let values: Vec<f64> = points.iter().map(|p| fold(p)).collect();
    let stat = uniformity_chi_square(&values, lo, hi, bins);
    let bound = chi_square_loose_bound(bins - 1);
    assert!(
        stat < bound,
        "{label}: chi-square {stat:.2} exceeds the {bound:.2} gate"
    );
}

// ---------------------------------------------------------------------------
// DfkSampler
// ---------------------------------------------------------------------------

#[test]
fn dfk_sampler_uniformity_gate() {
    if quick_mode() {
        return;
    }
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let mut rng = SeedSequence::new(1001).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let pts = sampler.sample_batch(4000, &SeedSequence::new(1002), 0);
    for p in &pts {
        assert!(square.contains_slice(p, 1e-9));
    }
    assert_marginal_uniform(&pts, |p| p[0], 0.0, 1.0, 10, "dfk x-marginal");
    assert_marginal_uniform(&pts, |p| p[1], 0.0, 1.0, 10, "dfk y-marginal");
}

#[test]
fn dfk_volume_eps_delta_gates_on_closed_forms() {
    if quick_mode() {
        return;
    }
    // Box, simplex and cross-polytope against their closed forms, in two and
    // three dimensions, through the parallel median estimator.
    for d in [2usize, 3] {
        for (name, relation, exact) in polytopes::closed_form_suite(d) {
            let tuple = &relation.tuples()[0];
            let body = ConvexBody::from_tuple(tuple).unwrap();
            let mut rng = SeedSequence::new(2000 + d as u64).setup_stream().rng();
            let sampler = DfkSampler::new(body, params(), &mut rng);
            let est =
                sampler.estimate_volume_median_batch(5, &SeedSequence::new(2100 + d as u64), 0);
            let err = relative_error(est, exact);
            assert!(
                err < 0.30,
                "{name} d={d}: estimate {est:.4} vs exact {exact:.4} (rel err {err:.3})"
            );
        }
    }
}

#[test]
fn dfk_volume_gate_on_an_oracle_backed_ball() {
    if quick_mode() {
        return;
    }
    // The E2 configuration done right: a PolyBody ball (polynomial membership
    // oracle, closed-form chords through `line_quadratic`) with a *loose*
    // certificate, so the telescoping product is exercised instead of the
    // exact-certificate shortcut.
    let d = 3;
    let exact = cdb_geometry::ball::unit_ball_volume(d);
    let ball = PolyBody::ball(&[0.0; 3], 1.0);
    let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.3);
    let mut rng = SeedSequence::new(3001).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let est = sampler.estimate_volume_median_batch(5, &SeedSequence::new(3002), 0);
    let err = relative_error(est, exact);
    assert!(
        err < 0.30,
        "oracle ball: estimate {est:.4} vs exact {exact:.4} (rel err {err:.3})"
    );
}

// ---------------------------------------------------------------------------
// UnionGenerator
// ---------------------------------------------------------------------------

#[test]
fn union_generator_uniformity_gate() {
    if quick_mode() {
        return;
    }
    // Two disjoint unit squares far apart plus an overlapping pair: fold the
    // first coordinate back onto [0, 1] and gate the marginal.
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]).union(
        &GeneralizedRelation::from_box_f64(&[10.0, 0.0], &[11.0, 1.0]),
    );
    let mut generator = UnionGenerator::new(&relation, params()).unwrap();
    let pts = successes(generator.sample_batch(3000, &SeedSequence::new(4001), 0));
    assert_marginal_uniform(
        &pts,
        |p| if p[0] > 5.0 { p[0] - 10.0 } else { p[0] },
        0.0,
        1.0,
        10,
        "union folded x-marginal",
    );
    // Each square receives about half the mass.
    let left = pts.iter().filter(|p| p[0] < 5.0).count() as f64 / pts.len() as f64;
    assert!((left - 0.5).abs() < 0.05, "left mass {left}");
}

#[test]
fn union_volume_eps_delta_gate_counts_overlaps_once() {
    if quick_mode() {
        return;
    }
    // [0,2]x[0,1] ∪ [1,3]x[0,1]: exact volume 3 (the Karp–Luby step must not
    // double count the overlap).
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0])
        .union(&GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[3.0, 1.0]));
    let mut generator = UnionGenerator::new(&relation, params()).unwrap();
    let est = generator
        .estimate_volume_median(5, &SeedSequence::new(4101), 0)
        .unwrap();
    let err = relative_error(est, 3.0);
    assert!(err < 0.25, "union volume {est:.3} (rel err {err:.3})");
}

// ---------------------------------------------------------------------------
// IntersectionGenerator
// ---------------------------------------------------------------------------

#[test]
fn intersection_generator_uniformity_and_volume_gates() {
    if quick_mode() {
        return;
    }
    // [0,2]² ∩ [1,3]² = [1,2]², exact volume 1.
    let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
    let b = GeneralizedRelation::from_box_f64(&[1.0, 1.0], &[3.0, 3.0]);
    let mut generator = IntersectionGenerator::new(&[a, b], params()).unwrap();
    let pts = successes(generator.sample_batch(2500, &SeedSequence::new(5001), 0));
    for p in &pts {
        assert!(p[0] >= 1.0 - 1e-6 && p[0] <= 2.0 + 1e-6);
        assert!(p[1] >= 1.0 - 1e-6 && p[1] <= 2.0 + 1e-6);
    }
    assert_marginal_uniform(&pts, |p| p[0], 1.0, 2.0, 8, "intersection x-marginal");
    assert_marginal_uniform(&pts, |p| p[1], 1.0, 2.0, 8, "intersection y-marginal");
    let est = generator
        .estimate_volume_median(5, &SeedSequence::new(5002), 0)
        .unwrap();
    let err = relative_error(est, 1.0);
    assert!(
        err < 0.25,
        "intersection volume {est:.3} (rel err {err:.3})"
    );
}

// ---------------------------------------------------------------------------
// DifferenceGenerator
// ---------------------------------------------------------------------------

#[test]
fn difference_generator_uniformity_and_volume_gates() {
    if quick_mode() {
        return;
    }
    // [0,3]x[0,1] minus the middle strip [1,2]x[0,1]: two unit squares. Fold
    // the right part onto [0,1] and gate the marginal; exact volume 2.
    let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[3.0, 1.0]);
    let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[2.0, 1.0]);
    let mut generator = DifferenceGenerator::new(&s1, &s2, params()).unwrap();
    let pts = successes(generator.sample_batch(2500, &SeedSequence::new(6001), 0));
    for p in &pts {
        assert!(!s2.contains_f64(p), "sample fell in the subtrahend: {p:?}");
    }
    assert_marginal_uniform(
        &pts,
        |p| if p[0] > 1.5 { p[0] - 2.0 } else { p[0] },
        0.0,
        1.0,
        10,
        "difference folded x-marginal",
    );
    let est = generator
        .estimate_volume_median(5, &SeedSequence::new(6002), 0)
        .unwrap();
    let err = relative_error(est, 2.0);
    assert!(err < 0.25, "difference volume {est:.3} (rel err {err:.3})");
}

// ---------------------------------------------------------------------------
// ProjectionGenerator (Figure 1)
// ---------------------------------------------------------------------------

/// The triangle `0 ≤ x ≤ 1, 0 ≤ y ≤ x` of Figure 1: its projection onto `x`
/// is `[0, 1]`, but the fibers shrink linearly toward `x = 0`, so the
/// *uncorrected* projection of uniform samples is heavily biased to the
/// right.
fn figure1_triangle() -> GeneralizedTuple {
    GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    )
}

#[test]
fn projection_generator_cylinder_compensation_gate() {
    if quick_mode() {
        return;
    }
    let tri = figure1_triangle();
    let p = GeneratorParams {
        gamma: 0.05,
        ..params()
    };
    let mut rng = SeedSequence::new(7001).setup_stream().rng();
    let mut generator = ProjectionGenerator::new(&tri, &[0], p, &mut rng).unwrap();

    // The biased baseline (no compensation) must FAIL the uniformity gate …
    let n = 1500;
    let mut sample_rng = SeedSequence::new(7002).setup_stream().rng();
    let biased: Vec<f64> = (0..n)
        .map(|_| generator.sample_uncorrected(&mut sample_rng)[0])
        .collect();
    let biased_stat = uniformity_chi_square(&biased, 0.0, 1.0, 10);
    assert!(
        biased_stat > chi_square_loose_bound(9),
        "the Figure-1 bias disappeared: chi-square {biased_stat:.2}"
    );

    // … while the cylinder-compensated generator passes it.
    let pts = successes(generator.sample_batch(n, &SeedSequence::new(7003), 0));
    assert_marginal_uniform(&pts, |p| p[0], 0.0, 1.0, 10, "projection marginal");
}

#[test]
fn projection_estimated_strategy_passes_the_gates() {
    if quick_mode() {
        return;
    }
    // The compensation weight computed by the telescoping *estimator*
    // (instead of exact vertex enumeration) must still flatten the Figure-1
    // bias and reproduce the closed-form projection volume. Per-cell weight
    // noise is deterministic (the estimator's randomness derives from the
    // cell key), so this is a fixed-seed gate like every other.
    let p = ProjectionParams::new(GeneratorParams {
        gamma: 0.05,
        ..params()
    })
    .with_fiber_volume(FiberVolume::Estimated);
    let tri = figure1_triangle();
    let mut rng = SeedSequence::new(7201).setup_stream().rng();
    let mut generator = ProjectionGenerator::new_with(&tri, &[0], p, &mut rng).unwrap();
    assert_eq!(generator.resolved_fiber_volume(), FiberVolume::Estimated);

    let pts = successes(generator.sample_batch(1200, &SeedSequence::new(7202), 0));
    assert_marginal_uniform(
        &pts,
        |p| p[0],
        0.0,
        1.0,
        10,
        "estimated-weight projection marginal",
    );

    let est = generator
        .estimate_volume_median(5, &SeedSequence::new(7203), 0)
        .unwrap();
    let err = relative_error(est, 1.0);
    assert!(
        err < 0.30,
        "estimated-weight projection volume {est:.3} (rel err {err:.3})"
    );
}

// ---------------------------------------------------------------------------
// Stratified cell selection (the e7 acceptance wall)
// ---------------------------------------------------------------------------

#[test]
fn stratified_selection_passes_the_figure1_gates() {
    if quick_mode() {
        return;
    }
    // The stratified selector must reproduce exactly what the rejection loop
    // converges to: uniform mass over the projection. The *uncorrected*
    // projection of the same generator must still fail the gate — stratified
    // selection fixes the acceptance rate, not the Figure-1 bias itself.
    let p = ProjectionParams::new(GeneratorParams {
        gamma: 0.05,
        ..params()
    })
    .with_cell_selection(CellSelection::Stratified);
    let tri = figure1_triangle();
    let mut rng = SeedSequence::new(7301).setup_stream().rng();
    let mut generator = ProjectionGenerator::new_with(&tri, &[0], p, &mut rng).unwrap();
    assert_eq!(
        generator.resolved_cell_selection(),
        CellSelection::Stratified
    );

    let n = 1500;
    let mut sample_rng = SeedSequence::new(7302).setup_stream().rng();
    let biased: Vec<f64> = (0..n)
        .map(|_| generator.sample_uncorrected(&mut sample_rng)[0])
        .collect();
    let biased_stat = uniformity_chi_square(&biased, 0.0, 1.0, 10);
    assert!(
        biased_stat > chi_square_loose_bound(9),
        "the Figure-1 bias disappeared under stratified selection: \
         chi-square {biased_stat:.2}"
    );

    let pts = successes(generator.sample_batch(n, &SeedSequence::new(7303), 0));
    assert_eq!(pts.len(), n, "stratified draws never fail");
    assert_marginal_uniform(&pts, |p| p[0], 0.0, 1.0, 10, "stratified marginal");

    // The stratified volume is a deterministic Riemann sum at grid
    // resolution — tighter than the Monte-Carlo (ε, δ) budget.
    let mut vol_rng = SeedSequence::new(7304).setup_stream().rng();
    let est = generator.estimate_volume(&mut vol_rng).unwrap();
    let err = relative_error(est, 1.0);
    assert!(err < 0.05, "stratified volume {est:.4} (rel err {err:.4})");
}

#[test]
fn stratified_selection_passes_the_deep_cone_gates() {
    if quick_mode() {
        return;
    }
    // The e7 shape itself (where the rejection loop discards ~10⁴ chains per
    // acceptance at depth) and its shifted twin, whose enumerated grid keys
    // are negative integers — the regime where a bounding-box-to-cell-range
    // off-by-one would surface as a boundary bin failure.
    let p = ProjectionParams::new(GeneratorParams {
        gamma: 0.05,
        ..params()
    })
    .with_cell_selection(CellSelection::Stratified);
    for (label, tuple, lo) in [
        ("deep cone", deep_cone(4), 0.0f64),
        ("shifted cone", deep_cone_shifted(3, -2), -2.0),
    ] {
        let mut rng = SeedSequence::new(7401).setup_stream().rng();
        let mut generator = ProjectionGenerator::new_with(&tuple, &[0], p, &mut rng).unwrap();
        assert_eq!(
            generator.resolved_cell_selection(),
            CellSelection::Stratified
        );
        let pts = successes(generator.sample_batch(1500, &SeedSequence::new(7402), 0));
        for q in &pts {
            assert!(
                q[0] >= lo - 1e-9 && q[0] <= lo + 1.0 + 1e-9,
                "{label}: sample {q:?} outside the projection"
            );
        }
        assert_marginal_uniform(
            &pts,
            |q| q[0] - lo,
            0.0,
            1.0,
            10,
            &format!("{label} stratified marginal"),
        );
        let mut vol_rng = SeedSequence::new(7403).setup_stream().rng();
        let est = generator.estimate_volume(&mut vol_rng).unwrap();
        let err = relative_error(est, 1.0);
        assert!(err < 0.05, "{label}: volume {est:.4} (rel err {err:.4})");
    }
}

#[test]
fn stratified_selection_passes_the_multi_axis_prism_gate() {
    if quick_mode() {
        return;
    }
    // A two-axis projection (e = 2): the odometer enumeration and the alias
    // table run over a genuinely multi-dimensional cell range. The prism's
    // fibers are unit cubes, so the projection is the unit square exactly.
    let p = ProjectionParams::new(GeneratorParams {
        gamma: 0.4,
        ..params()
    })
    .with_cell_selection(CellSelection::Stratified);
    let prism = skewed_prism(2, 1);
    let mut rng = SeedSequence::new(7411).setup_stream().rng();
    let mut generator = ProjectionGenerator::new_with(&prism, &[0, 1], p, &mut rng).unwrap();
    assert_eq!(
        generator.resolved_cell_selection(),
        CellSelection::Stratified
    );
    let pts = successes(generator.sample_batch(2500, &SeedSequence::new(7412), 0));
    assert_marginal_uniform(&pts, |q| q[0], 0.0, 1.0, 8, "prism x-marginal");
    assert_marginal_uniform(&pts, |q| q[1], 0.0, 1.0, 8, "prism y-marginal");
    let mut vol_rng = SeedSequence::new(7413).setup_stream().rng();
    let est = generator.estimate_volume(&mut vol_rng).unwrap();
    let err = relative_error(est, 1.0);
    assert!(
        err < 0.10,
        "prism projection volume {est:.4} (rel err {err:.4})"
    );
}

#[test]
fn stratified_per_cell_occupancy_matches_poisson_intervals() {
    if quick_mode() {
        return;
    }
    // The finest-grained gate: every enumerated cell's hit count must land in
    // its exact central Poisson interval around `n · w / W` — computed from
    // the discrete tail sums, not a normal approximation, so the near-empty
    // apex cells of the triangle (expecting a fraction of a hit) get honest
    // `[0, k]` intervals instead of negative-width Gaussian bands. The tail
    // budget is Bonferroni-split across cells so the whole family is one
    // fixed-seed gate.
    let p = ProjectionParams::new(GeneratorParams {
        gamma: 0.05,
        ..params()
    })
    .with_cell_selection(CellSelection::Stratified);
    let tri = figure1_triangle();
    let mut rng = SeedSequence::new(7501).setup_stream().rng();
    let mut generator = ProjectionGenerator::new_with(&tri, &[0], p, &mut rng).unwrap();
    let (keys, weights, total) = {
        let cells = generator.stratified_cells().expect("selector built");
        (
            cells.keys().to_vec(),
            cells.weights().to_vec(),
            cells.total_mass(),
        )
    };
    let n_cells = keys.len();
    assert!(n_cells > 50, "unexpectedly coarse grid: {n_cells} cells");

    let n = 4000usize;
    let mut sample_rng = SeedSequence::new(7502).setup_stream().rng();
    let pts = generator.sample_many(n, &mut sample_rng);
    assert_eq!(pts.len(), n);
    let mut observed = std::collections::HashMap::new();
    let grid_step = generator.grid().step();
    for q in &pts {
        let key = (q[0] / grid_step).round() as i64;
        *observed.entry(key).or_insert(0u64) += 1;
    }

    // δ = 1e-6 for the whole family, split evenly across the cells.
    let tail = 1e-6 / n_cells as f64;
    for (key, w) in keys.iter().zip(&weights) {
        let mean = n as f64 * w / total;
        let (lo, hi) = poisson_count_interval(mean, tail);
        let got = observed.remove(&key[0]).unwrap_or(0);
        assert!(
            (lo..=hi).contains(&got),
            "cell {key:?}: {got} hits outside [{lo}, {hi}] (mean {mean:.2})"
        );
    }
    assert!(
        observed.is_empty(),
        "samples landed in cells the selector never enumerated: {observed:?}"
    );
}

// ---------------------------------------------------------------------------
// Prepared-relation store audit (PR 7)
//
// Every gate above builds its generator *directly*, so it owns private
// per-generator caches (fiber weights, alias tables) and never touches the
// shared prepared-relation store: those cases are implicitly pinned to
// store-disabled semantics and remain valid verbatim. The gates below run
// the same statistics *through* the `SpatialDatabase` store instead, and
// additionally pin the transfer argument bitwise: a warm, shared store
// returns exactly the bytes of the disabled-store path, so every
// statistical gate in this file transfers to the cached paths unchanged.
// ---------------------------------------------------------------------------

#[test]
fn warm_store_passes_the_uniformity_and_volume_gates() {
    if quick_mode() {
        return;
    }
    use cdb_core::SpatialDatabase;
    let populate = |db: &mut SpatialDatabase| {
        db.insert(
            "Box",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
    };
    let mut db = SpatialDatabase::with_params(params());
    populate(&mut db);
    let seq = SeedSequence::new(8201);
    // Warm the store first, so the gated batch below runs entirely on the
    // cache-hit path.
    db.approx_generate_batch("Box", 8, &seq, 1).unwrap();
    assert!(db.store_stats().misses > 0);
    let batch = db.approx_generate_batch("Box", 4096, &seq, 0).unwrap();
    assert!(
        db.store_stats().hits > 0,
        "gate did not exercise the warm path"
    );
    let pts = successes(batch.clone());
    assert_marginal_uniform(&pts, |p| p[0], 0.0, 2.0, 16, "warm-store x0");
    assert_marginal_uniform(&pts, |p| p[1], 0.0, 1.0, 16, "warm-store x1");
    // (ε, δ)-volume gate through the warm store: |V̂/V − 1| within the
    // fast-params budget for the 2×1 box.
    let est = db.approx_volume_batch("Box", 9, &seq, 0).unwrap();
    let err = relative_error(est, 2.0);
    assert!(err < 0.30, "warm-store volume {est:.3} (rel err {err:.3})");
    // Transfer pin: the disabled-store path returns the same bytes, so the
    // two gates above are statements about *both* paths.
    let mut disabled = SpatialDatabase::with_params(params()).with_store_capacity(0);
    populate(&mut disabled);
    assert_eq!(
        batch,
        disabled
            .approx_generate_batch("Box", 4096, &seq, 0)
            .unwrap(),
        "warm-store batch is not bitwise equal to the disabled-store batch"
    );
    assert_eq!(
        db.store_capacity(),
        cdb_sampler::DEFAULT_PREPARED_STORE_CAPACITY
    );
    assert_eq!(disabled.store_stats().hits, 0);
}

#[test]
fn projection_volume_eps_delta_gate() {
    if quick_mode() {
        return;
    }
    // proj_x of the Figure-1 triangle and of the unit square both have
    // length 1.
    let p = GeneratorParams {
        gamma: 0.05,
        ..params()
    };
    for (name, tuple) in [
        ("triangle", figure1_triangle()),
        (
            "square",
            GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
        ),
    ] {
        let mut rng = SeedSequence::new(7101).setup_stream().rng();
        let mut generator = ProjectionGenerator::new(&tuple, &[0], p, &mut rng).unwrap();
        let est = generator
            .estimate_volume_median(5, &SeedSequence::new(7102), 0)
            .unwrap();
        let err = relative_error(est, 1.0);
        assert!(
            err < 0.30,
            "projection of {name}: estimate {est:.3} (rel err {err:.3})"
        );
    }
}

// ---------------------------------------------------------------------------
// Degenerate high-aspect bodies (the rounding path)
// ---------------------------------------------------------------------------

/// Parameters with the well-rounding transform enabled — the degenerate
/// families are the bodies that *need* it, so their gates pin the rounding
/// path specifically.
fn rounding_params() -> GeneratorParams {
    let mut p = params();
    p.rounding = true;
    p
}

#[test]
fn degenerate_needle_box_passes_uniformity_and_volume_gates_through_rounding() {
    if quick_mode() {
        return;
    }
    // [0, 1/16]² × [0, 1]: aspect 16, exact volume 16⁻².
    let body = cdb_workloads::degenerate::needle_box(3, 16);
    let mut generator = UnionGenerator::new(&body.relation, rounding_params()).unwrap();
    let pts = successes(generator.sample_batch(3000, &SeedSequence::new(9001), 0));
    for p in &pts {
        assert!(body.relation.contains_f64(p), "sample left the needle");
    }
    // The long axis is uniform on [0, 1]; a thin axis, rescaled by the
    // aspect, is uniform on [0, 1] too.
    assert_marginal_uniform(&pts, |p| p[2], 0.0, 1.0, 10, "needle long-axis marginal");
    assert_marginal_uniform(
        &pts,
        |p| p[0] * 16.0,
        0.0,
        1.0,
        8,
        "needle thin-axis marginal",
    );
    // Volume gate through the median-of-repeats (ε, δ) estimator. A
    // single-tuple union's `estimate_volume_median` reuses the one
    // preparation-time pilot estimate, so repeats are a no-op there; run the
    // telescoping estimator directly, where each repeat is independent.
    let tuple = &body.relation.tuples()[0];
    let convex = ConvexBody::from_tuple(tuple).unwrap();
    let mut rng = SeedSequence::new(9002).setup_stream().rng();
    let sampler = DfkSampler::new(convex, rounding_params(), &mut rng);
    let est = sampler.estimate_volume_median_batch(9, &SeedSequence::new(9005), 0);
    let err = relative_error(est, body.exact_volume);
    assert!(
        err < 0.30,
        "needle volume {est:.6} vs {:.6} (rel err {err:.3})",
        body.exact_volume
    );
}

#[test]
fn degenerate_thin_simplex_passes_the_volume_gate_through_rounding() {
    if quick_mode() {
        return;
    }
    // {x ≥ 0, 16·x₀ + x₁ + x₂ ≤ 1}: exact volume 1/(16·3!).
    let body = cdb_workloads::degenerate::thin_simplex(3, 16);
    let mut generator = UnionGenerator::new(&body.relation, rounding_params()).unwrap();
    let pts = successes(generator.sample_batch(2000, &SeedSequence::new(9003), 0));
    for p in &pts {
        assert!(body.relation.contains_f64(p), "sample left the simplex");
    }
    // The squeezed axis stays inside [0, 1/16], and rescaling the simplex by
    // (16, 1, 1) maps the sample to the standard simplex, whose coordinate
    // sum has CDF t³ on [0, 1] — fold through it for a uniformity gate.
    for p in &pts {
        assert!(p[0] <= 1.0 / 16.0 + 1e-9);
    }
    assert_marginal_uniform(
        &pts,
        |p| {
            let s = (16.0 * p[0] + p[1] + p[2]).clamp(0.0, 1.0);
            s * s * s
        },
        0.0,
        1.0,
        8,
        "thin-simplex radial CDF fold",
    );
    // Same median-of-independent-repeats gate as the needle (see above).
    let tuple = &body.relation.tuples()[0];
    let convex = ConvexBody::from_tuple(tuple).unwrap();
    let mut rng = SeedSequence::new(9004).setup_stream().rng();
    let sampler = DfkSampler::new(convex, rounding_params(), &mut rng);
    let est = sampler.estimate_volume_median_batch(9, &SeedSequence::new(9006), 0);
    let err = relative_error(est, body.exact_volume);
    assert!(
        err < 0.30,
        "thin-simplex volume {est:.6} vs {:.6} (rel err {err:.3})",
        body.exact_volume
    );
}

// ---------------------------------------------------------------------------
// Moving-object overlay slices
// ---------------------------------------------------------------------------

#[test]
fn moving_overlay_slices_pass_uniformity_and_volume_gates() {
    if quick_mode() {
        return;
    }
    let spec = cdb_workloads::gis::MovingOverlaySpec::default();
    let mut rng = SeedSequence::new(9100).setup_stream().rng();
    let mo = cdb_workloads::gis::moving_overlay(&spec, &mut rng);
    // Gate the first and last slices: same machinery, maximally separated
    // object positions.
    for (gate, &j) in [0usize, spec.slices - 1].iter().enumerate() {
        let slice = &mo.slices[j];
        let mut generator = UnionGenerator::new(&slice.relation, params()).unwrap();
        let pts =
            successes(generator.sample_batch(3000, &SeedSequence::new(9101 + gate as u64), 0));
        let lane_of = |p: &[f64]| {
            let lane = ((p[1] - 0.5) / 2.0).floor();
            assert!(
                lane >= 0.0 && (lane as usize) < spec.objects,
                "off-lane sample"
            );
            lane as usize
        };
        // Offset inside the owning object is uniform on [0, 1]² — objects
        // are disjoint unit squares, so the fold is exact.
        assert_marginal_uniform(
            &pts,
            |p| p[0] - mo.object_x[j][lane_of(p)],
            0.0,
            1.0,
            10,
            &format!("slice {j} in-object x offset"),
        );
        assert_marginal_uniform(
            &pts,
            |p| p[1] - mo.lane_y[lane_of(p)],
            0.0,
            1.0,
            10,
            &format!("slice {j} in-object y offset"),
        );
        // Equal-area objects receive (near-)equal mass. The union selects
        // tuples proportionally to *estimated* tuple volumes, so the split
        // carries a small pilot-estimate skew; gate each lane's mass with
        // the same 0.05 absolute tolerance the union uniformity gate uses
        // rather than a chi-square that amplifies the shared bias.
        let mut lane_mass = vec![0usize; spec.objects];
        for p in &pts {
            lane_mass[lane_of(p)] += 1;
        }
        for (lane, &hits) in lane_mass.iter().enumerate() {
            let mass = hits as f64 / pts.len() as f64;
            let expected = 1.0 / spec.objects as f64;
            assert!(
                (mass - expected).abs() < 0.05,
                "slice {j} lane {lane}: mass {mass:.3} vs {expected:.3}"
            );
        }
        // Corridor occupancy matches the closed-form overlay fraction.
        let corridor_lo = (spec.width - spec.corridor_width) / 2.0;
        let corridor_hi = corridor_lo + spec.corridor_width;
        let hit = pts
            .iter()
            .filter(|p| p[0] >= corridor_lo && p[0] <= corridor_hi)
            .count() as f64
            / pts.len() as f64;
        let expected = mo.overlay_areas[j] / slice.exact_area;
        assert!(
            (hit - expected).abs() < 0.05,
            "slice {j}: corridor occupancy {hit:.3} vs overlay fraction {expected:.3}"
        );
        // (ε, δ) volume gate against the closed-form slice area.
        let est = generator
            .estimate_volume_median(5, &SeedSequence::new(9111 + gate as u64), 0)
            .unwrap();
        let err = relative_error(est, slice.exact_area);
        assert!(
            err < 0.25,
            "slice {j}: volume {est:.3} vs {:.3} (rel err {err:.3})",
            slice.exact_area
        );
    }
}
