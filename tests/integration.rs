//! Cross-crate integration tests: full pipelines from FO+LIN text to samples,
//! volume estimates and reconstructed relations.

use cdb_constraint::{parse_formula, GeneralizedRelation};
use cdb_core::SpatialDatabase;
use cdb_geometry::volume::{polytope_volume, symmetric_difference_volume, union_volume};
use cdb_reconstruct::{ConvexReconstructor, ProjectionQueryEstimator};
use cdb_sampler::{
    diagnostics, FixedDimSampler, GeneratorParams, IntersectionGenerator, RelationGenerator,
    RelationVolumeEstimator, SeedSequence, UnionGenerator,
};
use cdb_workloads::{gis, polytopes, sat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast() -> GeneratorParams {
    GeneratorParams::fast()
}

#[test]
fn parse_to_sample_pipeline() {
    // Text formula -> relation -> union generator -> samples satisfy the formula.
    let formula = parse_formula(
        "(x0 >= 0 and x0 <= 2 and x1 >= 0 and x1 <= 1) or (x0 >= 3 and x0 <= 4 and x1 >= 0 and x1 <= 2)",
        2,
    )
    .unwrap();
    let relation = GeneralizedRelation::from_formula(2, &formula).unwrap();
    let mut generator = UnionGenerator::new(&relation, fast()).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let samples = generator.sample_many(200, &mut rng);
    assert!(samples.len() > 150);
    for p in &samples {
        assert!(
            formula.eval_f64(p, 1e-6).unwrap(),
            "sample violates the formula: {p:?}"
        );
    }
    // Volume estimate tracks the exact area 2*1 + 1*2 = 4.
    let est = generator.estimate_volume(&mut rng).unwrap();
    let exact = union_volume(&relation.to_polytopes());
    assert!((exact - 4.0).abs() < 1e-6);
    assert!(
        diagnostics::relative_error(est, exact) < 0.4,
        "estimate {est}"
    );
}

#[test]
fn randomized_and_fixed_dimension_estimators_agree() {
    let mut rng = StdRng::seed_from_u64(2);
    let layer = gis::parcels(
        &gis::GisLayerSpec {
            regions: 4,
            ..Default::default()
        },
        &mut rng,
    );
    // Fixed-dimension (Section 3) estimate.
    let fixed = FixedDimSampler::new(&layer.relation, 0.05).unwrap();
    assert!(diagnostics::relative_error(fixed.grid_volume(), layer.exact_area) < 0.15);
    assert!(diagnostics::relative_error(fixed.exact_volume(), layer.exact_area) < 1e-6);
    // Randomized (Section 4) estimate.
    let mut union_gen = UnionGenerator::new(&layer.relation, fast()).unwrap();
    let est = union_gen.estimate_volume(&mut rng).unwrap();
    assert!(
        diagnostics::relative_error(est, layer.exact_area) < 0.45,
        "estimate {est} vs {}",
        layer.exact_area
    );
}

#[test]
fn workload_bodies_are_observable_and_estimable() {
    let mut rng = StdRng::seed_from_u64(3);
    for d in [2usize, 3] {
        for (name, relation, exact) in polytopes::closed_form_suite(d) {
            let mut generator = UnionGenerator::new(&relation, fast()).unwrap();
            let est = generator.estimate_volume(&mut rng).unwrap();
            assert!(
                diagnostics::relative_error(est, exact) < 0.5,
                "{name} d={d}: estimate {est} vs exact {exact}"
            );
        }
    }
}

#[test]
fn batch_pipeline_from_formula_to_parallel_samples() {
    // Text formula -> relation -> batched parallel generation: the points
    // satisfy the formula and the batch is reproducible for any thread count.
    let formula = parse_formula(
        "(x0 >= 0 and x0 <= 2 and x1 >= 0 and x1 <= 1) or (x0 >= 3 and x0 <= 4 and x1 >= 0 and x1 <= 2)",
        2,
    )
    .unwrap();
    let relation = GeneralizedRelation::from_formula(2, &formula).unwrap();
    let seq = SeedSequence::new(99);
    let mut generator = UnionGenerator::new(&relation, fast()).unwrap();
    let batch = generator.sample_batch(300, &seq, 0);
    let produced: Vec<&Vec<f64>> = batch.iter().flatten().collect();
    assert!(produced.len() > 250, "too many failures");
    for p in &produced {
        assert!(
            formula.eval_f64(p, 1e-6).unwrap(),
            "violates formula: {p:?}"
        );
    }
    let mut fresh = UnionGenerator::new(&relation, fast()).unwrap();
    assert_eq!(batch, fresh.sample_batch(300, &seq, 2));
    // The batched median estimator tracks the exact area 2*1 + 1*2 = 4.
    let est = generator.estimate_volume_median(5, &seq, 0).unwrap();
    assert!(
        diagnostics::relative_error(est, 4.0) < 0.3,
        "estimate {est}"
    );
}

#[test]
fn convex_reconstruction_approximates_a_workload_polytope() {
    let mut rng = StdRng::seed_from_u64(4);
    let body = polytopes::random_hpolytope(2, 3, &mut rng);
    let reconstructor = ConvexReconstructor::new(fast(), 0.2, 0.2);
    let hull = reconstructor
        .reconstruct_tuple(&body, Some(400), &mut rng)
        .unwrap();
    let truth = body.to_hpolytope();
    let sd = symmetric_difference_volume(&[truth.clone()], &[hull]);
    let vol = polytope_volume(&truth);
    assert!(sd / vol < 0.3, "relative symmetric difference {}", sd / vol);
}

#[test]
fn projection_estimator_agrees_with_fourier_motzkin() {
    let mut rng = StdRng::seed_from_u64(5);
    // A 3-dimensional box projected onto its first two coordinates.
    let tuple = cdb_constraint::GeneralizedTuple::from_box_f64(&[0.0, 1.0, -1.0], &[2.0, 3.0, 1.0]);
    let estimator = ProjectionQueryEstimator::new(fast(), 0.2, 0.2);
    let hull = estimator
        .estimate(&tuple, &[0, 1], Some(300), &mut rng)
        .unwrap();
    let symbolic = GeneralizedRelation::from_tuple(tuple).project(&[0, 1]);
    let sd = symmetric_difference_volume(&symbolic.to_polytopes(), &[hull]);
    let exact_area = union_volume(&symbolic.to_polytopes());
    assert!((exact_area - 4.0).abs() < 1e-6);
    assert!(
        sd / exact_area < 0.3,
        "relative symmetric difference {}",
        sd / exact_area
    );
}

#[test]
fn end_to_end_query_through_the_facade() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut db = SpatialDatabase::with_params(fast());
    db.insert(
        "Zone",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]),
    );
    db.insert(
        "Road",
        GeneralizedRelation::from_box_f64(&[0.0, 0.8], &[2.0, 1.2]),
    );
    let query = parse_formula("Zone(x0, x1) and Road(x0, x1)", 2).unwrap();
    let exact = db.evaluate_exact(&query, 2).unwrap();
    let approx = db.approx_query(&query, 2, &mut rng).unwrap();
    let exact_vol = union_volume(&exact.to_polytopes());
    assert!((exact_vol - 0.8).abs() < 1e-6);
    let sd = symmetric_difference_volume(&exact.to_polytopes(), &approx.to_polytopes());
    assert!(
        sd / exact_vol < 0.4,
        "relative symmetric difference {}",
        sd / exact_vol
    );
    // And the volume estimator on the stored relation works too.
    let vol = db.approx_volume("Zone", &mut rng).unwrap();
    assert!(diagnostics::relative_error(vol, 4.0) < 0.4, "volume {vol}");
}

#[test]
fn sat_encoding_distinguishes_satisfiable_from_unsatisfiable() {
    let mut rng = StdRng::seed_from_u64(7);
    let params = fast();

    // Satisfiable: one clause per variable, all positive -> corner box remains.
    let satisfiable = sat::CnfFormula {
        n_vars: 2,
        clauses: vec![vec![(0, true), (1, true)], vec![(0, true), (1, false)]],
    };
    assert!(satisfiable.brute_force_satisfiable());
    let relations = sat::cnf_relations(&satisfiable);
    let mut generator = IntersectionGenerator::new(&relations, params).unwrap();
    let vol = generator.estimate_volume(&mut rng);
    assert!(
        vol.is_some(),
        "satisfiable instance should admit an estimate"
    );
    assert!(vol.unwrap() > 0.0);

    // Unsatisfiable: x0 and not x0.
    let unsat = sat::CnfFormula {
        n_vars: 1,
        clauses: vec![vec![(0, true)], vec![(0, false)]],
    };
    assert!(!unsat.brute_force_satisfiable());
    let relations = sat::cnf_relations(&unsat);
    let mut generator = IntersectionGenerator::new(&relations, params).unwrap();
    assert!(generator.estimate_volume(&mut rng).is_none());
}

#[test]
fn union_generator_is_statistically_uniform_on_a_disjoint_union() {
    // Two unit squares far apart: the first coordinate of the samples,
    // folded back to [0,1], must look uniform.
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]).union(
        &GeneralizedRelation::from_box_f64(&[10.0, 0.0], &[11.0, 1.0]),
    );
    let mut generator = UnionGenerator::new(&relation, fast()).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let samples = generator.sample_many(1000, &mut rng);
    assert!(samples.len() > 900);
    let folded: Vec<f64> = samples
        .iter()
        .map(|p| if p[0] > 5.0 { p[0] - 10.0 } else { p[0] })
        .collect();
    let stat = diagnostics::uniformity_chi_square(&folded, 0.0, 1.0, 8);
    assert!(
        stat < diagnostics::chi_square_loose_bound(7) * 2.0,
        "chi-square {stat}"
    );
}
