//! Concurrency and invisibility harness for the prepared-relation store.
//!
//! The store caches fully prepared generator bodies keyed by canonical
//! formula. These tests race mixed hit/miss/evict traffic over overlapping
//! relations from many threads and assert the headline contract: every
//! output is **bitwise identical** to a single-threaded run against a
//! *disabled* store (capacity 0, every query prepares from scratch), and
//! capacity eviction mid-flight never corrupts an in-use body.
//!
//! `CDB_STAT_QUICK=1` reduces the traffic volume for CI quick mode.

use std::collections::HashMap;
use std::sync::Arc;

use cdb_constraint::canonical::CanonicalKey;
use cdb_constraint::GeneralizedRelation;
use cdb_core::SpatialDatabase;
use cdb_sampler::{GeneratorParams, SeedSequence};
use cdb_workloads::polytopes::closed_form_suite;

fn quick_mode() -> bool {
    std::env::var("CDB_STAT_QUICK").is_ok_and(|v| v != "0")
}

/// Six distinct relation contents; twelve names map onto them two-to-one so
/// hit traffic (same content, different name) is guaranteed.
fn content(i: usize) -> GeneralizedRelation {
    let x = i as f64;
    match i % 3 {
        0 => GeneralizedRelation::from_box_f64(&[x, 0.0], &[x + 1.0, 1.0]),
        1 => GeneralizedRelation::from_box_f64(&[0.0, x], &[2.0, x + 0.5]),
        _ => GeneralizedRelation::from_box_f64(&[x, x], &[x + 0.5, x + 2.0]).union(
            &GeneralizedRelation::from_box_f64(&[x + 2.0, x], &[x + 3.0, x + 1.0]),
        ),
    }
}

fn populate(db: &mut SpatialDatabase, names: usize) {
    for i in 0..names {
        db.insert(format!("R{i}"), content(i % 6));
    }
}

const NAMES: usize = 12;
const BATCH: usize = 16;

/// The disabled-store single-threaded reference outputs for every
/// (name, seed) cell the stress test will replay.
fn baseline(seeds: &[u64]) -> HashMap<(usize, u64), Vec<Option<Vec<f64>>>> {
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast()).with_store_capacity(0);
    populate(&mut db, NAMES);
    let mut expected = HashMap::new();
    for name in 0..NAMES {
        for &seed in seeds {
            let batch = db
                .approx_generate_batch(&format!("R{name}"), BATCH, &SeedSequence::new(seed), 1)
                .unwrap();
            expected.insert((name, seed), batch);
        }
    }
    assert_eq!(db.store_stats().hits, 0, "disabled store must never hit");
    expected
}

#[test]
fn racing_threads_match_the_single_threaded_cold_run() {
    let seeds: Vec<u64> = if quick_mode() {
        vec![0xA1]
    } else {
        vec![0xA1, 0xB2]
    };
    let rounds = if quick_mode() { 2 } else { 5 };
    let expected = Arc::new(baseline(&seeds));

    // Capacity 4 over 12 names / 6 contents: every round mixes hits,
    // misses and evictions, from 8 racing threads.
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast()).with_store_capacity(4);
    populate(&mut db, NAMES);
    let db = Arc::new(db);

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let db = Arc::clone(&db);
            let expected = Arc::clone(&expected);
            let seeds = seeds.clone();
            std::thread::spawn(move || {
                for round in 0..rounds {
                    for step in 0..NAMES {
                        // Thread-dependent traversal order: threads disagree
                        // about which bodies are warm at any moment.
                        let name = (step * 5 + t * 7 + round) % NAMES;
                        let seed = seeds[(step + t) % seeds.len()];
                        let got = db
                            .approx_generate_batch(
                                &format!("R{name}"),
                                BATCH,
                                &SeedSequence::new(seed),
                                1,
                            )
                            .unwrap();
                        assert_eq!(
                            &got,
                            &expected[&(name, seed)],
                            "thread {t} round {round}: R{name}/seed {seed:#x} diverged"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = db.store_stats();
    assert!(
        stats.hits > 0,
        "stress run produced no cache hits: {stats:?}"
    );
    assert!(stats.misses > 0, "stress run produced no misses: {stats:?}");
    assert!(
        stats.evictions > 0,
        "capacity 4 over 12 names must evict: {stats:?}"
    );
    assert!(stats.len <= 4, "store exceeded its capacity: {stats:?}");
}

#[test]
fn shared_content_under_different_names_hits_the_store() {
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
    db.insert("A", content(0));
    db.insert("B", content(0)); // same content, different name
    let seq = SeedSequence::new(0xFEED);
    let a = db.approx_generate_batch("A", 8, &seq, 1).unwrap();
    let stats_after_a = db.store_stats();
    let b = db.approx_generate_batch("B", 8, &seq, 1).unwrap();
    let stats_after_b = db.store_stats();
    // Content-derived keys: B's first query reuses A's prepared body …
    assert_eq!(stats_after_a.misses, stats_after_b.misses);
    assert_eq!(stats_after_b.hits, stats_after_a.hits + 1);
    // … and identical content + identical seeds give identical output.
    assert_eq!(a, b);
}

#[test]
fn eviction_mid_flight_never_poisons_results() {
    // Capacity 1: every switch to another relation evicts the previous
    // body. Outputs must still match the disabled-store reference.
    let mut cached = SpatialDatabase::with_params(GeneratorParams::fast()).with_store_capacity(1);
    let mut disabled = SpatialDatabase::with_params(GeneratorParams::fast()).with_store_capacity(0);
    populate(&mut cached, 4);
    populate(&mut disabled, 4);
    let seq = SeedSequence::new(0xE71C);
    for pass in 0..3 {
        for name in 0..4 {
            let id = format!("R{name}");
            let want = disabled.approx_generate_batch(&id, 8, &seq, 1).unwrap();
            let got = cached.approx_generate_batch(&id, 8, &seq, 1).unwrap();
            assert_eq!(got, want, "pass {pass} {id} diverged under eviction");
        }
    }
    let stats = cached.store_stats();
    assert!(stats.evictions > 0, "capacity 1 must evict: {stats:?}");
    assert_eq!(stats.len, 1);
}

#[test]
fn replacing_a_relation_invalidates_its_key() {
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
    db.insert("R", content(0));
    let seq = SeedSequence::new(0xD0);
    let before = db.approx_generate_batch("R", 8, &seq, 1).unwrap();
    db.insert("R", content(1)); // replace with different content
    let after = db.approx_generate_batch("R", 8, &seq, 1).unwrap();
    assert_ne!(before, after, "stale prepared body served after replace");
    for p in after.iter().flatten() {
        assert!(content(1).contains_f64(p));
    }
    // Replacing back re-uses the original content's prepared body (keys are
    // content-derived) and reproduces the original output bitwise.
    db.insert("R", content(0));
    let hits_before = db.store_stats().hits;
    let again = db.approx_generate_batch("R", 8, &seq, 1).unwrap();
    assert_eq!(before, again);
    assert!(db.store_stats().hits > hits_before);
}

#[test]
fn closed_form_suite_keys_never_collide() {
    // Satellite guard for the canonicalization pass: semantically distinct
    // closed-form bodies must keep distinct cache keys, across dimensions.
    // (Dimension 1 is excluded from the distinctness sweep because the cube
    // and the cross-polytope genuinely coincide there — both are [-1, 1] —
    // and the canonical pass is *supposed* to merge them; asserted below.)
    let suite_1d = closed_form_suite(1);
    assert_eq!(
        CanonicalKey::of_relation(&suite_1d[0].1),
        CanonicalKey::of_relation(&suite_1d[2].1),
        "1-d cube and cross-polytope are the same set and must share a key"
    );
    let mut keys: Vec<(String, CanonicalKey)> = Vec::new();
    for dim in 2..=4 {
        for (name, relation, _volume) in closed_form_suite(dim) {
            keys.push((
                format!("{name}/d{dim}"),
                CanonicalKey::of_relation(&relation),
            ));
        }
    }
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(
                keys[i].1, keys[j].1,
                "key collision between {} and {}",
                keys[i].0, keys[j].0
            );
        }
    }
}
