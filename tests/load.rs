//! End-to-end tests of the traffic-shaped load harness (`cdb_bench::load`).
//!
//! A quick mixed-session run must complete with every request *resolved* —
//! a payload or a typed error, never a silent drop — with per-class request
//! counts exactly matching the schedule, and the emitted
//! `cdb-load-report/v1` document must parse back with every expected row.
//!
//! Sizes honor `CDB_LOAD_QUICK=1` / `CDB_LOAD_REQUESTS=<n>` (the `ci.sh`
//! `--quick` path) but are modest even at the default.

use cdb_bench::load::{
    class_stats, render_report, run, run_over, schedule, LoadSpec, Payload, QueryClass, Transport,
};
use cdb_bench::report;
use cdb_core::SpatialDatabase;
use cdb_sampler::{GeneratorParams, QueryBudget};
use cdb_server::{Server, ServerConfig};
use cdb_workloads::sessions::{polytope_soup, SessionMix, SoupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Request count for the mixed-session run: 150 by default, 60 under
/// `CDB_LOAD_QUICK=1`, or an explicit `CDB_LOAD_REQUESTS`.
fn requests() -> usize {
    if let Ok(n) = std::env::var("CDB_LOAD_REQUESTS") {
        return n.parse().expect("CDB_LOAD_REQUESTS must be a count");
    }
    if std::env::var("CDB_LOAD_QUICK").is_ok_and(|v| v == "1") {
        60
    } else {
        150
    }
}

fn soup_db() -> (SpatialDatabase, Vec<String>) {
    let soup = polytope_soup(&SoupSpec::default(), &mut StdRng::seed_from_u64(77));
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
    for (name, relation) in &soup.entries {
        db.insert(name.clone(), relation.clone());
    }
    let names = soup.names();
    (db, names)
}

#[test]
fn mixed_session_run_resolves_every_request() {
    let (db, names) = soup_db();
    let spec = LoadSpec::new(requests(), 2000.0, 4242, SessionMix::read_heavy())
        .with_threads(4)
        .with_budget(
            QueryBudget::unlimited()
                .with_max_steps(50_000_000)
                .with_max_attempts(100_000),
        );
    let sched = schedule(&spec, &names);
    assert_eq!(sched.requests.len(), spec.requests);
    let counts = sched.class_counts();
    assert!(
        counts.iter().all(|&c| c > 0),
        "the read-heavy mix must schedule all three classes: {counts:?}"
    );

    let report = run(&db, &spec, &sched);
    assert_eq!(report.outcomes.len(), spec.requests);
    assert!(report.panics.is_empty());
    assert_eq!(report.lost(), 0);

    // Every request resolves to a class-appropriate payload or a typed
    // error, and its latency was recorded.
    let mut resolved = [0usize; 3];
    for (slot, req) in report.outcomes.iter().zip(&sched.requests) {
        let outcome = slot.as_ref().expect("no request may be lost");
        assert_eq!(outcome.class, req.class);
        assert_eq!(outcome.relation, req.relation);
        match (&outcome.result, req.class) {
            (Ok(Payload::Point(p)), QueryClass::Sample) => {
                assert_eq!(p.len(), 2);
                let relation = &db.relation(&req.relation).unwrap();
                assert!(relation.contains_f64(p), "sample outside {}", req.relation);
            }
            (Ok(Payload::Estimate(v)), QueryClass::Volume) => {
                assert!(v.is_finite() && *v > 0.0);
            }
            (Ok(Payload::Relation { .. }), QueryClass::Reconstruction) => {}
            (Err(_), _) => {}
            (payload, class) => panic!("class {class:?} resolved to {payload:?}"),
        }
        resolved[QueryClass::ALL
            .iter()
            .position(|c| *c == req.class)
            .unwrap()] += 1;
    }
    // Per-class request counts are exact: scheduled == resolved.
    assert_eq!(resolved, counts);

    // The emitted report parses and contains every expected row with the
    // latency percentile fields filled.
    let stats = class_stats(&sched, &report);
    assert_eq!(stats.len(), 3);
    let rows: Vec<(String, _)> = stats
        .into_iter()
        .map(|s| (format!("load_sessions.{}", s.class.label()), s))
        .collect();
    let text = render_report(&rows, false);
    let parsed = report::parse_report(&text).expect("rendered report must parse");
    for class in ["sample", "volume", "reconstruction"] {
        let row = report::find(&parsed, &format!("load_sessions.{class}"))
            .unwrap_or_else(|| panic!("missing row for class {class}"));
        for (metric, value) in [
            ("requests", row.requests),
            ("throughput_rps", row.throughput_rps),
            ("p50_ms", row.p50_ms),
            ("p95_ms", row.p95_ms),
            ("p99_ms", row.p99_ms),
            ("max_ms", row.max_ms),
        ] {
            let v = value.unwrap_or_else(|| panic!("{class}: missing {metric}"));
            assert!(v.is_finite() && v >= 0.0, "{class}.{metric} = {v}");
        }
        // p50 ≤ p95 ≤ p99 ≤ max by construction.
        assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        assert!(row.p99_ms <= row.max_ms);
    }
}

#[test]
fn http_transport_matches_in_process_bitwise() {
    // The same spec + schedule replayed in-process and over a loopback
    // `cdb-server` must resolve to bitwise-identical result fingerprints:
    // both transports fund request `i` from
    // `SeedSequence::new(spec.seed).item_stream(i)`, and only deterministic
    // budget counters cross the HTTP wire (see `Transport`'s parity
    // contract in `cdb_bench::load`).
    let (db, names) = soup_db();
    let (server_db, _) = soup_db();
    let spec = LoadSpec::new(
        (requests() / 2).max(30),
        2000.0,
        515,
        SessionMix::read_heavy(),
    )
    .with_threads(3)
    .with_budget(
        QueryBudget::unlimited()
            .with_max_steps(50_000_000)
            .with_max_attempts(100_000),
    );
    let sched = schedule(&spec, &names);

    let in_process = run(&db, &spec, &sched);
    let server =
        Server::start_with_db(ServerConfig::default(), server_db).expect("loopback server starts");
    let http = run_over(&Transport::Http(server.addr()), &spec, &sched);

    for rep in [&in_process, &http] {
        assert!(rep.panics.is_empty());
        assert_eq!(rep.lost(), 0);
    }
    let local_bits = in_process.result_bits();
    let wire_bits = http.result_bits();
    assert!(
        local_bits.iter().any(|b| b.is_some()),
        "parity run produced no successful payloads to compare"
    );
    assert_eq!(
        local_bits, wire_bits,
        "HTTP transport drifted from the in-process results"
    );

    // The report schema is transport-agnostic: rows rendered from the HTTP
    // run parse back with the same fields as in-process rows.
    let rows: Vec<(String, _)> = class_stats(&sched, &http)
        .into_iter()
        .map(|s| (format!("load_http_sessions.{}", s.class.label()), s))
        .collect();
    let parsed = report::parse_report(&render_report(&rows, true)).unwrap();
    for class in ["sample", "volume", "reconstruction"] {
        let row = report::find(&parsed, &format!("load_http_sessions.{class}"))
            .unwrap_or_else(|| panic!("missing HTTP row for class {class}"));
        assert!(row.requests.is_some() && row.throughput_rps.is_some() && row.p99_ms.is_some());
    }
}

#[test]
fn committed_baseline_gates_against_a_fresh_quick_run() {
    // The committed BENCH_load.json and a fresh harness run must agree on
    // row coverage — the same check `ci.sh` performs, but in-process and
    // against whatever the current source emits.
    let baseline_text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_load.json"))
            .expect("committed BENCH_load.json baseline must exist");
    let baseline = report::parse_report(&baseline_text).expect("baseline must parse");
    assert!(
        baseline.len() >= 4,
        "the baseline must keep at least 4 workload-mix rows"
    );
    for row in &baseline {
        assert!(row.workload.starts_with("load_"));
        assert!(row.throughput_rps.is_some() && row.p99_ms.is_some());
    }

    // A tiny sessions run emits rows whose names match the baseline's
    // sessions rows, so coverage of the committed schema cannot rot even if
    // the bin and the test drift apart.
    let (db, names) = soup_db();
    let spec = LoadSpec::new(40, 2000.0, 11, SessionMix::read_heavy()).with_threads(2);
    let sched = schedule(&spec, &names);
    let rep = run(&db, &spec, &sched);
    let rows: Vec<(String, _)> = class_stats(&sched, &rep)
        .into_iter()
        .map(|s| (format!("load_sessions.{}", s.class.label()), s))
        .collect();
    let fresh = report::parse_report(&render_report(&rows, true)).unwrap();
    for row in baseline
        .iter()
        .filter(|r| r.workload.starts_with("load_sessions."))
    {
        assert!(
            report::find(&fresh, &row.workload).is_some(),
            "fresh run lost baseline row {}",
            row.workload
        );
    }
}
