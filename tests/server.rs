//! Loopback integration suite for `cdb-server`: every endpoint, the full
//! error→status table, seeded byte-for-byte reproducibility, and
//! concurrent clients against one server.
//!
//! Each test starts its own server on `127.0.0.1:0` (the OS picks the
//! port), so tests run in parallel without colliding. Set
//! `CDB_SERVER_QUICK=1` (the `ci.sh --quick` default) for reduced request
//! counts in the concurrency test.

use std::collections::BTreeSet;
use std::time::Duration;

use cdb_constraint::{Atom, GeneralizedRelation, GeneralizedTuple};
use cdb_core::SpatialDatabase;
use cdb_sampler::{FaultPlan, GeneratorParams};
use cdb_server::client::Client;
use cdb_server::json::{parse, Json, DEFAULT_MAX_DEPTH};
use cdb_server::{BudgetSpec, Server, ServerConfig};

fn quick() -> bool {
    std::env::var("CDB_SERVER_QUICK").is_ok_and(|v| v != "0")
}

/// A database with the shapes every test needs: a box, a union, and a
/// structurally non-observable half-space.
fn test_db() -> SpatialDatabase {
    let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
    db.insert(
        "R",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
    );
    db.insert(
        "U",
        GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
            .union(&GeneralizedRelation::from_box_f64(&[3.0], &[4.0])),
    );
    // `x0 ≤ 0`: unbounded, hence not observable (Section 4 conditions).
    db.insert(
        "Half",
        GeneralizedRelation::from_tuple(GeneralizedTuple::new(
            1,
            vec![Atom::le_from_ints(&[1], 0)],
        )),
    );
    db
}

fn start_server() -> Server {
    Server::start_with_db(ServerConfig::default(), test_db()).expect("server starts")
}

fn client(server: &Server) -> Client {
    Client::new(server.addr()).with_timeout(Duration::from_secs(60))
}

fn body(text: &str) -> Json {
    parse(text, DEFAULT_MAX_DEPTH).expect("test body parses")
}

#[test]
fn health_and_stats_answer() {
    let server = start_server();
    let mut c = client(&server);
    let (status, health) = c.request_json("GET", "/health", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    let (status, stats) = c.request_json("GET", "/v1/stats", None).unwrap();
    assert_eq!(status, 200);
    let endpoints = stats.get("endpoints").unwrap();
    // The health request above is already counted.
    assert_eq!(
        endpoints
            .get("health")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    let store = stats.get("store").unwrap();
    assert!(store.get("hits").unwrap().as_u64().is_some());
    assert!(stats.get("workers").unwrap().as_u64().unwrap() >= 1);
}

#[test]
fn every_endpoint_answers_end_to_end() {
    // Serialize against the fault-injecting test: holding an empty plan
    // excludes armed plans for the duration (see FaultPlan docs).
    let _quiet = FaultPlan::new(0).install();
    let server = start_server();
    let mut c = client(&server);

    // Insert a fresh relation over HTTP (formula shape), then serve it.
    let (status, inserted) = c
        .request_json(
            "POST",
            "/v1/relations",
            Some(&body(
                r#"{"name":"box3","formula":"x0 >= 0 and x0 <= 3 and x1 >= 0 and x1 <= 1","arity":2}"#,
            )),
        )
        .unwrap();
    assert_eq!(status, 200, "{inserted:?}");
    assert_eq!(inserted.get("name").unwrap().as_str(), Some("box3"));
    assert_eq!(inserted.get("arity").unwrap().as_usize(), Some(2));

    // Box and union-of-boxes shapes insert too.
    let (status, _) = c
        .request_json(
            "POST",
            "/v1/relations",
            Some(&body(r#"{"name":"b1","box":{"lo":[0],"hi":[2]}}"#)),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (status, two) = c
        .request_json(
            "POST",
            "/v1/relations",
            Some(&body(
                r#"{"name":"b2","boxes":[{"lo":[0],"hi":[1]},{"lo":[5],"hi":[7]}]}"#,
            )),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(two.get("tuples").unwrap().as_usize(), Some(2));

    // Sample: the point lies in the inserted box.
    let (status, sample) = c
        .request_json(
            "POST",
            "/v1/sample",
            Some(&body(r#"{"relation":"box3","seed":7}"#)),
        )
        .unwrap();
    assert_eq!(status, 200, "{sample:?}");
    let point: Vec<f64> = sample
        .get("point")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(point.len(), 2);
    assert!((0.0..=3.0).contains(&point[0]) && (0.0..=1.0).contains(&point[1]));

    // Sample-batch: every draw lands and is counted.
    let (status, batch) = c
        .request_json(
            "POST",
            "/v1/sample-batch",
            Some(&body(r#"{"relation":"R","n":8,"seed":11}"#)),
        )
        .unwrap();
    assert_eq!(status, 200, "{batch:?}");
    assert_eq!(batch.get("completed").unwrap().as_usize(), Some(8));
    let points = batch.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 8);
    assert!(points.iter().all(|p| p.as_array().is_some()));

    // Volume: R = [0,2]×[0,1] has volume 2; the estimate is in range.
    let (status, volume) = c
        .request_json(
            "POST",
            "/v1/volume",
            Some(&body(r#"{"relation":"R","repeats":3,"seed":13}"#)),
        )
        .unwrap();
    assert_eq!(status, 200, "{volume:?}");
    let v = volume.get("volume").unwrap().as_f64().unwrap();
    assert!(v > 1.0 && v < 3.0, "estimate {v} far from 2.0");
    assert_eq!(volume.get("repeats").unwrap().as_usize(), Some(3));

    // Reconstruct: project R onto its first coordinate.
    let (status, recon) = c
        .request_json(
            "POST",
            "/v1/reconstruct",
            Some(&body(
                r#"{"query":"exists x1. R(x0, x1)","arity":2,"output_arity":1,"seed":17}"#,
            )),
        )
        .unwrap();
    assert_eq!(status, 200, "{recon:?}");
    assert_eq!(recon.get("arity").unwrap().as_usize(), Some(1));
    assert!(recon.get("tuples").unwrap().as_usize().unwrap() >= 1);
    assert!(recon.get("digest").unwrap().as_u64().is_some());

    // Stats saw all of it.
    let (_, stats) = c.request_json("GET", "/v1/stats", None).unwrap();
    let endpoints = stats.get("endpoints").unwrap();
    for (endpoint, at_least) in [
        ("insert_relation", 3),
        ("sample", 1),
        ("sample_batch", 1),
        ("volume", 1),
        ("reconstruct", 1),
    ] {
        let requests = endpoints
            .get(endpoint)
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(requests >= at_least, "{endpoint}: {requests} < {at_least}");
    }
}

/// Seeded requests are byte-for-byte reproducible — across requests on one
/// connection, across fresh connections, and on every endpoint. Distinct
/// streams under the same seed give distinct answers.
#[test]
fn seeded_responses_are_byte_reproducible() {
    // Serialize against the fault-injecting test: holding an empty plan
    // excludes armed plans for the duration (see FaultPlan docs).
    let _quiet = FaultPlan::new(0).install();
    let server = start_server();
    let requests: [(&str, &str); 4] = [
        ("/v1/sample", r#"{"relation":"R","seed":99,"stream":4}"#),
        ("/v1/sample-batch", r#"{"relation":"R","n":6,"seed":99}"#),
        ("/v1/volume", r#"{"relation":"R","seed":99,"repeats":3}"#),
        (
            "/v1/reconstruct",
            r#"{"query":"exists x1. R(x0, x1)","arity":2,"output_arity":1,"seed":99}"#,
        ),
    ];
    let mut first = Vec::new();
    {
        let mut c = client(&server);
        for (path, payload) in &requests {
            let response = c.request("POST", path, Some(&body(payload))).unwrap();
            assert_eq!(response.status, 200, "{path}: {}", response.body);
            first.push(response.body);
        }
        // Same connection, same request → identical bytes.
        for (i, (path, payload)) in requests.iter().enumerate() {
            let response = c.request("POST", path, Some(&body(payload))).unwrap();
            assert_eq!(response.body, first[i], "{path} drifted on one connection");
        }
    }
    // Fresh connection → still identical bytes.
    let mut c2 = client(&server);
    for (i, (path, payload)) in requests.iter().enumerate() {
        let response = c2.request("POST", path, Some(&body(payload))).unwrap();
        assert_eq!(response.body, first[i], "{path} drifted across connections");
    }
    // A different stream under the same seed answers differently.
    let shifted = c2
        .request(
            "POST",
            "/v1/sample",
            Some(&body(r#"{"relation":"R","seed":99,"stream":5}"#)),
        )
        .unwrap();
    assert_eq!(shifted.status, 200);
    assert_ne!(shifted.body, first[0], "stream index ignored");
    // Unseeded requests draw from entropy: two calls disagree.
    let e1 = c2
        .request("POST", "/v1/sample", Some(&body(r#"{"relation":"R"}"#)))
        .unwrap();
    let e2 = c2
        .request("POST", "/v1/sample", Some(&body(r#"{"relation":"R"}"#)))
        .unwrap();
    assert_eq!((e1.status, e2.status), (200, 200));
    assert_ne!(e1.body, e2.body, "entropy seeds collided");
}

/// The full error→status table, exactly as documented in `error.rs` and
/// ARCHITECTURE.md.
#[test]
fn error_status_table_is_complete() {
    let server = start_server();
    let mut c = client(&server);

    let expect = |c: &mut Client,
                  method: &str,
                  path: &str,
                  payload: Option<&str>,
                  status: u16,
                  code: &str| {
        let json_body = payload.map(body);
        let (got, response) = c.request_json(method, path, json_body.as_ref()).unwrap();
        assert_eq!(got, status, "{method} {path} {payload:?}: {response:?}");
        let got_code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{method} {path}: no error code in {response:?}"));
        assert_eq!(got_code, code, "{method} {path} {payload:?}");
    };

    // 404 unknown_relation
    expect(
        &mut c,
        "POST",
        "/v1/sample",
        Some(r#"{"relation":"ghost","seed":1}"#),
        404,
        "unknown_relation",
    );
    // 400 invalid_params: missing field / bad type / bad range
    expect(
        &mut c,
        "POST",
        "/v1/sample",
        Some(r#"{"seed":1}"#),
        400,
        "invalid_params",
    );
    expect(
        &mut c,
        "POST",
        "/v1/sample-batch",
        Some(r#"{"relation":"R","n":0}"#),
        400,
        "invalid_params",
    );
    expect(
        &mut c,
        "POST",
        "/v1/volume",
        Some(r#"{"relation":"R","repeats":"three"}"#),
        400,
        "invalid_params",
    );
    expect(
        &mut c,
        "POST",
        "/v1/reconstruct",
        Some(r#"{"query":"x0 >=","arity":1}"#),
        400,
        "invalid_params",
    );
    expect(
        &mut c,
        "POST",
        "/v1/relations",
        Some(r#"{"name":"x","box":{"lo":[1],"hi":[0]}}"#),
        400,
        "invalid_params",
    );
    // 400 bad_json: malformed body
    {
        // Hand-roll the request: the client refuses to send garbage JSON.
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let garbage = "{\"relation\": ";
        write!(
            stream,
            "POST /v1/sample HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            garbage.len(),
            garbage
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("bad_json"), "{response}");
    }
    // 404 route_not_found / 405 method_not_allowed
    expect(&mut c, "GET", "/v2/nothing", None, 404, "route_not_found");
    expect(&mut c, "GET", "/v1/sample", None, 405, "method_not_allowed");
    // 422 not_observable: structurally bad relation, well-formed request
    expect(
        &mut c,
        "POST",
        "/v1/sample",
        Some(r#"{"relation":"Half","seed":1}"#),
        422,
        "not_observable",
    );
    // 429 budget_exhausted, with cause and completed surfaced
    {
        let (status, response) = c
            .request_json(
                "POST",
                "/v1/sample",
                Some(&body(
                    r#"{"relation":"R","seed":1,"budget":{"max_attempts":0}}"#,
                )),
            )
            .unwrap();
        assert_eq!(status, 429, "{response:?}");
        let error = response.get("error").unwrap();
        assert_eq!(
            error.get("code").unwrap().as_str(),
            Some("budget_exhausted")
        );
        assert_eq!(error.get("cause").unwrap().as_str(), Some("attempts"));
        assert_eq!(error.get("completed").unwrap().as_usize(), Some(0));
    }
    // 503 generation_failed: a forced draw failure after warming the store
    {
        let (status, _) = c
            .request_json(
                "POST",
                "/v1/sample",
                Some(&body(r#"{"relation":"R","seed":2}"#)),
            )
            .unwrap();
        assert_eq!(status, 200, "warm-up draw failed");
        let _plan = FaultPlan::new(2).with_forced_draw_failures(1).install();
        expect(
            &mut c,
            "POST",
            "/v1/sample",
            Some(r#"{"relation":"R","seed":3}"#),
            503,
            "generation_failed",
        );
    }
    // 500 worker_panicked: an injected batch-worker panic, fail-fast mode
    {
        let _plan = FaultPlan::new(3).with_worker_panic_at(5).install();
        expect(
            &mut c,
            "POST",
            "/v1/sample-batch",
            Some(r#"{"relation":"R","n":16,"seed":4}"#),
            500,
            "worker_panicked",
        );
    }
    // Partial mode instead answers 200 and reports the failure inline.
    {
        let _plan = FaultPlan::new(4).with_worker_panic_at(5).install();
        let (status, response) = c
            .request_json(
                "POST",
                "/v1/sample-batch",
                Some(&body(r#"{"relation":"R","n":16,"seed":4,"partial":true}"#)),
            )
            .unwrap();
        assert_eq!(status, 200, "{response:?}");
        let completed = response.get("completed").unwrap().as_usize().unwrap();
        assert!(completed < 16, "the injected panic lost no items?");
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_str(),
            Some("partial_failure")
        );
    }
}

/// Oversized bodies are rejected with 413 before the handler ever runs,
/// and the connection is closed (the unread body is still on the wire).
#[test]
fn oversized_body_is_rejected_with_413() {
    // Serialize against the fault-injecting test: holding an empty plan
    // excludes armed plans for the duration (see FaultPlan docs).
    let _quiet = FaultPlan::new(0).install();
    let config = ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    };
    let server = Server::start_with_db(config, test_db()).unwrap();
    let mut c = client(&server);
    let huge = format!(r#"{{"relation":"R","pad":"{}"}}"#, "x".repeat(1000));
    let response = c.request("POST", "/v1/sample", Some(&body(&huge))).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);
    assert!(
        response.body.contains("body_too_large"),
        "{}",
        response.body
    );
    // The server closed that connection; the client reconnects and serves.
    let (status, _) = c
        .request_json(
            "POST",
            "/v1/sample",
            Some(&body(r#"{"relation":"R","seed":1}"#)),
        )
        .unwrap();
    assert_eq!(status, 200);
}

/// Per-relation config budget overrides apply when the request carries no
/// budget of its own, and a request-level budget wins over both.
#[test]
fn budget_resolution_order_holds() {
    // Serialize against the fault-injecting test: holding an empty plan
    // excludes armed plans for the duration (see FaultPlan docs).
    let _quiet = FaultPlan::new(0).install();
    let mut config = ServerConfig::default();
    config.budget_overrides.insert(
        "R".to_string(),
        BudgetSpec {
            max_attempts: Some(0),
            ..BudgetSpec::default()
        },
    );
    let server = Server::start_with_db(config, test_db()).unwrap();
    let mut c = client(&server);
    // No request budget: the per-relation zero-attempt override trips.
    let (status, _) = c
        .request_json(
            "POST",
            "/v1/sample",
            Some(&body(r#"{"relation":"R","seed":1}"#)),
        )
        .unwrap();
    assert_eq!(status, 429);
    // The other relation falls back to the unlimited default.
    let (status, _) = c
        .request_json(
            "POST",
            "/v1/sample",
            Some(&body(r#"{"relation":"U","seed":1}"#)),
        )
        .unwrap();
    assert_eq!(status, 200);
    // A request-level budget overrides the starved per-relation one.
    let (status, _) = c
        .request_json(
            "POST",
            "/v1/sample",
            Some(&body(
                r#"{"relation":"R","seed":1,"budget":{"max_attempts":1000}}"#,
            )),
        )
        .unwrap();
    assert_eq!(status, 200);
}

/// Concurrent clients hammer one server; every response is well-formed,
/// seeded responses agree with a reference client, and the metrics add up.
#[test]
fn concurrent_clients_share_one_server() {
    // Serialize against the fault-injecting test: holding an empty plan
    // excludes armed plans for the duration (see FaultPlan docs).
    let _quiet = FaultPlan::new(0).install();
    let server = start_server();
    let clients = 8usize;
    let per_client = if quick() { 4usize } else { 16usize };

    // Reference bodies, one per seed, fetched single-threaded first.
    let mut reference = Vec::new();
    {
        let mut c = client(&server);
        for seed in 0..per_client {
            let payload = format!(r#"{{"relation":"R","seed":{seed}}}"#);
            let response = c
                .request("POST", "/v1/sample", Some(&body(&payload)))
                .unwrap();
            assert_eq!(response.status, 200);
            reference.push(response.body);
        }
    }

    let addr = server.addr();
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(addr).with_timeout(Duration::from_secs(60));
                for i in 0..per_client {
                    // Interleave the seed order differently per client.
                    let seed = (i + k) % per_client;
                    let payload = format!(r#"{{"relation":"R","seed":{seed}}}"#);
                    let response = c
                        .request("POST", "/v1/sample", Some(&body(&payload)))
                        .unwrap();
                    assert_eq!(response.status, 200);
                    assert_eq!(
                        response.body, reference[seed],
                        "seed {seed} drifted under load"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread survived");
    }

    let mut c = client(&server);
    let (_, stats) = c.request_json("GET", "/v1/stats", None).unwrap();
    let samples = stats
        .get("endpoints")
        .unwrap()
        .get("sample")
        .unwrap()
        .get("requests")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(samples as usize, per_client + clients * per_client);
    // Distinct seeds produced distinct bodies (sanity on the reference set).
    let distinct: BTreeSet<&String> = reference.iter().collect();
    assert_eq!(distinct.len(), reference.len());
}

/// Graceful shutdown: in-flight work completes, the port stops answering,
/// and shutdown is idempotent.
#[test]
fn shutdown_is_graceful_and_idempotent() {
    let mut server = start_server();
    let addr = server.addr();
    let mut c = Client::new(addr);
    let (status, _) = c.request_json("GET", "/health", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    server.shutdown(); // idempotent
                       // New connections are refused or die without an HTTP answer.
    let mut fresh = Client::new(addr).with_timeout(Duration::from_millis(500));
    assert!(fresh.request_json("GET", "/health", None).is_err());
}
