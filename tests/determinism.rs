//! Reproducibility contract of the parallel batch layer: for a fixed
//! [`SeedSequence`] the batch entry points return **bitwise identical**
//! results for 1, 2 and 8 worker threads (and auto), and distinct child
//! streams never duplicate work across workers.

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};
use cdb_sampler::{
    ConvexBody, DfkSampler, DifferenceGenerator, FiberVolume, GeneratorParams,
    IntersectionGenerator, ProjectionGenerator, ProjectionParams, RelationGenerator,
    RelationVolumeEstimator, SeedSequence, UnionGenerator,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 8, 0];

fn params() -> GeneratorParams {
    GeneratorParams::fast()
}

/// Runs `make() -> generator` once per thread count and checks that
/// `sample_batch` and `estimate_volume_batch` are invariant.
fn assert_batches_invariant<G, F>(make: F, label: &str)
where
    G: RelationGenerator + RelationVolumeEstimator,
    F: Fn() -> G,
{
    let seq = SeedSequence::new(0xC0FFEE);
    let baseline_pts = make().sample_batch(96, &seq, THREAD_COUNTS[0]);
    let baseline_vols = make().estimate_volume_batch(6, &seq, THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let pts = make().sample_batch(96, &seq, threads);
        assert_eq!(
            baseline_pts, pts,
            "{label}: sample_batch differs at {threads} threads"
        );
        let vols = make().estimate_volume_batch(6, &seq, threads);
        assert_eq!(
            baseline_vols, vols,
            "{label}: estimate_volume_batch differs at {threads} threads"
        );
    }
    // The batch produced something — the invariance is not vacuous.
    assert!(
        baseline_pts.iter().filter(|p| p.is_some()).count() > 48,
        "{label}: too few successful draws"
    );
    assert!(
        baseline_vols.iter().filter(|v| v.is_some()).count() > 0,
        "{label}: no successful volume estimate"
    );
}

#[test]
fn union_generator_batches_are_thread_count_invariant() {
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
        .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0]));
    assert_batches_invariant(
        || UnionGenerator::new(&relation, params()).unwrap(),
        "union",
    );
}

#[test]
fn intersection_generator_batches_are_thread_count_invariant() {
    let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
    let b = GeneralizedRelation::from_box_f64(&[1.0, 1.0], &[3.0, 3.0]);
    assert_batches_invariant(
        || IntersectionGenerator::new(&[a.clone(), b.clone()], params()).unwrap(),
        "intersection",
    );
}

#[test]
fn difference_generator_batches_are_thread_count_invariant() {
    let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[3.0, 1.0]);
    let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[2.0, 1.0]);
    assert_batches_invariant(
        || DifferenceGenerator::new(&s1, &s2, params()).unwrap(),
        "difference",
    );
}

#[test]
fn projection_generator_batches_are_thread_count_invariant() {
    let tuple = GeneralizedTuple::from_box_f64(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
    // The generator's eager setup consumes its own rng; seed it identically
    // for every thread count.
    assert_batches_invariant(
        || {
            let mut rng = SeedSequence::new(11).setup_stream().rng();
            ProjectionGenerator::new(&tuple, &[0, 1], params(), &mut rng).unwrap()
        },
        "projection",
    );
}

#[test]
fn projection_weight_cache_is_thread_count_invariant_for_both_strategies() {
    // A non-trivial fiber (the Figure-1 triangle projected onto x) drives
    // the compensation loop through the memoized-weight path. Workers clone
    // the generator — and with it the current cache — so thread-count
    // invariance holds exactly because memoized weights are pure functions
    // of their grid cell (the `Estimated` strategy derives its RNG stream
    // from the cell key, never from the sampling stream).
    use cdb_constraint::Atom;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    for (mode, label) in [
        (FiberVolume::Exact, "projection-exact-cache"),
        (FiberVolume::Estimated, "projection-estimated-cache"),
    ] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_fiber_volume(mode)
        .with_cache_capacity(64);
        assert_batches_invariant(
            || {
                let mut rng = SeedSequence::new(13).setup_stream().rng();
                ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap()
            },
            label,
        );
    }
}

#[test]
fn stratified_projection_batches_are_thread_count_invariant() {
    // The stratified selector replaces the rejection loop with an alias
    // table built once at prepare time; its construction is RNG-free and
    // its weights are pure functions of the cell, so warm/cold selector
    // state and worker count must both be invisible. The cascade variant
    // exercises the lazily-memoized fine tables under batch fan-out.
    use cdb_constraint::Atom;
    use cdb_sampler::CellSelection;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    for (selection, budget, label) in [
        (
            CellSelection::Stratified,
            1usize << 16,
            "projection-stratified",
        ),
        (CellSelection::CoarseToFine, 16, "projection-coarse-to-fine"),
    ] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_cell_selection(selection)
        .with_max_enumerated_cells(budget);
        assert_batches_invariant(
            || {
                let mut rng = SeedSequence::new(17).setup_stream().rng();
                let g = ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap();
                assert_eq!(g.resolved_cell_selection(), selection);
                g
            },
            label,
        );
    }
}

#[test]
fn rejection_and_stratified_selection_pass_the_same_volume_gate() {
    // Both strategies estimate the same projection length (exactly 1 for
    // the Figure-1 triangle). The rejection path is a Monte-Carlo (ε, δ)
    // estimate; the stratified path is a deterministic Riemann sum. Each
    // must sit inside the fast-params ε-band, hence inside the combined
    // budget of each other.
    use cdb_constraint::Atom;
    use cdb_sampler::CellSelection;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    let mut estimates = Vec::new();
    for selection in [CellSelection::Rejection, CellSelection::Stratified] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_cell_selection(selection);
        let mut rng = SeedSequence::new(19).setup_stream().rng();
        let mut g = ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap();
        let mut sample_rng = SeedSequence::new(0x70CC).setup_stream().rng();
        let v = g
            .estimate_volume(&mut sample_rng)
            .expect("volume estimate failed");
        assert!(
            (v - 1.0).abs() < 0.45,
            "{selection:?}: volume {v} outside the fast-params band"
        );
        estimates.push(v);
    }
    assert!(
        (estimates[0] - estimates[1]).abs() < 0.5,
        "strategies disagree beyond the combined budget: {estimates:?}"
    );
}

#[test]
fn dfk_sampler_batches_are_thread_count_invariant() {
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let mut rng = SeedSequence::new(21).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let seq = SeedSequence::new(0xBEEF);
    let baseline_pts = sampler.sample_batch(128, &seq, 1);
    let baseline_vols = sampler.estimate_volume_batch(8, &seq, 1);
    for threads in [2usize, 8, 0] {
        assert_eq!(baseline_pts, sampler.sample_batch(128, &seq, threads));
        assert_eq!(
            baseline_vols,
            sampler.estimate_volume_batch(8, &seq, threads)
        );
    }
    assert_eq!(
        sampler.estimate_volume_median_batch(8, &seq, 1),
        sampler.estimate_volume_median_batch(8, &seq, 8)
    );
}

#[test]
fn distinct_child_streams_never_duplicate_points() {
    // If two workers (or two items) shared an RNG stream, the continuous
    // samples would collide bitwise. Across 512 points from 8 workers, every
    // pair must differ.
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let mut rng = SeedSequence::new(31).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let pts = sampler.sample_batch(512, &SeedSequence::new(0xDEAD), 8);
    let mut seen = std::collections::HashSet::new();
    for p in &pts {
        let bits: Vec<u64> = p.iter().map(|x| x.to_bits()).collect();
        assert!(seen.insert(bits), "duplicated point across workers: {p:?}");
    }
}

#[test]
fn distinct_seeds_give_distinct_batches() {
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
    let mut g = UnionGenerator::new(&relation, params()).unwrap();
    let a = g.sample_batch(32, &SeedSequence::new(1), 0);
    let mut g2 = UnionGenerator::new(&relation, params()).unwrap();
    let b = g2.sample_batch(32, &SeedSequence::new(2), 0);
    assert_ne!(a, b, "different seeds must give different batches");
}
