//! Reproducibility contract of the parallel batch layer: for a fixed
//! [`SeedSequence`] the batch entry points return **bitwise identical**
//! results for 1, 2 and 8 worker threads (and auto), and distinct child
//! streams never duplicate work across workers.

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};
use cdb_sampler::{
    ConvexBody, DfkSampler, DifferenceGenerator, FiberVolume, GeneratorParams,
    IntersectionGenerator, ProjectionGenerator, ProjectionParams, RelationGenerator,
    RelationVolumeEstimator, SeedSequence, UnionGenerator,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 8, 0];

fn params() -> GeneratorParams {
    GeneratorParams::fast()
}

/// Runs `make() -> generator` once per thread count and checks that
/// `sample_batch` and `estimate_volume_batch` are invariant.
fn assert_batches_invariant<G, F>(make: F, label: &str)
where
    G: RelationGenerator + RelationVolumeEstimator,
    F: Fn() -> G,
{
    let seq = SeedSequence::new(0xC0FFEE);
    let baseline_pts = make().sample_batch(96, &seq, THREAD_COUNTS[0]);
    let baseline_vols = make().estimate_volume_batch(6, &seq, THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let pts = make().sample_batch(96, &seq, threads);
        assert_eq!(
            baseline_pts, pts,
            "{label}: sample_batch differs at {threads} threads"
        );
        let vols = make().estimate_volume_batch(6, &seq, threads);
        assert_eq!(
            baseline_vols, vols,
            "{label}: estimate_volume_batch differs at {threads} threads"
        );
    }
    // The batch produced something — the invariance is not vacuous.
    assert!(
        baseline_pts.iter().filter(|p| p.is_some()).count() > 48,
        "{label}: too few successful draws"
    );
    assert!(
        baseline_vols.iter().filter(|v| v.is_some()).count() > 0,
        "{label}: no successful volume estimate"
    );
}

#[test]
fn union_generator_batches_are_thread_count_invariant() {
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
        .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0]));
    assert_batches_invariant(
        || UnionGenerator::new(&relation, params()).unwrap(),
        "union",
    );
}

#[test]
fn intersection_generator_batches_are_thread_count_invariant() {
    let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
    let b = GeneralizedRelation::from_box_f64(&[1.0, 1.0], &[3.0, 3.0]);
    assert_batches_invariant(
        || IntersectionGenerator::new(&[a.clone(), b.clone()], params()).unwrap(),
        "intersection",
    );
}

#[test]
fn difference_generator_batches_are_thread_count_invariant() {
    let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[3.0, 1.0]);
    let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[2.0, 1.0]);
    assert_batches_invariant(
        || DifferenceGenerator::new(&s1, &s2, params()).unwrap(),
        "difference",
    );
}

#[test]
fn projection_generator_batches_are_thread_count_invariant() {
    let tuple = GeneralizedTuple::from_box_f64(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
    // The generator's eager setup consumes its own rng; seed it identically
    // for every thread count.
    assert_batches_invariant(
        || {
            let mut rng = SeedSequence::new(11).setup_stream().rng();
            ProjectionGenerator::new(&tuple, &[0, 1], params(), &mut rng).unwrap()
        },
        "projection",
    );
}

#[test]
fn projection_weight_cache_is_thread_count_invariant_for_both_strategies() {
    // A non-trivial fiber (the Figure-1 triangle projected onto x) drives
    // the compensation loop through the memoized-weight path. Workers clone
    // the generator — and with it the current cache — so thread-count
    // invariance holds exactly because memoized weights are pure functions
    // of their grid cell (the `Estimated` strategy derives its RNG stream
    // from the cell key, never from the sampling stream).
    use cdb_constraint::Atom;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    for (mode, label) in [
        (FiberVolume::Exact, "projection-exact-cache"),
        (FiberVolume::Estimated, "projection-estimated-cache"),
    ] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_fiber_volume(mode)
        .with_cache_capacity(64);
        assert_batches_invariant(
            || {
                let mut rng = SeedSequence::new(13).setup_stream().rng();
                ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap()
            },
            label,
        );
    }
}

#[test]
fn stratified_projection_batches_are_thread_count_invariant() {
    // The stratified selector replaces the rejection loop with an alias
    // table built once at prepare time; its construction is RNG-free and
    // its weights are pure functions of the cell, so warm/cold selector
    // state and worker count must both be invisible. The cascade variant
    // exercises the lazily-memoized fine tables under batch fan-out.
    use cdb_constraint::Atom;
    use cdb_sampler::CellSelection;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    for (selection, budget, label) in [
        (
            CellSelection::Stratified,
            1usize << 16,
            "projection-stratified",
        ),
        (CellSelection::CoarseToFine, 16, "projection-coarse-to-fine"),
    ] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_cell_selection(selection)
        .with_max_enumerated_cells(budget);
        assert_batches_invariant(
            || {
                let mut rng = SeedSequence::new(17).setup_stream().rng();
                let g = ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap();
                assert_eq!(g.resolved_cell_selection(), selection);
                g
            },
            label,
        );
    }
}

#[test]
fn rejection_and_stratified_selection_pass_the_same_volume_gate() {
    // Both strategies estimate the same projection length (exactly 1 for
    // the Figure-1 triangle). The rejection path is a Monte-Carlo (ε, δ)
    // estimate; the stratified path is a deterministic Riemann sum. Each
    // must sit inside the fast-params ε-band, hence inside the combined
    // budget of each other.
    use cdb_constraint::Atom;
    use cdb_sampler::CellSelection;
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    );
    let mut estimates = Vec::new();
    for selection in [CellSelection::Rejection, CellSelection::Stratified] {
        let proj = ProjectionParams::new(GeneratorParams {
            gamma: 0.05,
            ..params()
        })
        .with_cell_selection(selection);
        let mut rng = SeedSequence::new(19).setup_stream().rng();
        let mut g = ProjectionGenerator::new_with(&triangle, &[0], proj, &mut rng).unwrap();
        let mut sample_rng = SeedSequence::new(0x70CC).setup_stream().rng();
        let v = g
            .estimate_volume(&mut sample_rng)
            .expect("volume estimate failed");
        assert!(
            (v - 1.0).abs() < 0.45,
            "{selection:?}: volume {v} outside the fast-params band"
        );
        estimates.push(v);
    }
    assert!(
        (estimates[0] - estimates[1]).abs() < 0.5,
        "strategies disagree beyond the combined budget: {estimates:?}"
    );
}

#[test]
fn dfk_sampler_batches_are_thread_count_invariant() {
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let mut rng = SeedSequence::new(21).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let seq = SeedSequence::new(0xBEEF);
    let baseline_pts = sampler.sample_batch(128, &seq, 1);
    let baseline_vols = sampler.estimate_volume_batch(8, &seq, 1);
    for threads in [2usize, 8, 0] {
        assert_eq!(baseline_pts, sampler.sample_batch(128, &seq, threads));
        assert_eq!(
            baseline_vols,
            sampler.estimate_volume_batch(8, &seq, threads)
        );
    }
    assert_eq!(
        sampler.estimate_volume_median_batch(8, &seq, 1),
        sampler.estimate_volume_median_batch(8, &seq, 8)
    );
}

#[test]
fn distinct_child_streams_never_duplicate_points() {
    // If two workers (or two items) shared an RNG stream, the continuous
    // samples would collide bitwise. Across 512 points from 8 workers, every
    // pair must differ.
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let mut rng = SeedSequence::new(31).setup_stream().rng();
    let sampler = DfkSampler::new(body, params(), &mut rng);
    let pts = sampler.sample_batch(512, &SeedSequence::new(0xDEAD), 8);
    let mut seen = std::collections::HashSet::new();
    for p in &pts {
        let bits: Vec<u64> = p.iter().map(|x| x.to_bits()).collect();
        assert!(seen.insert(bits), "duplicated point across workers: {p:?}");
    }
}

// ---------------------------------------------------------------------------
// Prepared-store state axes: cold / warm / shared / evicting / disabled.
//
// The store's contract is that caching prepared bodies is *bitwise
// invisible*. The invisibility argument has two halves: (a) preparation
// randomness is a pure function of the cache key (`SeedSequence::new(key)`),
// never of the caller's stream, so every build of a body is identical; and
// (b) item streams are independent of setup state, so sampling from a
// cached body equals sampling from a fresh one. The helper below runs every
// store state against the disabled-store single-threaded baseline, crossed
// with the PR 6 thread-count axis.
// ---------------------------------------------------------------------------

const STORE_BATCH: usize = 48;
const STORE_VOLS: usize = 4;

/// Runs `make() -> generator` through every store state × thread count and
/// checks both batch entry points against the disabled-store baseline.
/// Preparation is always funded by `SeedSequence::new(key)` — the same
/// key-derived convention `SpatialDatabase::prepared_generator` uses.
fn assert_store_states_invariant<G, F>(make: F, key: u64, label: &str)
where
    G: RelationGenerator + RelationVolumeEstimator + Clone + Send + Sync,
    F: Fn() -> G + Sync,
{
    use cdb_sampler::PreparedStore;

    let prep = SeedSequence::new(key);
    let seq = SeedSequence::new(0x57A7E ^ key);
    let build = || {
        let mut g = make();
        g.prepare(&prep);
        g.prepare_estimator(&prep);
        g
    };
    // Baseline: disabled-store semantics (prepare from scratch), 1 thread.
    let baseline_pts = build().sample_batch(STORE_BATCH, &seq, 1);
    let baseline_vols = build().estimate_volume_batch(STORE_VOLS, &seq, 1);
    assert!(
        baseline_pts.iter().filter(|p| p.is_some()).count() * 2 > STORE_BATCH,
        "{label}: too few successful draws"
    );
    assert!(
        baseline_vols.iter().filter(|v| v.is_some()).count() > 0,
        "{label}: no successful volume estimate"
    );

    for &threads in &THREAD_COUNTS {
        // Disabled: capacity 0 always rebuilds.
        let disabled = PreparedStore::<u64, G>::new(0);
        let mut g = (*disabled.get_or_prepare(&key, &build)).clone();
        assert_eq!(
            baseline_pts,
            g.sample_batch(STORE_BATCH, &seq, threads),
            "{label}: disabled store differs at {threads} threads"
        );
        assert_eq!(
            baseline_vols,
            g.estimate_volume_batch(STORE_VOLS, &seq, threads),
            "{label}: disabled store volumes differ at {threads} threads"
        );

        // Cold: first touch of an enabled store is a miss …
        let store = PreparedStore::<u64, G>::new(8);
        let mut cold = (*store.get_or_prepare(&key, &build)).clone();
        assert_eq!(
            baseline_pts,
            cold.sample_batch(STORE_BATCH, &seq, threads),
            "{label}: cold store differs at {threads} threads"
        );
        // … warm: the second touch must hit and attach the same body.
        let warm_arc = store.get_or_prepare(&key, || unreachable!("{label}: warm lookup missed"));
        let mut warm = (*warm_arc).clone();
        assert_eq!(store.stats().hits, 1, "{label}: warm lookup did not hit");
        assert_eq!(
            baseline_pts,
            warm.sample_batch(STORE_BATCH, &seq, threads),
            "{label}: warm store differs at {threads} threads"
        );
        assert_eq!(
            baseline_vols,
            warm.estimate_volume_batch(STORE_VOLS, &seq, threads),
            "{label}: warm store volumes differ at {threads} threads"
        );

        // Evicting: capacity 1 — a decoy key forces the body out between
        // uses, so each round rebuilds. Held clones stay valid throughout.
        let tiny = PreparedStore::<u64, G>::new(1);
        for round in 0..2 {
            let mut g = (*tiny.get_or_prepare(&key, &build)).clone();
            tiny.get_or_prepare(&!key, &build); // evicts `key`'s body
            assert_eq!(
                baseline_pts,
                g.sample_batch(STORE_BATCH, &seq, threads),
                "{label}: evicting store differs at {threads} threads (round {round})"
            );
        }
        assert!(
            tiny.stats().evictions > 0,
            "{label}: capacity-1 store never evicted"
        );

        // Shared: racing attachers of one body must all reproduce the
        // baseline.
        let shared = PreparedStore::<u64, G>::new(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut g = (*shared.get_or_prepare(&key, &build)).clone();
                    assert_eq!(
                        baseline_pts,
                        g.sample_batch(STORE_BATCH, &seq, threads),
                        "{label}: shared store differs at {threads} threads"
                    );
                });
            }
        });
        assert!(
            shared.stats().hits + shared.stats().misses == 4,
            "{label}: shared store lookup accounting is off"
        );
    }
}

#[test]
fn union_store_states_are_invisible() {
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
        .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0]));
    assert_store_states_invariant(
        || UnionGenerator::new(&relation, params()).unwrap(),
        0xA111CE,
        "union-store",
    );
}

#[test]
fn intersection_store_states_are_invisible() {
    let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
    let b = GeneralizedRelation::from_box_f64(&[1.0, 1.0], &[3.0, 3.0]);
    assert_store_states_invariant(
        || IntersectionGenerator::new(&[a.clone(), b.clone()], params()).unwrap(),
        0x1A7E25EC7,
        "intersection-store",
    );
}

#[test]
fn difference_store_states_are_invisible() {
    let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[3.0, 1.0]);
    let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[2.0, 1.0]);
    assert_store_states_invariant(
        || DifferenceGenerator::new(&s1, &s2, params()).unwrap(),
        0xD1FFE12,
        "difference-store",
    );
}

#[test]
fn projection_store_states_are_invisible() {
    let tuple = GeneralizedTuple::from_box_f64(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
    // The ctor's eager setup randomness is key-derived, matching the
    // invisibility contract (preparation is a pure function of the key).
    let key = 0x1210_1EC7;
    assert_store_states_invariant(
        || {
            let mut rng = SeedSequence::new(key).setup_stream().rng();
            ProjectionGenerator::new(&tuple, &[0, 1], params(), &mut rng).unwrap()
        },
        key,
        "projection-store",
    );
}

#[test]
fn dfk_sampler_store_states_are_invisible() {
    // The fifth family has inherent `&self` batch methods, so stored bodies
    // are sampled straight through the `Arc` — no attach clone needed.
    use cdb_sampler::PreparedStore;
    let square = cdb_geometry::HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let body = ConvexBody::from_polytope(&square).unwrap();
    let key = 0xDF1C;
    let build = || {
        let mut rng = SeedSequence::new(key).setup_stream().rng();
        DfkSampler::new(body.clone(), params(), &mut rng)
    };
    let seq = SeedSequence::new(0x0DD_BA11);
    let baseline = build().sample_batch(STORE_BATCH, &seq, 1);
    let baseline_vols = build().estimate_volume_batch(STORE_VOLS, &seq, 1);
    assert_eq!(baseline.len(), STORE_BATCH);
    for &threads in &THREAD_COUNTS {
        for capacity in [0usize, 8] {
            let store = PreparedStore::<u64, DfkSampler>::new(capacity);
            let first = store.get_or_prepare(&key, &build);
            let second = store.get_or_prepare(&key, &build);
            for sampler in [&first, &second] {
                assert_eq!(
                    baseline,
                    sampler.sample_batch(STORE_BATCH, &seq, threads),
                    "dfk-store: capacity {capacity} differs at {threads} threads"
                );
                assert_eq!(
                    baseline_vols,
                    sampler.estimate_volume_batch(STORE_VOLS, &seq, threads),
                    "dfk-store: capacity {capacity} volumes differ at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn spatial_database_store_states_are_invisible_across_thread_counts() {
    // End-to-end axis product on the public API: (cold / warm / evicting /
    // disabled) × (1 / 2 / 8 / auto threads), all against the
    // disabled-store single-threaded baseline. The shared axis is covered
    // by `tests/prepared_store.rs`.
    use cdb_core::SpatialDatabase;
    let populate = |db: &mut SpatialDatabase| {
        db.insert(
            "A",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
                .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0])),
        );
        db.insert(
            "B",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
    };
    let seq = SeedSequence::new(0xDBA1E5);
    let mut disabled = SpatialDatabase::with_params(params()).with_store_capacity(0);
    populate(&mut disabled);
    let baseline = disabled.approx_generate_batch("A", 64, &seq, 1).unwrap();
    let baseline_vol = disabled.approx_volume_batch("A", 4, &seq, 1).unwrap();
    assert!(baseline.iter().filter(|p| p.is_some()).count() > 32);

    for threads in [1usize, 2, 8, 0] {
        // Disabled.
        assert_eq!(
            baseline,
            disabled
                .approx_generate_batch("A", 64, &seq, threads)
                .unwrap(),
            "disabled store differs at {threads} threads"
        );
        // Cold, then warm, on one db.
        let mut db = SpatialDatabase::with_params(params());
        populate(&mut db);
        assert_eq!(
            baseline,
            db.approx_generate_batch("A", 64, &seq, threads).unwrap(),
            "cold store differs at {threads} threads"
        );
        assert_eq!(
            baseline,
            db.approx_generate_batch("A", 64, &seq, threads).unwrap(),
            "warm store differs at {threads} threads"
        );
        assert!(db.store_stats().hits > 0);
        assert_eq!(
            baseline_vol,
            db.approx_volume_batch("A", 4, &seq, threads).unwrap(),
            "warm store volume differs at {threads} threads"
        );
        // Evicting: capacity 1, alternating names.
        let mut tiny = SpatialDatabase::with_params(params()).with_store_capacity(1);
        populate(&mut tiny);
        for _ in 0..2 {
            assert_eq!(
                baseline,
                tiny.approx_generate_batch("A", 64, &seq, threads).unwrap(),
                "evicting store differs at {threads} threads"
            );
            tiny.approx_generate_batch("B", 8, &seq, 1).unwrap();
        }
        assert!(tiny.store_stats().evictions > 0);
    }
}

// ---------------------------------------------------------------------------
// Query-budget axes: (no budget / huge budget / exactly-exhausting budget)
// × thread count. The resilience layer's contract is that budget checks
// consume no randomness: a budget that never trips is bitwise invisible,
// and one that does trip does so at the same deterministic step count for
// every thread count.
// ---------------------------------------------------------------------------

#[test]
fn unexhausted_budgets_are_bitwise_invisible() {
    use cdb_sampler::QueryBudget;
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
        .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0]));
    let seq = SeedSequence::new(0xB0D6E7);
    let make = |budget: QueryBudget| {
        let mut g = UnionGenerator::new(&relation, params()).unwrap();
        g.set_budget(budget);
        g
    };
    let baseline_pts = make(QueryBudget::unlimited()).sample_batch(64, &seq, 1);
    let baseline_vols = make(QueryBudget::unlimited()).estimate_volume_batch(4, &seq, 1);
    assert!(baseline_pts.iter().filter(|p| p.is_some()).count() > 32);
    // A budget far above what any draw needs must change nothing — on any
    // thread count, through both batch entry points.
    let huge = || {
        QueryBudget::unlimited()
            .with_max_steps(1 << 40)
            .with_max_attempts(1 << 40)
    };
    for &threads in &THREAD_COUNTS {
        assert_eq!(
            baseline_pts,
            make(huge()).sample_batch(64, &seq, threads),
            "huge budget perturbed sample_batch at {threads} threads"
        );
        assert_eq!(
            baseline_vols,
            make(huge()).estimate_volume_batch(4, &seq, threads),
            "huge budget perturbed estimate_volume_batch at {threads} threads"
        );
    }
}

#[test]
fn budget_exhaustion_is_deterministic_across_thread_counts() {
    use cdb_sampler::{BudgetTrip, QueryBudget};
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
    let seq = SeedSequence::new(0xE4A057);
    // Probe how many walk steps one *prepared* draw needs (a large limited
    // budget tracks usage; an unlimited meter deliberately skips the
    // bookkeeping). Preparation runs first, exactly as sample_batch does,
    // so setup walks are excluded from the measurement.
    let mut probe = UnionGenerator::new(&relation, params()).unwrap();
    probe.prepare(&seq);
    probe.set_budget(QueryBudget::unlimited().with_max_steps(1 << 40));
    let mut rng = seq.item_stream(0).rng();
    assert!(probe.sample(&mut rng).is_some());
    let need = probe.budget_meter().steps_used();
    assert!(need > 0);

    let make = |budget: QueryBudget| {
        let mut g = UnionGenerator::new(&relation, params()).unwrap();
        g.set_budget(budget);
        g
    };
    // Exactly enough steps: the draw completes and is bitwise identical to
    // the unlimited baseline (the final chunk consumes the last step and no
    // further grant is requested).
    let baseline = make(QueryBudget::unlimited()).sample_batch(32, &seq, 1);
    for &threads in &THREAD_COUNTS {
        assert_eq!(
            baseline,
            make(QueryBudget::unlimited().with_max_steps(need)).sample_batch(32, &seq, threads),
            "exactly-sufficient budget perturbed the batch at {threads} threads"
        );
        // One step short: every item trips — the same outcome vector for
        // every thread count.
        let starved =
            make(QueryBudget::unlimited().with_max_steps(need - 1)).sample_batch(32, &seq, threads);
        assert!(
            starved.iter().all(|p| p.is_none()),
            "a draw survived an insufficient step budget at {threads} threads"
        );
    }
    // Sequential exhaustion stops at the same step count every time.
    let mut a = make(QueryBudget::unlimited().with_max_steps(need - 1));
    let mut b = make(QueryBudget::unlimited().with_max_steps(need - 1));
    assert!(a.sample(&mut seq.item_stream(0).rng()).is_none());
    assert!(b.sample(&mut seq.item_stream(0).rng()).is_none());
    assert_eq!(a.budget_trip(), Some(BudgetTrip::Steps));
    assert_eq!(a.budget_meter().steps_used(), b.budget_meter().steps_used());
}

#[test]
fn distinct_seeds_give_distinct_batches() {
    let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
    let mut g = UnionGenerator::new(&relation, params()).unwrap();
    let a = g.sample_batch(32, &SeedSequence::new(1), 0);
    let mut g2 = UnionGenerator::new(&relation, params()).unwrap();
    let b = g2.sample_batch(32, &SeedSequence::new(2), 0);
    assert_ne!(a, b, "different seeds must give different batches");
}

/// The load harness's query *results* (payloads and typed errors; timings
/// excluded) are bitwise identical across client-thread counts: request `i`
/// draws from `item_stream(i)` regardless of which worker serves it, and
/// the prepared store is bitwise invisible under contention.
#[test]
fn load_harness_results_are_thread_count_invariant() {
    use cdb_bench::load::{run, schedule, LoadSpec};
    use cdb_core::SpatialDatabase;
    use cdb_workloads::sessions::{polytope_soup, SessionMix, SoupSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let soup = polytope_soup(&SoupSpec::default(), &mut StdRng::seed_from_u64(55));
    let mut db = SpatialDatabase::with_params(params());
    for (name, relation) in &soup.entries {
        db.insert(name.clone(), relation.clone());
    }
    let names = soup.names();
    // A high arrival rate keeps the run short: invariance does not depend
    // on the pacing, only the results do not.
    let spec = LoadSpec::new(96, 8000.0, 0xBEA7, SessionMix::read_heavy());
    let sched = schedule(&spec, &names);
    let baseline = run(&db, &spec.clone().with_threads(THREAD_COUNTS[0]), &sched).result_bits();
    assert_eq!(baseline.len(), 96);
    assert!(
        baseline.iter().all(|b| b.is_some()),
        "no request may be lost"
    );
    for &threads in &THREAD_COUNTS[1..] {
        let bits = run(&db, &spec.clone().with_threads(threads), &sched).result_bits();
        assert_eq!(
            baseline, bits,
            "load results differ at {threads} client threads"
        );
    }
}

// ---------------------------------------------------------------------------
// Unified-query parity: the legacy `approx_*` names are thin wrappers over
// `SpatialDatabase::query` / `query_with_rng`. This suite pins that a
// directly-built `QuerySpec` reproduces each legacy entry point **bitwise**
// across the store-state × thread-count axis product, so neither surface
// can drift from the other (the server binds only the new surface; the
// legacy names are what every pre-existing caller holds).
// ---------------------------------------------------------------------------

#[test]
fn unified_query_matches_legacy_entry_points_bitwise() {
    use cdb_constraint::parse_formula;
    use cdb_core::{QuerySpec, SpatialDatabase};
    use cdb_sampler::QueryBudget;

    let populate = |db: &mut SpatialDatabase| {
        db.insert(
            "A",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
                .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0])),
        );
        db.insert(
            "B",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
    };
    // Both sides of every comparison get their own database, driven through
    // the identical call sequence, so their store trajectories (cold → warm,
    // evictions) match call for call.
    let fresh = |capacity: Option<usize>| {
        let mut db = match capacity {
            Some(c) => SpatialDatabase::with_params(params()).with_store_capacity(c),
            None => SpatialDatabase::with_params(params()),
        };
        populate(&mut db);
        db
    };
    let seq = SeedSequence::new(0x5EC7_1E6A);
    let conjunction = parse_formula("A(x0, x1) and B(x0, x1)", 2).unwrap();

    // Store states: disabled (always rebuilds), default (cold → warm), and
    // capacity-1 (evicting between rounds).
    for capacity in [Some(0), None, Some(1)] {
        for &threads in &THREAD_COUNTS {
            let legacy_db = fresh(capacity);
            let unified_db = fresh(capacity);

            // Two rounds: under the default store the first is cold and the
            // second warm; under capacity 1 the interleaved touch of "B"
            // evicts "A" between rounds.
            for round in 0..2 {
                let label = format!("capacity {capacity:?}, {threads} threads, round {round}");
                let legacy = legacy_db
                    .approx_generate_batch("A", 32, &seq, threads)
                    .unwrap();
                let unified = unified_db
                    .query(
                        &QuerySpec::sample("A", 32)
                            .with_seed_sequence(seq)
                            .with_threads(threads)
                            .partial(),
                    )
                    .unwrap()
                    .into_points_batch()
                    .results;
                assert!(legacy.iter().filter(|p| p.is_some()).count() > 16);
                assert_eq!(legacy, unified, "sample batch drifted ({label})");

                let legacy_vol = legacy_db
                    .approx_volume_batch("A", 4, &seq, threads)
                    .unwrap();
                let unified_vol = unified_db
                    .query(
                        &QuerySpec::volume("A", 4)
                            .with_seed_sequence(seq)
                            .with_threads(threads)
                            .partial(),
                    )
                    .unwrap()
                    .volume()
                    .expect("volume batch produced no estimate");
                assert_eq!(
                    legacy_vol.to_bits(),
                    unified_vol.to_bits(),
                    "volume median drifted ({label})"
                );

                legacy_db.approx_generate_batch("B", 4, &seq, 1).unwrap();
                unified_db
                    .query(&QuerySpec::sample("B", 4).with_seed_sequence(seq).partial())
                    .unwrap();
            }

            // Sequential budgeted entry points under an identical rng stream.
            let budget = QueryBudget::unlimited().with_max_steps(1 << 40);
            let legacy_pt = legacy_db
                .approx_generate_budgeted("A", &budget, &mut seq.item_stream(3).rng())
                .unwrap();
            let unified_pt = unified_db
                .query_with_rng(
                    &QuerySpec::sample("A", 1).with_budget(&budget),
                    &mut seq.item_stream(3).rng(),
                )
                .unwrap()
                .into_points_batch()
                .results
                .into_iter()
                .flatten()
                .next()
                .unwrap();
            assert_eq!(legacy_pt, unified_pt, "budgeted draw drifted");

            let legacy_vol = legacy_db
                .approx_volume_budgeted("A", &budget, &mut seq.item_stream(4).rng())
                .unwrap();
            let unified_vol = unified_db
                .query_with_rng(
                    &QuerySpec::volume("A", 1).with_budget(&budget),
                    &mut seq.item_stream(4).rng(),
                )
                .unwrap()
                .volume()
                .unwrap();
            assert_eq!(legacy_vol.to_bits(), unified_vol.to_bits());

            // `approx_generate_many` (skip semantics) = partial query with
            // the `None` slots dropped.
            let legacy_many = legacy_db
                .approx_generate_many("A", 12, &mut seq.item_stream(5).rng())
                .unwrap();
            let unified_many: Vec<Vec<f64>> = unified_db
                .query_with_rng(
                    &QuerySpec::sample("A", 12).partial(),
                    &mut seq.item_stream(5).rng(),
                )
                .unwrap()
                .into_points_batch()
                .results
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(legacy_many, unified_many, "generate_many drifted");

            // Reconstruction: compare the relations' full debug renderings
            // (floats print shortest-roundtrip, so textual equality is
            // bitwise equality).
            let legacy_rel = legacy_db
                .approx_query(&conjunction, 2, &mut seq.item_stream(6).rng())
                .unwrap();
            let unified_outcome = unified_db
                .query_with_rng(
                    &QuerySpec::reconstruct("A", conjunction.clone(), 2),
                    &mut seq.item_stream(6).rng(),
                )
                .unwrap();
            let unified_rel = unified_outcome
                .relation()
                .expect("reconstruction outcome holds a relation");
            assert_eq!(
                format!("{legacy_rel:?}"),
                format!("{unified_rel:?}"),
                "reconstruction drifted"
            );
        }
    }
}

/// The arrival schedule is bitwise stable for a fixed seed: rebuilding it
/// reproduces it exactly, and the leading arrival offsets match pinned bit
/// patterns (so any change to the interarrival derivation is a visible,
/// deliberate break).
#[test]
fn load_schedule_is_bitwise_stable_for_a_fixed_seed() {
    use cdb_bench::load::{schedule, LoadSpec, QueryClass};
    use cdb_workloads::sessions::SessionMix;

    let spec = LoadSpec::new(8, 1000.0, 0x10AD, SessionMix::read_heavy());
    let names = vec!["A".to_string(), "B".to_string()];
    let s = schedule(&spec, &names);
    assert_eq!(s, schedule(&spec, &names));

    // Pinned leading requests (seed 0x10AD, rate 1000/s, read-heavy mix over
    // relations {A, B}): exponential-gap arrivals down to the bit, plus the
    // class/relation picks.
    let pinned: [(u64, QueryClass, &str); 4] = [
        (0x3f1f8892500c1bcb, QueryClass::Sample, "B"),
        (0x3f498667706d943a, QueryClass::Sample, "B"),
        (0x3f66ad7e893b565e, QueryClass::Volume, "B"),
        (0x3f6bc469bbdad06c, QueryClass::Volume, "A"),
    ];
    for (i, (bits, class, relation)) in pinned.into_iter().enumerate() {
        let req = &s.requests[i];
        assert_eq!(
            req.arrival_secs.to_bits(),
            bits,
            "request {i}: arrival bits drifted (got 0x{:016x})",
            req.arrival_secs.to_bits()
        );
        assert_eq!(req.class, class, "request {i}");
        assert_eq!(req.relation, relation, "request {i}");
    }
    // The schedule is open-loop: arrivals are nondecreasing offsets fixed
    // before any query runs.
    for pair in s.requests.windows(2) {
        assert!(pair[1].arrival_secs >= pair[0].arrival_secs);
    }
}
