//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion API the experiment benches use:
//! [`Criterion`] with the `sample_size` / `warm_up_time` / `measurement_time`
//! builders, [`Criterion::benchmark_group`], `bench_function` + `Bencher::iter`,
//! `finish`, `final_summary`, and [`black_box`].
//!
//! Timing is a straightforward wall-clock mean over `sample_size` samples —
//! there is no outlier analysis, plotting, or statistics. Results print one
//! line per benchmark to stderr.
//!
//! # Example
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default()
//!     .sample_size(10)
//!     .warm_up_time(std::time::Duration::from_millis(1))
//!     .measurement_time(std::time::Duration::from_millis(5));
//! let mut group = c.benchmark_group("demo");
//! group.bench_function("sum", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
//! group.finish();
//! c.final_summary();
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point: collects configuration and runs benchmark groups.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            completed: 0,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine untimed before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one("", &id, f);
        self
    }

    /// Prints the closing line. (Upstream criterion renders reports here;
    /// this stub only counts.)
    pub fn final_summary(&mut self) {
        eprintln!("criterion-lite: {} benchmark(s) completed", self.completed);
    }

    fn run_one<F>(&mut self, group: &str, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        eprintln!(
            "bench {label:<48} {:>12.1} ns/iter ({} iters)",
            bencher.mean_ns, bencher.iters
        );
        self.completed += 1;
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under the id `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        self.criterion.run_one(&name, &id.into(), f);
        self
    }

    /// Ends the group. (No-op beyond upstream-API compatibility.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly — first untimed for the warm-up window, then
    /// timed until the measurement window or sample budget is exhausted — and
    /// records the mean wall-clock nanoseconds per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_up_end || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("t");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.final_summary();
        assert_eq!(c.completed, 1);
    }
}
