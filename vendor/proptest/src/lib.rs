//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API that the workspace's property
//! suites use: the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`strategy::Just`], the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case is
//! reported by the panic of the underlying `assert!`. Generation is
//! deterministic per test (seeded from the test's source line), so failures
//! reproduce across runs.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a test module the function would carry `#[test]`; the attribute is
//! // omitted here so the doc example can invoke it directly.
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG behind it.

    /// The deterministic generator strategies draw from.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG used by the [`crate::proptest!`] macro.
    pub fn rng_for(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(0x5eed_cdb0_0000_0000 ^ seed)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeFrom, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for the
        /// structure built so far and returns one producing a larger
        /// structure. `depth` bounds the nesting; the size hints are accepted
        /// for upstream compatibility but unused.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut tower = base.clone();
            for _ in 0..depth {
                tower = OneOf::new(vec![base.clone(), recurse(tower).boxed()]).boxed();
            }
            tower
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            T: 'static,
        {
            self
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives; built by
    /// [`crate::prop_oneof!`].
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Chooses uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, u128, usize, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $bits:expr),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let lo = rng.next_u64() as u128;
                    let hi = (rng.next_u64() as u128) << 64;
                    (hi | lo) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(
        i8 => 8, i16 => 16, i32 => 32, i64 => 64, i128 => 128,
        u8 => 8, u16 => 16, u32 => 32, u64 => 64, u128 => 128,
        usize => 64, isize => 64
    );

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can serve as a `Vec` length specification.
    pub trait IntoSizeRange {
        /// Lower and upper (inclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec length range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! Everything a property-test module usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// item becomes a normal test that runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // `PROPTEST_CASES` overrides the case count (mirrors upstream
                // proptest's env handling) so CI quick modes can dial suites
                // down without touching each test.
                let cases = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or(config.cases);
                let mut rng = $crate::test_runner::rng_for(line!() as u64);
                for case in 0..cases {
                    // The body runs inside a `Result` closure so that
                    // `prop_assert!` and `return Ok(())` behave as in
                    // upstream proptest.
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        { $body }
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!("property failed at case {case}/{cases}: {message}");
                    }
                }
            }
        )*
    };
}

/// Asserts a property holds, failing the current case via an early
/// `Err` return (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts two values are equal, failing the current case via an early
/// `Err` return (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
