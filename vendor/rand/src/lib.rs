//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides exactly the subset of the `rand` 0.8 API the
//! workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! [`rngs::StdRng`], `gen_range` over half-open and inclusive ranges of the
//! common numeric types, and `gen_bool`.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64.
//! It is deterministic for a given seed (which is all the workspace needs:
//! every sampler and test seeds explicitly) but it is **not** a
//! cryptographically secure generator and the stream differs from upstream
//! `rand`'s `StdRng`.
//!
//! # Example
//!
//! ```
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0usize..10);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next_u128(rng) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (next_u128(rng) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_u128(rng) % (self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u128::MAX {
            next_u128(rng)
        } else {
            lo + next_u128(rng) % (span + 1)
        }
    }
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = next_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = next_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::StdRng;
        use crate::{Rng, RngCore, SeedableRng};

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_stay_in_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: f64 = rng.gen_range(-2.5..7.5);
                assert!((-2.5..7.5).contains(&x));
                let k: i64 = rng.gen_range(-3i64..=3);
                assert!((-3..=3).contains(&k));
                let u: usize = rng.gen_range(0usize..17);
                assert!(u < 17);
            }
        }

        #[test]
        fn gen_bool_is_calibrated() {
            let mut rng = StdRng::seed_from_u64(11);
            let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
            assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        }
    }
}
