//! Set reconstruction of a positive existential query (Section 4.3): compare
//! the sampling-based estimator (Algorithms 3-5) against the symbolic
//! Fourier–Motzkin pipeline, both in answer quality (symmetric-difference
//! volume) and in wall-clock time.
//!
//! Run with `cargo run --release --example query_reconstruction`.

use std::time::Instant;

use cdb_constraint::{parse_formula, GeneralizedRelation};
use cdb_core::SpatialDatabase;
use cdb_geometry::volume::{symmetric_difference_volume, union_volume};
use cdb_sampler::GeneratorParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Two relations in the plane; the query joins them through a shared
    // existential variable, the shape discussed in Section 4.3.2.
    let mut db = SpatialDatabase::with_params(GeneratorParams::default());
    db.insert(
        "R1",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.5]),
    );
    db.insert(
        "R2",
        GeneralizedRelation::from_box_f64(&[0.5, 0.0], &[2.0, 2.0]),
    );
    db.insert(
        "R4",
        GeneralizedRelation::from_box_f64(&[3.0, 0.0], &[4.0, 1.0]),
    );

    // Ψ(x0, x1) = ∃ x2 . (R1(x0, x2) ∧ R2(x2, x1)) ∨ R4(x0, x1)
    let query = parse_formula("(exists x2. R1(x0, x2) and R2(x2, x1)) or R4(x0, x1)", 3)
        .expect("valid query");
    println!("query: {query}");

    // Symbolic baseline: quantifier elimination + DNF.
    let t0 = Instant::now();
    let exact = db
        .evaluate_exact(&query, 2)
        .expect("symbolic evaluation succeeds");
    let symbolic_time = t0.elapsed();
    let exact_volume = union_volume(&exact.to_polytopes());

    // Sampling-based reconstruction.
    let t1 = Instant::now();
    let approx = db
        .approx_query(&query, 2, &mut rng)
        .expect("reconstruction succeeds");
    let sampling_time = t1.elapsed();

    let sd = symmetric_difference_volume(&exact.to_polytopes(), &approx.to_polytopes());
    println!(
        "\nexact result      : {} convex piece(s), volume {exact_volume:.3}",
        exact.tuples().len()
    );
    println!(
        "reconstruction    : {} convex piece(s)",
        approx.tuples().len()
    );
    println!(
        "symmetric difference volume: {sd:.3} ({:.1}% of the exact volume)",
        100.0 * sd / exact_volume
    );
    println!("symbolic evaluation time   : {symbolic_time:?}");
    println!("sampling reconstruction time: {sampling_time:?}");

    println!("\nspot checks:");
    for probe in [[1.0, 1.0], [3.5, 0.5], [2.5, 0.5], [0.2, 1.9]] {
        println!(
            "  {:?}: exact = {:5}, reconstructed = {:5}",
            probe,
            exact.contains_f64(&probe),
            approx.contains_f64(&probe)
        );
    }
}
