//! Quickstart: build a small spatial constraint database, sample it, estimate
//! volumes and run one approximate query.
//!
//! Run with `cargo run --release --example quickstart`.

use cdb_constraint::{parse_formula, GeneralizedRelation};
use cdb_core::SpatialDatabase;
use cdb_sampler::{GeneratorParams, SeedSequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A database with two layers: a zone (union of two rectangles) and a park.
    let mut db = SpatialDatabase::with_params(GeneratorParams::default());
    let zone = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[4.0, 2.0])
        .union(&GeneralizedRelation::from_box_f64(&[3.0, 0.0], &[6.0, 3.0]));
    let park = GeneralizedRelation::from_box_f64(&[1.0, 0.5], &[5.0, 1.5]);
    db.insert("Zone", zone.clone());
    db.insert("Park", park);

    // 1. Almost-uniform generation (Definition 2.2 / Algorithm 1).
    let points = db
        .approx_generate_many("Zone", 5, &mut rng)
        .expect("Zone is observable");
    println!("five almost-uniform points of Zone:");
    for p in &points {
        println!(
            "  ({:.3}, {:.3})  inside = {}",
            p[0],
            p[1],
            zone.contains_f64(p)
        );
    }
    // Smoke check: generation produced the requested points and every one of
    // them actually lies in the relation.
    assert_eq!(points.len(), 5);
    assert!(
        points.iter().all(|p| zone.contains_f64(p)),
        "sample escaped the zone"
    );

    // 1b. The same generation through the parallel batch API: one seed tree,
    //     one child stream per point, fanned out over all cores — and the
    //     result is bitwise identical for any thread count.
    let seq = SeedSequence::new(7);
    let batch = db
        .approx_generate_batch("Zone", 200, &seq, 0)
        .expect("Zone is observable");
    let produced = batch.iter().filter(|p| p.is_some()).count();
    println!("batch of 200 points over all cores: {produced} produced");
    assert!(produced > 150, "too many batch failures");
    assert_eq!(
        batch,
        db.approx_generate_batch("Zone", 200, &seq, 1).unwrap(),
        "batch output must not depend on the thread count"
    );

    // 2. Volume estimation (Theorem 4.2). The exact area is 4*2 + 3*3 - 1*2 = 15.
    let volume = db
        .approx_volume("Zone", &mut rng)
        .expect("Zone is observable");
    println!("estimated area of Zone : {volume:.2}   (exact: 15.00)");
    assert!(
        (volume - 15.0).abs() < 0.5 * 15.0,
        "volume estimate {volume} is not within 50% of the exact area 15"
    );

    // 3. An approximate query: the part of the zone covered by the park,
    //    reconstructed from samples (Theorem 4.4), next to the exact symbolic
    //    answer computed with quantifier elimination.
    let query = parse_formula("Zone(x0, x1) and Park(x0, x1)", 2).expect("valid query");
    let exact = db.evaluate_exact(&query, 2).expect("symbolic evaluation");
    let approx = db
        .approx_query(&query, 2, &mut rng)
        .expect("approximate evaluation");
    println!(
        "query 'Zone ∩ Park': exact answer has {} convex piece(s), reconstruction has {}",
        exact.tuples().len(),
        approx.tuples().len()
    );
    for probe in [[2.0, 1.0], [0.5, 1.8], [5.5, 2.5]] {
        println!(
            "  probe {:?}: exact = {}, reconstructed = {}",
            probe,
            exact.contains_f64(&probe),
            approx.contains_f64(&probe)
        );
    }
    // Smoke check: the symbolic answer classifies the probes correctly
    // (the intersection is [1,5]x[0.5,1.5] clipped to the zone).
    assert!(exact.contains_f64(&[2.0, 1.0]));
    assert!(!exact.contains_f64(&[0.5, 1.8]));
    assert!(!exact.contains_f64(&[5.5, 2.5]));
    println!("quickstart OK");
}
