//! GIS overlay analysis: estimate the area of parcels, roads and their
//! overlay on a synthetic map, and compare against the exact
//! inclusion–exclusion areas.
//!
//! This is the statistical GIS scenario the paper's introduction motivates:
//! the intersection generator (Proposition 4.1) estimates the overlay area
//! without ever computing the overlay symbolically.
//!
//! Run with `cargo run --release --example gis_overlay`.

use cdb_sampler::{
    GeneratorParams, IntersectionGenerator, RelationVolumeEstimator, UnionGenerator,
};
use cdb_workloads::gis;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let scenario = gis::overlay_scenario(&mut rng);
    let params = GeneratorParams::default();

    println!(
        "synthetic map: {} parcels, {} road segments",
        scenario.parcels.relation.tuples().len(),
        scenario.roads.relation.tuples().len()
    );

    // Layer areas via the union generator (Algorithm 1 / Theorem 4.2).
    let mut parcels_gen =
        UnionGenerator::new(&scenario.parcels.relation, params).expect("parcels are observable");
    let parcels_estimate = parcels_gen
        .estimate_volume(&mut rng)
        .expect("estimation succeeds");
    println!(
        "parcels area  : estimated {parcels_estimate:8.3}   exact {:8.3}   rel. error {:5.1}%",
        scenario.parcels.exact_area,
        100.0 * (parcels_estimate - scenario.parcels.exact_area).abs()
            / scenario.parcels.exact_area
    );

    let mut roads_gen =
        UnionGenerator::new(&scenario.roads.relation, params).expect("roads are observable");
    let roads_estimate = roads_gen
        .estimate_volume(&mut rng)
        .expect("estimation succeeds");
    println!(
        "roads area    : estimated {roads_estimate:8.3}   exact {:8.3}   rel. error {:5.1}%",
        scenario.roads.exact_area,
        100.0 * (roads_estimate - scenario.roads.exact_area).abs() / scenario.roads.exact_area
    );

    // Overlay area via the intersection generator (Proposition 4.1).
    let mut overlay_gen = IntersectionGenerator::new(
        &[
            scenario.parcels.relation.clone(),
            scenario.roads.relation.clone(),
        ],
        params,
    )
    .expect("both layers are observable");
    match overlay_gen.estimate_volume(&mut rng) {
        Some(estimate) => {
            let exact = scenario.exact_overlay_area;
            let rel = if exact > 0.0 {
                100.0 * (estimate - exact).abs() / exact
            } else {
                0.0
            };
            println!("overlay area  : estimated {estimate:8.3}   exact {exact:8.3}   rel. error {rel:5.1}%");
            println!(
                "acceptance rate of the rejection step: {:.3}",
                overlay_gen.acceptance_rate()
            );
        }
        None => {
            println!(
                "overlay area  : not estimated — the layers are not poly-related (acceptance {:.2e})",
                overlay_gen.acceptance_rate()
            );
            println!("exact overlay area: {:.3}", scenario.exact_overlay_area);
        }
    }
}
