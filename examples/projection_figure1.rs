//! Reproduction of Figure 1 of the paper: projecting uniform samples of a
//! convex set is *not* uniform on the projection, and Algorithm 2's
//! cylinder-volume compensation fixes it.
//!
//! The program prints two histograms over the projection interval [0, 1] of
//! the triangle 0 ≤ y ≤ x ≤ 1: the uncorrected projection (mass accumulates
//! where the fibers are long, near x = 1) and the corrected one (flat).
//!
//! Run with `cargo run --release --example projection_figure1`.

use cdb_constraint::{Atom, GeneralizedTuple};
use cdb_sampler::diagnostics::{histogram_1d, uniformity_chi_square};
use cdb_sampler::{GeneratorParams, ProjectionGenerator, RelationGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bar(count: usize, scale: f64) -> String {
    "#".repeat((count as f64 * scale).round() as usize)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    // The Figure 1 shape: a triangle whose fibers over x shrink to a point at x = 0.
    let triangle = GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0), // x >= 0
            Atom::le_from_ints(&[1, 0], -1), // x <= 1
            Atom::le_from_ints(&[0, -1], 0), // y >= 0
            Atom::le_from_ints(&[-1, 1], 0), // y <= x
        ],
    );
    let params = GeneratorParams {
        gamma: 0.05,
        ..GeneratorParams::default()
    };
    let mut generator = ProjectionGenerator::new(&triangle, &[0], params, &mut rng)
        .expect("triangle is observable");

    let n = 2_000;
    let bins = 10;
    let uncorrected: Vec<f64> = (0..n)
        .map(|_| generator.sample_uncorrected(&mut rng)[0])
        .collect();
    let corrected: Vec<f64> = generator
        .sample_many(n, &mut rng)
        .into_iter()
        .map(|p| p[0])
        .collect();

    println!("projection of the triangle 0 <= y <= x <= 1 onto x ({n} samples, {bins} bins)\n");
    println!("uncorrected projection of uniform samples (biased toward x = 1):");
    for (i, c) in histogram_1d(&uncorrected, 0.0, 1.0, bins)
        .iter()
        .enumerate()
    {
        println!(
            "  [{:.1}, {:.1})  {:4}  {}",
            i as f64 / bins as f64,
            (i + 1) as f64 / bins as f64,
            c,
            bar(*c, 0.1)
        );
    }
    let chi_biased = uniformity_chi_square(&uncorrected, 0.0, 1.0, bins);

    println!("\nAlgorithm 2 (cylinder-volume compensation), almost uniform:");
    for (i, c) in histogram_1d(&corrected, 0.0, 1.0, bins).iter().enumerate() {
        println!(
            "  [{:.1}, {:.1})  {:4}  {}",
            i as f64 / bins as f64,
            (i + 1) as f64 / bins as f64,
            c,
            bar(*c, 0.1)
        );
    }
    let chi_corrected = uniformity_chi_square(&corrected, 0.0, 1.0, bins);

    println!(
        "\nchi-square statistic vs the uniform distribution ({} bins):",
        bins
    );
    println!("  uncorrected : {chi_biased:10.1}");
    println!("  Algorithm 2 : {chi_corrected:10.1}");
    println!(
        "  cell selection: {:?}, acceptance rate of the compensation step: {:.3}",
        generator.resolved_cell_selection(),
        generator.acceptance_rate()
    );
}
