//! The SAT encoding of Section 4.1.3: why the poly-related restriction on
//! intersections is necessary.
//!
//! A CNF formula is encoded geometrically (literal `x` ↦ `3/4 < x < 1`,
//! literal `¬x` ↦ `0 < x < 1/4`); each clause becomes an observable union of
//! slabs and the formula becomes the intersection of the clauses. A relative
//! volume estimator for that intersection would decide satisfiability, so the
//! intersection generator legitimately refuses when the intersection is tiny
//! relative to the operands.
//!
//! Run with `cargo run --release --example sat_encoding`.

use cdb_sampler::{GeneratorParams, IntersectionGenerator, RelationVolumeEstimator};
use cdb_workloads::sat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    // A small satisfiable instance and an unsatisfiable one.
    let satisfiable = sat::CnfFormula {
        n_vars: 3,
        clauses: vec![
            vec![(0, true), (1, true), (2, false)],
            vec![(0, false), (1, true), (2, true)],
            vec![(0, true), (1, false), (2, true)],
        ],
    };
    let unsatisfiable = sat::CnfFormula {
        n_vars: 2,
        clauses: vec![
            vec![(0, true)],
            vec![(0, false)],
            vec![(1, true), (0, true)],
        ],
    };

    for (name, cnf) in [
        ("satisfiable 3-CNF", &satisfiable),
        ("unsatisfiable CNF", &unsatisfiable),
    ] {
        println!(
            "== {name} ({} variables, {} clauses) ==",
            cnf.n_vars,
            cnf.clauses.len()
        );
        println!(
            "   brute-force satisfiable: {}",
            cnf.brute_force_satisfiable()
        );
        let clause_relations = sat::cnf_relations(cnf);
        let params = GeneratorParams::default();
        let mut generator = IntersectionGenerator::new(&clause_relations, params)
            .expect("clause relations are observable");
        match generator.estimate_volume(&mut rng) {
            Some(volume) => println!(
                "   intersection volume estimate: {volume:.4} (acceptance rate {:.3}) -> the formula is satisfiable",
                generator.acceptance_rate()
            ),
            None => println!(
                "   the intersection generator gave up (acceptance rate {:.2e}) -> the clause sets are not poly-related,\n   exactly the restriction Section 4.1.3 shows is necessary",
                generator.acceptance_rate()
            ),
        }
        println!();
    }

    println!("note: a polynomial-time relative volume estimator without the poly-related\nrestriction would decide SAT, so the refusal above is the expected behaviour.");
}
