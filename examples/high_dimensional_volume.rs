//! The paper's motivating complexity argument: naive rejection sampling of a
//! ball inscribed in a cube needs exponentially many trials as the dimension
//! grows, while the Dyer–Frieze–Kannan estimator keeps working.
//!
//! Run with `cargo run --release --example high_dimensional_volume`.

use std::sync::Arc;
use std::time::Instant;

use cdb_geometry::ball::{ball_to_cube_ratio, unit_ball_volume};
use cdb_geometry::Ellipsoid;
use cdb_linalg::Vector;
use cdb_sampler::{
    batch, ConvexBody, DfkSampler, GeneratorParams, RejectionSampler, RelationVolumeEstimator,
    SeedSequence,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    println!("estimating the volume of the unit ball B_d inscribed in [-1,1]^d");
    println!(
        "(median of 3 telescoping estimates, fanned out over {} worker threads)\n",
        batch::auto_threads()
    );
    println!(
        "{:>3} {:>12} {:>14} {:>14} {:>16} {:>12}",
        "d", "exact vol", "DFK estimate", "rejection est", "accept. rate", "DFK time"
    );

    for d in [2usize, 4, 6, 8, 10] {
        let exact = unit_ball_volume(d);
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
        // A loose certificate (r_inf < r_sup): a tight one (1.0, 1.0) would
        // pin the body to the certificate ball and let the estimator return
        // the closed-form volume without doing any work.
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.25);

        // Dyer–Frieze–Kannan estimator (membership oracle only), repeats
        // fanned out in parallel through the batch layer; the result is
        // identical for any thread count.
        let t0 = Instant::now();
        let dfk = DfkSampler::new(body.clone(), GeneratorParams::default(), &mut rng);
        let dfk_estimate = dfk.estimate_volume_median_batch(3, &SeedSequence::new(d as u64), 0);
        let dfk_time = t0.elapsed();

        // Naive bounding-box rejection.
        let mut rejection =
            RejectionSampler::new(body, Vector::filled(d, -1.0), Vector::filled(d, 1.0));
        rejection.set_volume_trials(20_000);
        let rejection_estimate = rejection.estimate_volume(&mut rng).unwrap_or(0.0);

        println!(
            "{:>3} {:>12.5} {:>14.5} {:>14.5} {:>16.6} {:>12?}",
            d,
            exact,
            dfk_estimate,
            rejection_estimate,
            rejection.acceptance_rate(),
            dfk_time
        );
        let theoretical = ball_to_cube_ratio(d);
        println!("     theoretical acceptance rate of rejection sampling: {theoretical:.6}");
    }

    println!("\nthe rejection acceptance rate collapses exponentially (column 5), which is the\npaper's argument for walk-based generation; the DFK estimate keeps tracking the\nexact volume at every dimension.");
}
