#!/usr/bin/env bash
# CI gate for the spatial-cdb workspace. Run from anywhere; offline-safe.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace: unit + property + integration + doc tests)"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> CI green"
