#!/usr/bin/env bash
# CI gate for the spatial-cdb workspace. Run from anywhere; offline-safe.
#
# Usage: ./ci.sh [--quick] [--bench] [--bench-quick]
#   --quick        skip the heavy statistical acceptance gates (chi-square
#                  uniformity and (eps, delta) volume tests in
#                  tests/statistical.rs) for fast local iteration. The full
#                  gates are mandatory in CI.
#   --bench        additionally run the walk-throughput perf report, which
#                  rewrites BENCH_walk.json (see the README performance
#                  section).
#   --bench-quick  run ONLY the perf-report smoke and exit: a tiny time
#                  budget per workload (CDB_BENCH_QUICK=1), writing to
#                  target/BENCH_walk_quick.json. Numbers are meaningless; it
#                  proves every constraint-kernel dispatch path
#                  (axis/sparse/dense/oracle) executes. The same smoke also
#                  runs on every default CI pass; --bench replaces it with
#                  the real measurement.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

QUICK=0
BENCH=0
BENCH_QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --bench) BENCH=1 ;;
    --bench-quick) BENCH_QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# The perf smoke: tiny time budget, output kept out of the repo root so the
# recorded BENCH_walk.json is never clobbered with throwaway numbers.
bench_smoke() {
  echo "==> walk perf smoke (tiny budget, target/BENCH_walk_quick.json)"
  CDB_BENCH_QUICK=1 CDB_BENCH_OUT=target/BENCH_walk_quick.json \
    cargo run --release -p cdb-bench --bin perf_report >/dev/null
}

if [ "$BENCH_QUICK" = "1" ]; then
  bench_smoke
  echo "==> perf smoke green"
  exit 0
fi

if [ "$QUICK" = "1" ]; then
  # tests/statistical.rs self-skips its heavy gates when this is set.
  export CDB_STAT_QUICK=1
  echo "==> quick mode: heavy statistical gates are skipped"
fi

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace: unit + property + integration + doc tests)"
# The heavy statistical gates are skipped inside the workspace run (they are
# root-package integration tests, so they would execute here too) and run
# explicitly below instead, so their cost is paid exactly once per CI pass.
CDB_STAT_QUICK=1 cargo test -q --workspace

if [ "$QUICK" != "1" ]; then
  echo "==> statistical acceptance suite (chi-square uniformity + (eps, delta) volume gates)"
  env -u CDB_STAT_QUICK cargo test -q --test statistical

  echo "==> batch determinism suite (thread-count invariance)"
  cargo test -q --test determinism
fi

if [ "$BENCH" = "1" ]; then
  echo "==> walk perf report (rewrites BENCH_walk.json)"
  cargo run --release -p cdb-bench --bin perf_report
else
  # Every CI pass exercises all kernel-dispatch paths, cheaply.
  bench_smoke
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> CI green"
