#!/usr/bin/env bash
# CI gate for the spatial-cdb workspace. Run from anywhere; offline-safe.
#
# Usage: ./ci.sh [--quick] [--bench] [--bench-quick] [--bench-compare <baseline.json>]
#                [--bench-load]
#   --quick        skip the heavy statistical acceptance gates (chi-square
#                  uniformity and (eps, delta) volume tests in
#                  tests/statistical.rs) for fast local iteration. The full
#                  gates are mandatory in CI.
#   --bench        additionally run the walk-throughput perf report, which
#                  rewrites BENCH_walk.json (see the README performance
#                  section).
#   --bench-quick  run ONLY the perf-report smoke and exit: a tiny time
#                  budget per workload (CDB_BENCH_QUICK=1), writing to
#                  target/BENCH_walk_quick.json. Numbers are meaningless; it
#                  proves every constraint-kernel dispatch path
#                  (axis/sparse/dense/oracle) executes. The same smoke also
#                  runs on every default CI pass; --bench replaces it with
#                  the real measurement.
#   --bench-compare <baseline.json>
#                  perf-regression gate: run the REAL perf report (rewrites
#                  BENCH_walk.json), then `bench_diff` it against the given
#                  baseline — any shared row more than 15% slower fails CI.
#   --bench-load   run the REAL traffic-shaped load report (rewrites
#                  BENCH_load.json with full request counts) in place of the
#                  default load smoke, then gate it against the committed
#                  baseline with bench_diff (throughput may not drop, nor
#                  latency percentiles rise, beyond 15%).
#
# Every default pass additionally validates the quick smoke report against
# the committed BENCH_walk.json for row coverage only (every kernel row, all
# three e7 rows — warm/cold rejection twins plus the stratified selector —
# and the warm/cold prepared-store twins e_shared_subrelations{,_cold} must
# still exist), so dispatch coverage can never silently shrink. A per-stage
# wall-clock summary is printed at the end so slow-stage creep shows up in
# CI logs.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

QUICK=0
BENCH=0
BENCH_QUICK=0
BENCH_LOAD=0
BENCH_COMPARE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --bench) BENCH=1 ;;
    --bench-quick) BENCH_QUICK=1 ;;
    --bench-load) BENCH_LOAD=1 ;;
    --bench-compare)
      [ $# -ge 2 ] || { echo "--bench-compare needs a baseline file" >&2; exit 2; }
      BENCH_COMPARE="$2"
      shift
      ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

# --- per-stage wall-clock accounting -----------------------------------------
STAGE_SUMMARY=""
STAGE_NAME=""
STAGE_T0=0
stage_begin() {
  STAGE_NAME="$1"
  STAGE_T0=$SECONDS
}
stage_end() {
  local elapsed=$((SECONDS - STAGE_T0))
  STAGE_SUMMARY="${STAGE_SUMMARY:+$STAGE_SUMMARY | }${STAGE_NAME} ${elapsed}s"
}
print_stage_summary() {
  echo "==> stage timing: ${STAGE_SUMMARY:-none}"
}

# The perf smoke: tiny time budget, output kept out of the repo root so the
# recorded BENCH_walk.json is never clobbered with throwaway numbers.
bench_smoke() {
  echo "==> walk perf smoke (tiny budget, target/BENCH_walk_quick.json)"
  CDB_BENCH_QUICK=1 CDB_BENCH_OUT=target/BENCH_walk_quick.json \
    cargo run --release -p cdb-bench --bin perf_report >/dev/null
}

bench_diff() {
  cargo run --release -p cdb-bench --bin bench_diff -- "$@"
}

if [ "$BENCH_QUICK" = "1" ]; then
  stage_begin smoke
  bench_smoke
  stage_end
  print_stage_summary
  echo "==> perf smoke green"
  exit 0
fi

if [ "$QUICK" = "1" ]; then
  # tests/statistical.rs self-skips its heavy gates when this is set.
  export CDB_STAT_QUICK=1
  echo "==> quick mode: heavy statistical gates are skipped"
fi

stage_begin build
echo "==> cargo build --release"
cargo build --release --workspace --all-targets
stage_end

stage_begin test
echo "==> cargo test -q (workspace: unit + property + integration + doc tests)"
# The heavy statistical gates are skipped inside the workspace run (they are
# root-package integration tests, so they would execute here too) and run
# explicitly below instead, so their cost is paid exactly once per CI pass.
# The server loopback suite likewise runs shrunk here and at full size in its
# own stage.
CDB_STAT_QUICK=1 CDB_SERVER_QUICK=1 cargo test -q --workspace
stage_end

stage_begin stratified
echo "==> stratified selection property suites (alias table + cache/selector invariance)"
cargo test -q -p cdb-sampler --test stratified_alias
cargo test -q -p cdb-sampler --test projection_cache
stage_end

stage_begin prepared
echo "==> prepared-relation store suites (canonicalization properties + concurrent stress)"
# Quick mode trims the property-case count; the store invisibility contract
# itself (bitwise equality vs the disabled-store reference) runs either way.
if [ "$QUICK" = "1" ]; then
  PROPTEST_CASES=16 cargo test -q -p cdb-constraint --test canonical_prop
else
  cargo test -q -p cdb-constraint --test canonical_prop
fi
cargo test -q --test prepared_store
stage_end

stage_begin resilience
echo "==> resilience suite (budgets, cancellation, fault injection, panic containment)"
# Quick mode runs the same faults against smaller batches and fewer thread
# counts (tests/resilience.rs reads CDB_RESILIENCE_QUICK).
if [ "$QUICK" = "1" ]; then
  CDB_RESILIENCE_QUICK=1 cargo test -q --test resilience
else
  cargo test -q --test resilience
fi
stage_end

stage_begin server
echo "==> cdb-server stage (loopback smoke: every endpoint, error→status table, seeded reproducibility)"
# The suite starts real servers on 127.0.0.1:0 and drives them over HTTP:
# every endpoint end-to-end, the complete SpatialDbError→status mapping
# (including malformed JSON / oversized body / unknown route), byte-for-byte
# seeded reproducibility, concurrent clients, and graceful shutdown. Quick
# mode shrinks the concurrency sweep (tests/server.rs reads
# CDB_SERVER_QUICK).
cargo test -q -p cdb-server
if [ "$QUICK" = "1" ]; then
  CDB_SERVER_QUICK=1 cargo test -q --test server
else
  cargo test -q --test server
fi
stage_end

stage_begin load
echo "==> traffic-shaped load harness (open-loop latency rows + bench_diff coverage)"
if [ "$BENCH_LOAD" = "1" ]; then
  # Real measurement: rewrite the committed baseline, then gate the fresh
  # numbers against the previous one (snapshot first — the report is about
  # to overwrite the file being compared).
  mkdir -p target
  cp BENCH_load.json target/load_compare_baseline.json
  echo "==> load report (full request counts, rewrites BENCH_load.json)"
  cargo run --release -p cdb-bench --bin load_report
  echo "==> bench_diff against the previous BENCH_load.json (tolerance 15%)"
  bench_diff target/load_compare_baseline.json BENCH_load.json
else
  # Every CI pass replays all four mixes (including the HTTP loopback smoke
  # mix) with ~20x fewer requests: numbers
  # are meaningless, but every dispatch path runs and the emitted rows must
  # still cover the committed baseline's row set.
  echo "==> load smoke (CDB_LOAD_QUICK=1, target/BENCH_load_quick.json)"
  CDB_LOAD_QUICK=1 cargo run --release -p cdb-bench --bin load_report
  echo "==> bench_diff row coverage (target/BENCH_load_quick.json vs BENCH_load.json)"
  bench_diff BENCH_load.json target/BENCH_load_quick.json --coverage-only
fi
# The end-to-end harness tests (every request resolves, schema roundtrip,
# baseline coverage); quick mode shrinks the request counts.
if [ "$QUICK" = "1" ]; then
  CDB_LOAD_QUICK=1 cargo test -q --test load
else
  cargo test -q --test load
fi
stage_end

if [ "$QUICK" != "1" ]; then
  stage_begin statistical
  echo "==> statistical acceptance suite (chi-square uniformity + (eps, delta) volume gates)"
  env -u CDB_STAT_QUICK cargo test -q --test statistical
  echo "==> stratified cell-selection gates (uniformity, volume, Poisson occupancy)"
  env -u CDB_STAT_QUICK cargo test -q --test statistical stratified
  stage_end

  stage_begin determinism
  echo "==> batch determinism suite (thread-count invariance + rejection/stratified volume agreement)"
  cargo test -q --test determinism
  stage_end
fi

if [ -n "$BENCH_COMPARE" ]; then
  stage_begin bench
  # Snapshot the baseline first: the natural invocation is
  # `--bench-compare BENCH_walk.json` (the committed baseline), and the
  # perf report is about to rewrite that very file — diffing against the
  # live file would compare the fresh report with itself.
  mkdir -p target
  cp "$BENCH_COMPARE" target/bench_compare_baseline.json
  echo "==> walk perf report (rewrites BENCH_walk.json)"
  cargo run --release -p cdb-bench --bin perf_report
  echo "==> bench_diff against $BENCH_COMPARE (tolerance 15%)"
  bench_diff target/bench_compare_baseline.json BENCH_walk.json
  stage_end
elif [ "$BENCH" = "1" ]; then
  stage_begin bench
  echo "==> walk perf report (rewrites BENCH_walk.json)"
  cargo run --release -p cdb-bench --bin perf_report
  stage_end
else
  # Every CI pass exercises all kernel-dispatch paths, cheaply, and proves
  # the smoke report still covers every recorded workload row.
  stage_begin smoke
  bench_smoke
  echo "==> bench_diff row coverage (target/BENCH_walk_quick.json vs BENCH_walk.json)"
  bench_diff BENCH_walk.json target/BENCH_walk_quick.json --coverage-only
  stage_end
fi

stage_begin fmt
echo "==> cargo fmt --check"
cargo fmt --all -- --check
stage_end

stage_begin doc
echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
stage_end

print_stage_summary
echo "==> CI green"
