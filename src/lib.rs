//! Umbrella package for the `spatial-cdb` workspace.
//!
//! This root package hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library surface lives
//! in the workspace crates; see [`cdb_core`] for the high-level API described
//! in the paper *Uniform generation in spatial constraint databases and
//! applications* (Gross-Amblard & de Rougemont).

pub use cdb_constraint as constraint;
pub use cdb_core as core_api;
pub use cdb_geometry as geometry;
pub use cdb_reconstruct as reconstruct;
pub use cdb_sampler as sampler;
pub use cdb_workloads as workloads;
