//! The unified query surface: one entry point for every approximate query.
//!
//! Historically the [`SpatialDatabase`] surface grew one `approx_*` method
//! per (query kind × execution mode) combination — budgeted or not, batched
//! or sequential, partial or fail-fast — ten entry points that any service
//! layer had to bind one by one. This module collapses them into a single
//! declarative call:
//!
//! ```
//! use cdb_core::{QueryOutcome, QuerySpec, SpatialDatabase};
//! use cdb_constraint::GeneralizedRelation;
//! use cdb_sampler::GeneratorParams;
//!
//! let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
//! db.insert("Zone", GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]));
//!
//! let spec = QuerySpec::sample("Zone", 8).with_seed(7).with_threads(2);
//! let outcome = db.query(&spec).unwrap();
//! assert_eq!(outcome.completed, 8);
//! for p in outcome.points().iter().flatten() {
//!     assert!(db.relation("Zone").unwrap().contains_f64(p));
//! }
//! ```
//!
//! A [`QuerySpec`] is a relation name plus a [`QueryKind`]
//! (`Sample { n }` / `Volume { repeats }` / `Reconstruct { .. }`) plus
//! [`QueryOptions`] — budget, thread count, seed, and the
//! partial-vs-fail-fast switch. Execution is randomness-explicit:
//!
//! * [`SpatialDatabase::query`] runs a **seeded** query: batch item `i`
//!   draws from [`SeedSequence::item_stream`]`(i)` of the spec's seed
//!   sequence, so the outcome is bitwise identical for any thread count and
//!   reproducible from the seed alone — the mode a network service needs.
//! * [`SpatialDatabase::query_with_rng`] runs the query **sequentially**
//!   from a caller-supplied RNG stream, the classical library mode.
//!
//! The legacy `approx_*` entry points survive as thin wrappers over these
//! two methods (the determinism suite pins new-vs-old bitwise equality), so
//! existing callers keep working while new layers — `cdb-server` foremost —
//! bind only this surface.

use std::sync::atomic::Ordering;

use rand::Rng;

use cdb_constraint::{Formula, GeneralizedRelation};
use cdb_sampler::{
    batch, BudgetTrip, QueryBudget, RelationGenerator, RelationVolumeEstimator, SeedSequence,
};

use crate::{draw_failure, PartialBatch, QueryPhase, SpatialDatabase, SpatialDbError};

/// What a query computes.
#[derive(Clone, Debug)]
pub enum QueryKind {
    /// Draw `n` almost-uniform points from the relation.
    Sample {
        /// Number of points requested.
        n: usize,
    },
    /// Run `repeats` independent `(ε, δ)`-volume estimates; the outcome's
    /// [`QueryOutcome::volume`] is the median of the successful repeats
    /// (`repeats` is clamped to at least 1).
    Volume {
        /// Number of independent estimates.
        repeats: usize,
    },
    /// Estimate the result set of a positive existential query as a
    /// generalized relation (Theorem 4.4).
    Reconstruct {
        /// The positive existential formula to estimate.
        query: Formula,
        /// Arity of the result relation (free variables `x_0 …`).
        output_arity: usize,
    },
}

/// What to do when an item of a multi-item query fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailureMode {
    /// Return the first failure as an `Err`, discarding partial results.
    #[default]
    Fail,
    /// Return every completed item; the first failure rides alongside them
    /// in [`QueryOutcome::error`] and failed slots stay `None`.
    Partial,
}

/// Execution options of a query: budget, parallelism, randomness, and the
/// partial-vs-fail switch. Built fluently via the [`QuerySpec`] builder
/// methods.
#[derive(Clone, Debug, Default)]
pub struct QueryOptions {
    /// Per-item work limits (see [`QueryBudget`]); unlimited by default.
    /// Currently ignored by [`QueryKind::Reconstruct`], which has no
    /// budgeted evaluation path yet.
    pub budget: QueryBudget,
    /// Worker threads for seeded batch execution (`0` = one per core).
    /// Thread count never changes results, only wall-clock time.
    pub threads: usize,
    /// Root seed sequence for [`SpatialDatabase::query`]: item `i` draws
    /// from its [`SeedSequence::item_stream`]`(i)`. `None` restricts the
    /// spec to [`SpatialDatabase::query_with_rng`].
    pub seed: Option<SeedSequence>,
    /// Partial-vs-fail-fast behavior for multi-item queries.
    pub failure: FailureMode,
}

/// A complete query description: target relation, kind, and options.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Name of the target relation (informational for
    /// [`QueryKind::Reconstruct`], whose formula names its own relations).
    pub relation: String,
    /// What to compute.
    pub kind: QueryKind,
    /// How to execute it.
    pub options: QueryOptions,
}

impl QuerySpec {
    /// A spec that draws `n` points from `relation` (fail-fast, unlimited
    /// budget, auto threads).
    pub fn sample(relation: impl Into<String>, n: usize) -> Self {
        QuerySpec {
            relation: relation.into(),
            kind: QueryKind::Sample { n },
            options: QueryOptions::default(),
        }
    }

    /// A spec that estimates the volume of `relation` as the median of
    /// `repeats` independent estimates.
    pub fn volume(relation: impl Into<String>, repeats: usize) -> Self {
        QuerySpec {
            relation: relation.into(),
            kind: QueryKind::Volume { repeats },
            options: QueryOptions::default(),
        }
    }

    /// A spec that reconstructs the result set of `query` (output arity
    /// `output_arity`). `relation` is informational — it names the spec in
    /// errors and lets service layers key budget overrides.
    pub fn reconstruct(relation: impl Into<String>, query: Formula, output_arity: usize) -> Self {
        QuerySpec {
            relation: relation.into(),
            kind: QueryKind::Reconstruct {
                query,
                output_arity,
            },
            options: QueryOptions::default(),
        }
    }

    /// Sets the per-item [`QueryBudget`].
    pub fn with_budget(mut self, budget: &QueryBudget) -> Self {
        self.options.budget = budget.clone();
        self
    }

    /// Sets the worker-thread count for seeded batch execution (`0` = one
    /// per core; results never depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Funds the query from `SeedSequence::new(seed)` (see
    /// [`QueryOptions::seed`]).
    pub fn with_seed(self, seed: u64) -> Self {
        self.with_seed_sequence(SeedSequence::new(seed))
    }

    /// Funds the query from an explicit [`SeedSequence`] root — the form the
    /// batch wrappers use so `query` consumes exactly the streams the legacy
    /// `approx_*_batch` entry points consumed.
    pub fn with_seed_sequence(mut self, seq: SeedSequence) -> Self {
        self.options.seed = Some(seq);
        self
    }

    /// Switches to [`FailureMode::Partial`]: completed items are returned
    /// and the first failure is reported alongside them instead of as `Err`.
    pub fn partial(mut self) -> Self {
        self.options.failure = FailureMode::Partial;
        self
    }

    /// Switches (back) to [`FailureMode::Fail`].
    pub fn fail_fast(mut self) -> Self {
        self.options.failure = FailureMode::Fail;
        self
    }
}

/// The kind-specific payload of a [`QueryOutcome`].
#[derive(Clone, Debug)]
pub enum QueryValue {
    /// Sampled points, index-aligned with the item seed streams; `None`
    /// marks a failed draw (see [`QueryOutcome::error`]).
    Points(Vec<Option<Vec<f64>>>),
    /// Independent volume estimates, index-aligned with the item seed
    /// streams; `None` marks a failed repeat.
    Volumes(Vec<Option<f64>>),
    /// The reconstructed relation.
    Relation(GeneralizedRelation),
}

/// What a query produced: the kind-specific value, how many items
/// completed, and (under [`FailureMode::Partial`]) the first failure.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The kind-specific payload.
    pub value: QueryValue,
    /// Number of completed items (`Some` slots; `1` for a reconstruction).
    pub completed: usize,
    /// First failure of a partial-mode query (`None` means every item
    /// completed, and always `None` under [`FailureMode::Fail`], where the
    /// first failure is returned as `Err` instead).
    pub error: Option<SpatialDbError>,
}

/// Median of the values by `partial_cmp` (all estimates are finite);
/// `None` for an empty iterator.
fn median(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("volume estimates are finite"));
    Some(v[v.len() / 2])
}

impl QueryOutcome {
    /// The sampled points (empty for non-sample outcomes).
    pub fn points(&self) -> &[Option<Vec<f64>>] {
        match &self.value {
            QueryValue::Points(p) => p,
            _ => &[],
        }
    }

    /// The first successfully sampled point, if any.
    pub fn point(&self) -> Option<&[f64]> {
        self.points().iter().flatten().next().map(|p| p.as_slice())
    }

    /// The individual volume estimates (empty for non-volume outcomes).
    pub fn volumes(&self) -> &[Option<f64>] {
        match &self.value {
            QueryValue::Volumes(v) => v,
            _ => &[],
        }
    }

    /// Median of the successful volume estimates — the classical
    /// `O(ln 1/δ)` amplification — or `None` when every repeat failed (or
    /// the outcome is not a volume query).
    pub fn volume(&self) -> Option<f64> {
        median(self.volumes().iter().flatten().copied())
    }

    /// The reconstructed relation, if this outcome holds one.
    pub fn relation(&self) -> Option<&GeneralizedRelation> {
        match &self.value {
            QueryValue::Relation(r) => Some(r),
            _ => None,
        }
    }

    /// Converts a sample outcome into the legacy [`PartialBatch`] shape.
    ///
    /// # Panics
    /// If the outcome is not a [`QueryValue::Points`] value.
    pub fn into_points_batch(self) -> PartialBatch<Vec<f64>> {
        match self.value {
            QueryValue::Points(results) => PartialBatch {
                results,
                completed: self.completed,
                error: self.error,
            },
            other => panic!("expected a sample outcome, got {other:?}"),
        }
    }

    /// Converts a volume outcome into the legacy [`PartialBatch`] shape.
    ///
    /// # Panics
    /// If the outcome is not a [`QueryValue::Volumes`] value.
    pub fn into_volumes_batch(self) -> PartialBatch<f64> {
        match self.value {
            QueryValue::Volumes(results) => PartialBatch {
                results,
                completed: self.completed,
                error: self.error,
            },
            other => panic!("expected a volume outcome, got {other:?}"),
        }
    }
}

/// Folds a contained fan-out's per-item `(value, trip, attempts)` slots into
/// the index-aligned result vector, the completed count, and the first
/// failure (a contained worker panic outranks per-item failures, mirroring
/// the legacy `*_batch_partial` collection order).
fn collect_slots<T>(
    relation: &str,
    phase: QueryPhase,
    report: batch::FanOutReport<(Option<T>, Option<BudgetTrip>, u64)>,
) -> (Vec<Option<T>>, usize, Option<SpatialDbError>) {
    let mut error = report
        .panics
        .first()
        .map(|p| SpatialDbError::WorkerPanicked {
            worker: p.worker,
            payload: p.payload.clone(),
        });
    let mut results = Vec::with_capacity(report.slots.len());
    let mut completed = 0usize;
    for slot in report.slots {
        match slot {
            Some((Some(value), _, _)) => {
                completed += 1;
                results.push(Some(value));
            }
            Some((None, trip, attempts)) => {
                if error.is_none() {
                    error = Some(match trip {
                        Some(cause) => SpatialDbError::BudgetExhausted {
                            relation: relation.to_string(),
                            cause,
                            completed,
                        },
                        None => SpatialDbError::GenerationFailed {
                            relation: relation.to_string(),
                            attempts,
                            phase,
                        },
                    });
                }
                results.push(None);
            }
            // The slot was lost to a contained worker panic.
            None => results.push(None),
        }
    }
    (results, completed, error)
}

impl SpatialDatabase {
    /// Runs a **seeded** query: the outcome is a pure function of the spec
    /// (relation content, parameters, seed, budget), bitwise identical for
    /// any thread count. Batch item `i` draws from
    /// [`SeedSequence::item_stream`]`(i)` of the spec's seed; a
    /// reconstruction draws from item stream `0`.
    ///
    /// Requires [`QueryOptions::seed`] (set via [`QuerySpec::with_seed`]);
    /// use [`SpatialDatabase::query_with_rng`] to fund a query from a
    /// caller-supplied RNG instead. Under [`FailureMode::Fail`] the first
    /// item failure is returned as `Err`; under [`FailureMode::Partial`]
    /// completed items are returned with the first failure alongside.
    pub fn query(&self, spec: &QuerySpec) -> Result<QueryOutcome, SpatialDbError> {
        let seq = spec.options.seed.ok_or_else(|| {
            SpatialDbError::InvalidParams(
                "seeded query needs QuerySpec::with_seed; \
                 use query_with_rng for caller-supplied randomness"
                    .to_string(),
            )
        })?;
        match &spec.kind {
            QueryKind::Sample { n } => self.seeded_samples(spec, *n, &seq),
            QueryKind::Volume { repeats } => self.seeded_volumes(spec, (*repeats).max(1), &seq),
            QueryKind::Reconstruct {
                query,
                output_arity,
            } => self.run_reconstruct(query, *output_arity, &mut seq.item_stream(0).rng()),
        }
    }

    /// Runs a query **sequentially** from a caller-supplied RNG stream: item
    /// `i + 1` continues the stream where item `i` left off, exactly like
    /// the classical library entry points. [`QueryOptions::seed`] and
    /// [`QueryOptions::threads`] are ignored.
    pub fn query_with_rng<R: Rng + ?Sized>(
        &self,
        spec: &QuerySpec,
        rng: &mut R,
    ) -> Result<QueryOutcome, SpatialDbError> {
        match &spec.kind {
            QueryKind::Sample { n } => self.sequential_samples(spec, *n, rng),
            QueryKind::Volume { repeats } => self.sequential_volumes(spec, (*repeats).max(1), rng),
            QueryKind::Reconstruct {
                query,
                output_arity,
            } => self.run_reconstruct(query, *output_arity, rng),
        }
    }

    fn seeded_samples(
        &self,
        spec: &QuerySpec,
        n: usize,
        seq: &SeedSequence,
    ) -> Result<QueryOutcome, SpatialDbError> {
        let mut generator = self.prepared_generator(&spec.relation)?;
        generator.set_budget(spec.options.budget.clone());
        let report = batch::fan_out_contained(
            n,
            spec.options.threads,
            || generator.clone(),
            |g, i| {
                let mut rng = seq.item_stream(i).rng();
                let point = g.sample(&mut rng);
                let trip = g.budget_trip();
                let attempts = g.budget_meter().attempts_used();
                (point, trip, attempts)
            },
        );
        self.note_contained_panics(report.panics.len());
        let (results, completed, error) =
            collect_slots(&spec.relation, QueryPhase::Sampling, report);
        finish(spec, QueryValue::Points(results), completed, error)
    }

    fn seeded_volumes(
        &self,
        spec: &QuerySpec,
        repeats: usize,
        seq: &SeedSequence,
    ) -> Result<QueryOutcome, SpatialDbError> {
        let mut generator = self.prepared_generator(&spec.relation)?;
        generator.set_budget(spec.options.budget.clone());
        let report = batch::fan_out_contained(
            repeats,
            spec.options.threads,
            || generator.clone(),
            |g, i| {
                let mut rng = seq.item_stream(i).rng();
                let volume = g.estimate_volume(&mut rng);
                let trip = g.budget_trip();
                let attempts = g.budget_meter().attempts_used();
                (volume, trip, attempts)
            },
        );
        self.note_contained_panics(report.panics.len());
        let (results, completed, error) =
            collect_slots(&spec.relation, QueryPhase::VolumeEstimation, report);
        finish(spec, QueryValue::Volumes(results), completed, error)
    }

    fn sequential_samples<R: Rng + ?Sized>(
        &self,
        spec: &QuerySpec,
        n: usize,
        rng: &mut R,
    ) -> Result<QueryOutcome, SpatialDbError> {
        let mut generator = self.prepared_generator(&spec.relation)?;
        generator.set_budget(spec.options.budget.clone());
        let mut results = Vec::with_capacity(n);
        let mut completed = 0usize;
        let mut error = None;
        for _ in 0..n {
            match generator.sample(rng) {
                Some(point) => {
                    completed += 1;
                    results.push(Some(point));
                }
                None => {
                    let failure =
                        draw_failure(&spec.relation, &generator, QueryPhase::Sampling, completed);
                    if spec.options.failure == FailureMode::Fail {
                        return Err(failure);
                    }
                    if error.is_none() {
                        error = Some(failure);
                    }
                    results.push(None);
                }
            }
        }
        Ok(QueryOutcome {
            value: QueryValue::Points(results),
            completed,
            error,
        })
    }

    fn sequential_volumes<R: Rng + ?Sized>(
        &self,
        spec: &QuerySpec,
        repeats: usize,
        rng: &mut R,
    ) -> Result<QueryOutcome, SpatialDbError> {
        let mut generator = self.prepared_generator(&spec.relation)?;
        generator.set_budget(spec.options.budget.clone());
        let mut results = Vec::with_capacity(repeats);
        let mut completed = 0usize;
        let mut error = None;
        for _ in 0..repeats {
            match generator.estimate_volume(rng) {
                Some(volume) => {
                    completed += 1;
                    results.push(Some(volume));
                }
                None => {
                    let failure = draw_failure(
                        &spec.relation,
                        &generator,
                        QueryPhase::VolumeEstimation,
                        completed,
                    );
                    if spec.options.failure == FailureMode::Fail {
                        return Err(failure);
                    }
                    if error.is_none() {
                        error = Some(failure);
                    }
                    results.push(None);
                }
            }
        }
        Ok(QueryOutcome {
            value: QueryValue::Volumes(results),
            completed,
            error,
        })
    }

    /// The reconstruction arm shared by both execution modes and the legacy
    /// [`SpatialDatabase::approx_query`] wrapper. No budgeted evaluation
    /// path exists for the estimator yet, so [`QueryOptions::budget`] is not
    /// consulted here.
    pub(crate) fn run_reconstruct<R: Rng + ?Sized>(
        &self,
        query: &Formula,
        output_arity: usize,
        rng: &mut R,
    ) -> Result<QueryOutcome, SpatialDbError> {
        let estimator =
            cdb_reconstruct::PositiveQueryEstimator::new(self.params, self.eps, self.delta);
        let relation = estimator
            .estimate(&self.database, query, output_arity, rng)
            .map_err(SpatialDbError::Reconstruction)?;
        Ok(QueryOutcome {
            value: QueryValue::Relation(relation),
            completed: 1,
            error: None,
        })
    }

    /// Merges contained worker panics into the database's
    /// `panics_recovered` counter (surfaced by
    /// [`SpatialDatabase::store_stats`]).
    fn note_contained_panics(&self, count: usize) {
        if count > 0 {
            self.contained_panics
                .fetch_add(count as u64, Ordering::Relaxed);
        }
    }
}

/// Applies the spec's [`FailureMode`] to a collected multi-item outcome.
fn finish(
    spec: &QuerySpec,
    value: QueryValue,
    completed: usize,
    error: Option<SpatialDbError>,
) -> Result<QueryOutcome, SpatialDbError> {
    match spec.options.failure {
        FailureMode::Fail => match error {
            Some(e) => Err(e),
            None => Ok(QueryOutcome {
                value,
                completed,
                error: None,
            }),
        },
        FailureMode::Partial => Ok(QueryOutcome {
            value,
            completed,
            error,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_sampler::GeneratorParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_db() -> SpatialDatabase {
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
        db
    }

    #[test]
    fn seeded_query_is_reproducible() {
        let db = demo_db();
        let spec = QuerySpec::sample("R", 16).with_seed(11).with_threads(2);
        let a = db.query(&spec).unwrap();
        let b = db.query(&spec).unwrap();
        assert_eq!(a.points(), b.points());
        assert_eq!(a.completed, 16);
        assert!(a.point().is_some());
    }

    #[test]
    fn query_without_seed_is_invalid() {
        let db = demo_db();
        let spec = QuerySpec::sample("R", 1);
        assert!(matches!(
            db.query(&spec),
            Err(SpatialDbError::InvalidParams(_))
        ));
    }

    #[test]
    fn volume_query_reports_median() {
        let db = demo_db();
        let spec = QuerySpec::volume("R", 5).with_seed(3);
        let outcome = db.query(&spec).unwrap();
        assert_eq!(outcome.volumes().len(), 5);
        let v = outcome.volume().unwrap();
        assert!((v - 2.0).abs() < 0.7, "volume {v}");
        assert!(outcome.relation().is_none());
    }

    #[test]
    fn rng_mode_matches_sequential_draws() {
        let db = demo_db();
        let spec = QuerySpec::sample("R", 4).partial();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = db.query_with_rng(&spec, &mut rng).unwrap();
        let mut reference = StdRng::seed_from_u64(5);
        let expected: Vec<Vec<f64>> = db.approx_generate_many("R", 4, &mut reference).unwrap();
        let got: Vec<Vec<f64>> = outcome.points().iter().flatten().cloned().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let db = demo_db();
        let spec = QuerySpec::volume("Nope", 1).with_seed(1);
        assert!(matches!(
            db.query(&spec),
            Err(SpatialDbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn median_is_the_legacy_one() {
        assert_eq!(median([3.0, 1.0, 2.0].into_iter()), Some(2.0));
        assert_eq!(median([2.0, 1.0].into_iter()), Some(2.0));
        assert_eq!(median(std::iter::empty()), None);
    }
}
