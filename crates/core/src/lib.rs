//! High-level API for approximate query evaluation in spatial constraint
//! databases — the user-facing surface of the reproduction.
//!
//! A [`SpatialDatabase`] owns a set of generalized relations and exposes the
//! paper's three capabilities:
//!
//! * [`SpatialDatabase::approx_generate`] — an almost-uniform sample from a
//!   stored relation (Definition 2.2, built on Algorithm 1);
//! * [`SpatialDatabase::approx_volume`] — an `(ε, δ)`-volume estimate
//!   (Definition 2.1, Theorem 4.2);
//! * [`SpatialDatabase::approx_query`] — an `(ε, δ)`-estimation of the result
//!   *set* of a positive existential FO+LIN query (Theorem 4.4), returned as
//!   a generalized relation built from convex hulls of samples;
//! * [`SpatialDatabase::evaluate_exact`] — the fully symbolic baseline
//!   (resolution + Fourier–Motzkin + DNF).
//!
//! # Example
//!
//! ```
//! use cdb_core::SpatialDatabase;
//! use cdb_constraint::{parse_formula, GeneralizedRelation};
//! use cdb_sampler::GeneratorParams;
//! use rand::SeedableRng;
//!
//! let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
//! db.insert("Zone", GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]));
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let point = db.approx_generate("Zone", &mut rng).unwrap();
//! assert!(db.relation("Zone").unwrap().contains_f64(&point));
//!
//! let volume = db.approx_volume("Zone", &mut rng).unwrap();
//! assert!((volume - 2.0).abs() < 0.8);
//!
//! let query = parse_formula("Zone(x0, x1) and x0 <= 1", 2).unwrap();
//! let result = db.evaluate_exact(&query, 2).unwrap();
//! assert!(result.contains_f64(&[0.5, 0.5]));
//! assert!(!result.contains_f64(&[1.5, 0.5]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

use cdb_constraint::{ConstraintError, Database, Formula, GeneralizedRelation};
use cdb_reconstruct::{PositiveQueryEstimator, ReconstructionError};
use cdb_sampler::compose::ObservabilityError;
use cdb_sampler::{
    GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence, UnionGenerator,
};

/// Errors surfaced by the high-level API.
#[derive(Debug)]
pub enum SpatialDbError {
    /// The named relation is not stored in the database.
    UnknownRelation(String),
    /// The relation is not observable (Section 4 conditions violated).
    NotObservable(ObservabilityError),
    /// The generator failed (probability ≤ δ per attempt).
    GenerationFailed,
    /// The query could not be estimated.
    Reconstruction(ReconstructionError),
    /// The symbolic evaluation failed.
    Symbolic(ConstraintError),
}

impl std::fmt::Display for SpatialDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpatialDbError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            SpatialDbError::NotObservable(e) => write!(f, "relation is not observable: {e}"),
            SpatialDbError::GenerationFailed => {
                write!(f, "the generator failed to produce a point")
            }
            SpatialDbError::Reconstruction(e) => write!(f, "query estimation failed: {e}"),
            SpatialDbError::Symbolic(e) => write!(f, "symbolic evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for SpatialDbError {}

/// A spatial constraint database with approximate evaluation capabilities.
#[derive(Debug, Default)]
pub struct SpatialDatabase {
    database: Database,
    params: GeneratorParams,
    eps: f64,
    delta: f64,
}

impl SpatialDatabase {
    /// Creates an empty database with default generator parameters.
    pub fn new() -> Self {
        SpatialDatabase {
            database: Database::new(),
            params: GeneratorParams::default(),
            eps: 0.2,
            delta: 0.1,
        }
    }

    /// Creates an empty database with explicit generator parameters.
    pub fn with_params(params: GeneratorParams) -> Self {
        SpatialDatabase {
            database: Database::new(),
            params,
            eps: params.eps,
            delta: params.delta,
        }
    }

    /// Inserts (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: GeneralizedRelation) -> &mut Self {
        self.database.insert(name, relation);
        self
    }

    /// The underlying symbolic database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Looks up a stored relation.
    pub fn relation(&self, name: &str) -> Option<&GeneralizedRelation> {
        self.database.relation(name)
    }

    /// The generator parameters in use.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    fn union_generator(&self, name: &str) -> Result<UnionGenerator, SpatialDbError> {
        let relation = self
            .database
            .relation(name)
            .ok_or_else(|| SpatialDbError::UnknownRelation(name.to_string()))?;
        UnionGenerator::new(relation, self.params).map_err(SpatialDbError::NotObservable)
    }

    /// Draws one almost-uniform point from the named relation.
    pub fn approx_generate<R: Rng + ?Sized>(
        &self,
        name: &str,
        rng: &mut R,
    ) -> Result<Vec<f64>, SpatialDbError> {
        let mut generator = self.union_generator(name)?;
        generator
            .sample(rng)
            .ok_or(SpatialDbError::GenerationFailed)
    }

    /// Draws `n` almost-uniform points from the named relation (failed draws
    /// are skipped).
    pub fn approx_generate_many<R: Rng + ?Sized>(
        &self,
        name: &str,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, SpatialDbError> {
        let mut generator = self.union_generator(name)?;
        Ok(generator.sample_many(n, rng))
    }

    /// Draws `n` almost-uniform points from the named relation in parallel:
    /// point `i` is funded by child stream `i + 1` of `seq` and the chains
    /// are split across up to `threads` worker threads (`0` = one per core),
    /// so the output is identical for any thread count. Failed draws are
    /// `None`, keeping indices aligned with seed streams.
    pub fn approx_generate_batch(
        &self,
        name: &str,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Result<Vec<Option<Vec<f64>>>, SpatialDbError> {
        let mut generator = self.union_generator(name)?;
        Ok(generator.sample_batch(n, seq, threads))
    }

    /// Median of `repeats` parallel independent volume estimates of the named
    /// relation — the batched, thread-count-independent counterpart of
    /// [`SpatialDatabase::approx_volume`].
    pub fn approx_volume_batch(
        &self,
        name: &str,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Result<f64, SpatialDbError> {
        let mut generator = self.union_generator(name)?;
        generator
            .estimate_volume_median(repeats, seq, threads)
            .ok_or(SpatialDbError::GenerationFailed)
    }

    /// Estimates the volume of the named relation.
    pub fn approx_volume<R: Rng + ?Sized>(
        &self,
        name: &str,
        rng: &mut R,
    ) -> Result<f64, SpatialDbError> {
        let mut generator = self.union_generator(name)?;
        generator
            .estimate_volume(rng)
            .ok_or(SpatialDbError::GenerationFailed)
    }

    /// Estimates the result set of a positive existential query (free
    /// variables `x_0 … x_{output_arity−1}`) as a generalized relation.
    pub fn approx_query<R: Rng + ?Sized>(
        &self,
        query: &Formula,
        output_arity: usize,
        rng: &mut R,
    ) -> Result<GeneralizedRelation, SpatialDbError> {
        let estimator = PositiveQueryEstimator::new(self.params, self.eps, self.delta);
        estimator
            .estimate(&self.database, query, output_arity, rng)
            .map_err(SpatialDbError::Reconstruction)
    }

    /// Evaluates a query exactly through the symbolic pipeline (resolution,
    /// Fourier–Motzkin, DNF) — the baseline the approximate path avoids.
    pub fn evaluate_exact(
        &self,
        query: &Formula,
        output_arity: usize,
    ) -> Result<GeneralizedRelation, SpatialDbError> {
        self.database
            .evaluate(query, output_arity)
            .map_err(SpatialDbError::Symbolic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraint::parse_formula;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_db() -> SpatialDatabase {
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
        db.insert(
            "U",
            GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
                .union(&GeneralizedRelation::from_box_f64(&[3.0], &[4.0])),
        );
        db
    }

    #[test]
    fn generate_and_volume() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(201);
        let p = db.approx_generate("R", &mut rng).unwrap();
        assert!(db.relation("R").unwrap().contains_f64(&p));
        let v = db.approx_volume("R", &mut rng).unwrap();
        assert!((v - 2.0).abs() < 0.7, "volume {v}");
        let many = db.approx_generate_many("U", 100, &mut rng).unwrap();
        assert!(many.len() > 80);
        for p in &many {
            assert!(db.relation("U").unwrap().contains_f64(p));
        }
    }

    #[test]
    fn batch_generation_is_thread_count_independent() {
        let db = sample_db();
        let seq = SeedSequence::new(77);
        let single = db.approx_generate_batch("U", 64, &seq, 1).unwrap();
        let pooled = db.approx_generate_batch("U", 64, &seq, 4).unwrap();
        assert_eq!(single, pooled);
        assert!(single.iter().filter(|p| p.is_some()).count() > 50);
        for p in single.iter().flatten() {
            assert!(db.relation("U").unwrap().contains_f64(p));
        }
        let v1 = db.approx_volume_batch("R", 5, &seq, 1).unwrap();
        let v4 = db.approx_volume_batch("R", 5, &seq, 4).unwrap();
        assert_eq!(v1, v4);
        assert!((v1 - 2.0).abs() < 0.7, "volume {v1}");
    }

    #[test]
    fn unknown_relation_errors() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(202);
        assert!(matches!(
            db.approx_generate("Missing", &mut rng),
            Err(SpatialDbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn exact_and_approximate_query_agree_roughly() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(203);
        // Q(x0) = exists x1. R(x0, x1): the interval [0, 2].
        let q = parse_formula("exists x1. R(x0, x1)", 2).unwrap();
        let exact = db.evaluate_exact(&q, 1).unwrap();
        assert!(exact.contains_f64(&[1.0]));
        assert!(!exact.contains_f64(&[2.5]));
        let approx = db.approx_query(&q, 1, &mut rng).unwrap();
        // The approximation covers the middle of the interval and does not
        // wildly overshoot.
        assert!(approx.contains_f64(&[1.0]));
        assert!(!approx.contains_f64(&[3.0]));
    }

    #[test]
    fn non_observable_relation_is_reported() {
        let mut db = SpatialDatabase::new();
        use cdb_constraint::{Atom, GeneralizedTuple};
        db.insert(
            "Half",
            GeneralizedRelation::from_tuple(GeneralizedTuple::new(
                1,
                vec![Atom::le_from_ints(&[1], 0)],
            )),
        );
        let mut rng = StdRng::seed_from_u64(204);
        assert!(matches!(
            db.approx_volume("Half", &mut rng),
            Err(SpatialDbError::NotObservable(_))
        ));
    }
}
