//! High-level API for approximate query evaluation in spatial constraint
//! databases — the user-facing surface of the reproduction.
//!
//! A [`SpatialDatabase`] owns a set of generalized relations and exposes the
//! paper's three capabilities:
//!
//! * [`SpatialDatabase::approx_generate`] — an almost-uniform sample from a
//!   stored relation (Definition 2.2, built on Algorithm 1);
//! * [`SpatialDatabase::approx_volume`] — an `(ε, δ)`-volume estimate
//!   (Definition 2.1, Theorem 4.2);
//! * [`SpatialDatabase::approx_query`] — an `(ε, δ)`-estimation of the result
//!   *set* of a positive existential FO+LIN query (Theorem 4.4), returned as
//!   a generalized relation built from convex hulls of samples;
//! * [`SpatialDatabase::evaluate_exact`] — the fully symbolic baseline
//!   (resolution + Fourier–Motzkin + DNF).
//!
//! # Example
//!
//! ```
//! use cdb_core::SpatialDatabase;
//! use cdb_constraint::{parse_formula, GeneralizedRelation};
//! use cdb_sampler::GeneratorParams;
//! use rand::SeedableRng;
//!
//! let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
//! db.insert("Zone", GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]));
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let point = db.approx_generate("Zone", &mut rng).unwrap();
//! assert!(db.relation("Zone").unwrap().contains_f64(&point));
//!
//! let volume = db.approx_volume("Zone", &mut rng).unwrap();
//! assert!((volume - 2.0).abs() < 0.8);
//!
//! let query = parse_formula("Zone(x0, x1) and x0 <= 1", 2).unwrap();
//! let result = db.evaluate_exact(&query, 2).unwrap();
//! assert!(result.contains_f64(&[0.5, 0.5]));
//! assert!(!result.contains_f64(&[1.5, 0.5]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;

pub use query::{FailureMode, QueryKind, QueryOptions, QueryOutcome, QuerySpec, QueryValue};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use rand::Rng;

use cdb_constraint::canonical::CanonicalKey;
use cdb_constraint::{ConstraintError, Database, Formula, GeneralizedRelation};
use cdb_reconstruct::ReconstructionError;
use cdb_sampler::compose::ObservabilityError;
use cdb_sampler::{
    BudgetTrip, GeneratorParams, PreparedStore, PreparedStoreStats, QueryBudget, RelationGenerator,
    SeedSequence, UnionGenerator, WalkKind, DEFAULT_PREPARED_STORE_CAPACITY,
};

/// The phase of query evaluation in which a failure occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryPhase {
    /// Building the prepared generator body (certificates, pilot volume
    /// estimates, rounding transforms).
    Preparation,
    /// Drawing almost-uniform points.
    Sampling,
    /// Estimating an `(ε, δ)` volume.
    VolumeEstimation,
}

impl std::fmt::Display for QueryPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryPhase::Preparation => write!(f, "preparation"),
            QueryPhase::Sampling => write!(f, "sampling"),
            QueryPhase::VolumeEstimation => write!(f, "volume estimation"),
        }
    }
}

/// Errors surfaced by the high-level API.
#[derive(Debug)]
pub enum SpatialDbError {
    /// The named relation is not stored in the database.
    UnknownRelation(String),
    /// The query specification itself is invalid (e.g. a seeded
    /// [`SpatialDatabase::query`] without a seed) — a caller error, distinct
    /// from any engine failure.
    InvalidParams(String),
    /// The relation is not observable (Section 4 conditions violated).
    NotObservable {
        /// Name of the offending relation.
        relation: String,
        /// The underlying observability failure.
        source: ObservabilityError,
    },
    /// The generator failed (probability ≤ δ per attempt) with no budget
    /// involved: a genuine statistical failure, not resource exhaustion.
    GenerationFailed {
        /// Name of the relation being queried.
        relation: String,
        /// Attempts charged by the failing call before it gave up.
        attempts: u64,
        /// The phase that failed.
        phase: QueryPhase,
    },
    /// An installed [`QueryBudget`] tripped before the query finished.
    BudgetExhausted {
        /// Name of the relation being queried.
        relation: String,
        /// Which limit tripped (steps, attempts, deadline or cancellation).
        cause: BudgetTrip,
        /// Batch items completed before the budget tripped (`0` for
        /// single-draw entry points).
        completed: usize,
    },
    /// A batch worker panicked; the panic was contained at the worker
    /// boundary and surviving workers completed (see
    /// [`SpatialDatabase::approx_generate_batch_partial`]).
    WorkerPanicked {
        /// Index of the panicking worker.
        worker: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// The query could not be estimated.
    Reconstruction(ReconstructionError),
    /// The symbolic evaluation failed.
    Symbolic(ConstraintError),
}

impl std::fmt::Display for SpatialDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpatialDbError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            SpatialDbError::InvalidParams(msg) => write!(f, "invalid query parameters: {msg}"),
            SpatialDbError::NotObservable { relation, source } => {
                write!(f, "relation {relation} is not observable: {source}")
            }
            SpatialDbError::GenerationFailed {
                relation,
                attempts,
                phase,
            } => write!(
                f,
                "the generator for relation {relation} failed during {phase} \
                 after {attempts} attempts"
            ),
            SpatialDbError::BudgetExhausted {
                relation,
                cause,
                completed,
            } => write!(
                f,
                "query budget exhausted for relation {relation}: {cause} \
                 ({completed} items completed)"
            ),
            SpatialDbError::WorkerPanicked { worker, payload } => {
                write!(f, "batch worker {worker} panicked: {payload}")
            }
            SpatialDbError::Reconstruction(e) => write!(f, "query estimation failed: {e}"),
            SpatialDbError::Symbolic(e) => write!(f, "symbolic evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for SpatialDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpatialDbError::NotObservable { source, .. } => Some(source),
            SpatialDbError::Reconstruction(e) => Some(e),
            SpatialDbError::Symbolic(e) => Some(e),
            _ => None,
        }
    }
}

/// Everything a `*_batch_partial` entry point produced before (and after)
/// its first failure: partial results are first-class, not discarded.
#[derive(Debug)]
pub struct PartialBatch<T> {
    /// Per-item outcomes, index-aligned with the batch seed streams. `None`
    /// marks items whose draw failed or whose worker panicked.
    pub results: Vec<Option<T>>,
    /// Number of `Some` entries in `results`.
    pub completed: usize,
    /// The first failure encountered, if any (`None` means every item
    /// completed).
    pub error: Option<SpatialDbError>,
}

/// Maps a failed draw to the right error: a tripped budget is resource
/// exhaustion ([`SpatialDbError::BudgetExhausted`]); no trip means the
/// generator genuinely failed its δ-bounded attempt
/// ([`SpatialDbError::GenerationFailed`]).
fn draw_failure(
    name: &str,
    generator: &UnionGenerator,
    phase: QueryPhase,
    completed: usize,
) -> SpatialDbError {
    match generator.budget_trip() {
        Some(cause) => SpatialDbError::BudgetExhausted {
            relation: name.to_string(),
            cause,
            completed,
        },
        None => SpatialDbError::GenerationFailed {
            relation: name.to_string(),
            attempts: generator.budget_meter().attempts_used(),
            phase,
        },
    }
}

/// SplitMix64 finalizer: decorrelates the key hash and the parameter
/// fingerprint before they fund a preparation seed stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stable fingerprint of every [`GeneratorParams`] field that influences a
/// prepared body, folded into the preparation seed so the same relation
/// prepared under different parameters never shares a seed stream.
fn params_fingerprint(p: &GeneratorParams) -> u64 {
    let mut acc = mix(p.gamma.to_bits());
    for word in [
        p.eps.to_bits(),
        p.delta.to_bits(),
        p.walk_steps_factor as u64,
        match p.walk {
            WalkKind::HitAndRun => 1,
            WalkKind::Ball => 2,
            WalkKind::Grid { step_ratio } => mix(3 ^ step_ratio.to_bits()),
        },
        u64::from(p.rounding),
    ] {
        acc = mix(acc ^ word);
    }
    acc
}

/// A spatial constraint database with approximate evaluation capabilities.
///
/// # The prepared-relation store
///
/// Every `approx_*` entry point routes through a keyed, concurrency-safe
/// [`PreparedStore`] mapping the *canonical form* of a stored relation's
/// defining formula (see [`cdb_constraint::canonical`]) to its fully
/// prepared generator body — certificates, pilot volume estimates, rounding
/// transforms — so repeated and concurrent queries over overlapping
/// relations pay preprocessing once. Preparation randomness is derived from
/// the canonical key and a fingerprint of the generator parameters, never
/// from the caller's stream, which makes the store *bitwise invisible*:
/// results are identical whether the store is cold, warm, shared across
/// threads, capacity-evicting, or disabled
/// ([`SpatialDatabase::with_store_capacity`] with capacity `0`).
#[derive(Debug, Default)]
pub struct SpatialDatabase {
    database: Database,
    params: GeneratorParams,
    eps: f64,
    delta: f64,
    /// Prepared generator bodies, keyed by canonical formula.
    store: PreparedStore<CanonicalKey, UnionGenerator>,
    /// Memo of name → canonical key (keys are content-derived, so this is
    /// pure caching; invalidated when a relation is replaced).
    keys: RwLock<HashMap<String, CanonicalKey>>,
    /// Worker panics contained by the partial batch entry points; merged
    /// into [`SpatialDatabase::store_stats`] as `panics_recovered`.
    contained_panics: AtomicU64,
}

impl SpatialDatabase {
    /// Creates an empty database with default generator parameters.
    pub fn new() -> Self {
        SpatialDatabase {
            database: Database::new(),
            params: GeneratorParams::default(),
            eps: 0.2,
            delta: 0.1,
            store: PreparedStore::new(DEFAULT_PREPARED_STORE_CAPACITY),
            keys: RwLock::new(HashMap::new()),
            contained_panics: AtomicU64::new(0),
        }
    }

    /// Creates an empty database with explicit generator parameters.
    pub fn with_params(params: GeneratorParams) -> Self {
        SpatialDatabase {
            database: Database::new(),
            params,
            eps: params.eps,
            delta: params.delta,
            store: PreparedStore::new(DEFAULT_PREPARED_STORE_CAPACITY),
            keys: RwLock::new(HashMap::new()),
            contained_panics: AtomicU64::new(0),
        }
    }

    /// Replaces the prepared-relation store with one of the given capacity.
    /// Capacity `0` disables caching entirely — every query prepares from
    /// scratch, which is bitwise identical to the cached paths and is the
    /// baseline the determinism suite pins legacy behavior to.
    pub fn with_store_capacity(mut self, capacity: usize) -> Self {
        self.store = PreparedStore::new(capacity);
        self
    }

    /// Inserts (or replaces) a relation. Replacing invalidates the name's
    /// canonical-key memo; any prepared body for the *old* content stays in
    /// the store harmlessly (keys are content-derived, so it can only be
    /// hit again by a relation with that exact content).
    pub fn insert(&mut self, name: impl Into<String>, relation: GeneralizedRelation) -> &mut Self {
        let name = name.into();
        self.keys
            .write()
            .expect("canonical-key memo lock")
            .remove(&name);
        self.database.insert(name, relation);
        self
    }

    /// The underlying symbolic database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Looks up a stored relation.
    pub fn relation(&self, name: &str) -> Option<&GeneralizedRelation> {
        self.database.relation(name)
    }

    /// The generator parameters in use.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Hit/miss/eviction counters of the prepared-relation store, with this
    /// database's containment counters merged in: `panics_recovered` counts
    /// worker panics contained by the partial batch entry points and
    /// `shards_rebuilt` counts poisoned store shards that were discarded and
    /// rebuilt.
    pub fn store_stats(&self) -> PreparedStoreStats {
        let mut stats = self.store.stats();
        stats.panics_recovered = self.contained_panics.load(Ordering::Relaxed);
        stats
    }

    /// Capacity of the prepared-relation store (`0` = disabled).
    pub fn store_capacity(&self) -> usize {
        self.store.capacity()
    }

    /// The canonical cache key of the named relation (memoized per name).
    fn relation_key(&self, name: &str, relation: &GeneralizedRelation) -> CanonicalKey {
        if let Some(key) = self.keys.read().expect("canonical-key memo lock").get(name) {
            return key.clone();
        }
        let key = CanonicalKey::of_relation(relation);
        self.keys
            .write()
            .expect("canonical-key memo lock")
            .insert(name.to_string(), key.clone());
        key
    }

    /// Builds (or fetches) the prepared generator body for the named
    /// relation and attaches a private copy for this query.
    ///
    /// The preparation seed is derived from the canonical key and the
    /// parameter fingerprint — never from the caller's stream — so the body
    /// is a pure function of (relation content, parameters). That is the
    /// whole invisibility argument: a cold build, a warm hit, a racing
    /// rebuild and the disabled-store path all produce bitwise identical
    /// bodies, and the caller's randomness funds only the sampling itself.
    fn prepared_generator(&self, name: &str) -> Result<UnionGenerator, SpatialDbError> {
        let relation = self
            .database
            .relation(name)
            .ok_or_else(|| SpatialDbError::UnknownRelation(name.to_string()))?;
        let key = self.relation_key(name, relation);
        let prep_seed = mix(key.hash64() ^ params_fingerprint(&self.params));
        let params = self.params;
        let body = self.store.get_or_try_prepare(&key, || {
            let mut generator = UnionGenerator::new(relation, params)?;
            generator.prepare(&SeedSequence::new(prep_seed));
            Ok(generator)
        });
        // Copy-on-attach: the stored body stays immutable; this query gets
        // its own mutable scratch.
        Ok((*body.map_err(|source| SpatialDbError::NotObservable {
            relation: name.to_string(),
            source,
        })?)
        .clone())
    }

    /// Draws one almost-uniform point from the named relation.
    ///
    /// Thin wrapper over [`SpatialDatabase::query_with_rng`] with
    /// [`QueryKind::Sample`]`{ n: 1 }`.
    pub fn approx_generate<R: Rng + ?Sized>(
        &self,
        name: &str,
        rng: &mut R,
    ) -> Result<Vec<f64>, SpatialDbError> {
        self.approx_generate_budgeted(name, &QueryBudget::unlimited(), rng)
    }

    /// [`SpatialDatabase::approx_generate`] under an explicit
    /// [`QueryBudget`]: the walk and retry loops check the budget's
    /// deterministic counters at chunk boundaries and its advisory deadline
    /// and cancellation token at the same points. A tripped budget surfaces
    /// as [`SpatialDbError::BudgetExhausted`] naming the cause; an
    /// un-tripped failure stays [`SpatialDbError::GenerationFailed`].
    pub fn approx_generate_budgeted<R: Rng + ?Sized>(
        &self,
        name: &str,
        budget: &QueryBudget,
        rng: &mut R,
    ) -> Result<Vec<f64>, SpatialDbError> {
        let spec = QuerySpec::sample(name, 1).with_budget(budget);
        let outcome = self.query_with_rng(&spec, rng)?;
        Ok(outcome
            .into_points_batch()
            .results
            .into_iter()
            .flatten()
            .next()
            .expect("a fail-fast sample query that returned Ok holds its point"))
    }

    /// Draws `n` almost-uniform points from the named relation.
    ///
    /// **Skip semantics.** Failed draws are silently dropped: the returned
    /// vector can be shorter than `n`, and callers cannot tell *which*
    /// draws failed. This is the right shape for statistical consumers
    /// (histograms, hull reconstruction) where only the collected sample
    /// matters; callers that must distinguish 100-requested/97-returned use
    /// [`SpatialDatabase::query`] in [`FailureMode::Partial`] (or the
    /// [`SpatialDatabase::approx_generate_batch_partial`] wrapper), whose
    /// outcome keeps failed slots as `None` alongside the typed first
    /// failure. Internally this wrapper routes through exactly that partial
    /// machinery and then drops the `None`s.
    pub fn approx_generate_many<R: Rng + ?Sized>(
        &self,
        name: &str,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, SpatialDbError> {
        let spec = QuerySpec::sample(name, n).partial();
        let outcome = self.query_with_rng(&spec, rng)?;
        Ok(outcome
            .into_points_batch()
            .results
            .into_iter()
            .flatten()
            .collect())
    }

    /// Draws `n` almost-uniform points from the named relation in parallel:
    /// point `i` is funded by child stream `i + 1` of `seq` and the chains
    /// are split across up to `threads` worker threads (`0` = one per core),
    /// so the output is identical for any thread count. Failed draws are
    /// `None`, keeping indices aligned with seed streams.
    pub fn approx_generate_batch(
        &self,
        name: &str,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Result<Vec<Option<Vec<f64>>>, SpatialDbError> {
        let spec = QuerySpec::sample(name, n)
            .with_seed_sequence(*seq)
            .with_threads(threads)
            .partial();
        Ok(self.query(&spec)?.into_points_batch().results)
    }

    /// Panic-contained, budget-aware variant of
    /// [`SpatialDatabase::approx_generate_batch`]: every batch worker runs
    /// behind a panic boundary, so one poisoned item cannot take down the
    /// others — surviving workers complete, their results are returned, and
    /// the first failure (a contained [`SpatialDbError::WorkerPanicked`], a
    /// per-item [`SpatialDbError::BudgetExhausted`] or a genuine
    /// [`SpatialDbError::GenerationFailed`]) rides alongside them in the
    /// [`PartialBatch`]. The budget applies to each item independently, so
    /// the outcome vector is identical for every thread count.
    pub fn approx_generate_batch_partial(
        &self,
        name: &str,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
        budget: &QueryBudget,
    ) -> Result<PartialBatch<Vec<f64>>, SpatialDbError> {
        let spec = QuerySpec::sample(name, n)
            .with_seed_sequence(*seq)
            .with_threads(threads)
            .with_budget(budget)
            .partial();
        Ok(self.query(&spec)?.into_points_batch())
    }

    /// Median of `repeats` parallel independent volume estimates of the named
    /// relation — the batched, thread-count-independent counterpart of
    /// [`SpatialDatabase::approx_volume`].
    pub fn approx_volume_batch(
        &self,
        name: &str,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Result<f64, SpatialDbError> {
        let spec = QuerySpec::volume(name, repeats)
            .with_seed_sequence(*seq)
            .with_threads(threads)
            .partial();
        let outcome = self.query(&spec)?;
        match outcome.volume() {
            Some(v) => Ok(v),
            None => Err(outcome
                .error
                .expect("an all-failed volume batch records its first failure")),
        }
    }

    /// Panic-contained, budget-aware variant of
    /// [`SpatialDatabase::approx_volume_batch`]: returns every independent
    /// volume estimate that completed (index-aligned with the seed streams)
    /// alongside the first failure, instead of collapsing to a median or a
    /// single error. See
    /// [`SpatialDatabase::approx_generate_batch_partial`] for the
    /// containment and budget semantics.
    pub fn approx_volume_batch_partial(
        &self,
        name: &str,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
        budget: &QueryBudget,
    ) -> Result<PartialBatch<f64>, SpatialDbError> {
        let spec = QuerySpec::volume(name, repeats)
            .with_seed_sequence(*seq)
            .with_threads(threads)
            .with_budget(budget)
            .partial();
        Ok(self.query(&spec)?.into_volumes_batch())
    }

    /// Estimates the volume of the named relation.
    ///
    /// Thin wrapper over [`SpatialDatabase::query_with_rng`] with
    /// [`QueryKind::Volume`]`{ repeats: 1 }`.
    pub fn approx_volume<R: Rng + ?Sized>(
        &self,
        name: &str,
        rng: &mut R,
    ) -> Result<f64, SpatialDbError> {
        self.approx_volume_budgeted(name, &QueryBudget::unlimited(), rng)
    }

    /// [`SpatialDatabase::approx_volume`] under an explicit [`QueryBudget`]
    /// (see [`SpatialDatabase::approx_generate_budgeted`] for the trip
    /// semantics).
    pub fn approx_volume_budgeted<R: Rng + ?Sized>(
        &self,
        name: &str,
        budget: &QueryBudget,
        rng: &mut R,
    ) -> Result<f64, SpatialDbError> {
        let spec = QuerySpec::volume(name, 1).with_budget(budget);
        let outcome = self.query_with_rng(&spec, rng)?;
        Ok(outcome
            .volume()
            .expect("a fail-fast volume query that returned Ok holds its estimate"))
    }

    /// Estimates the result set of a positive existential query (free
    /// variables `x_0 … x_{output_arity−1}`) as a generalized relation.
    ///
    /// Thin wrapper over the [`QueryKind::Reconstruct`] arm of
    /// [`SpatialDatabase::query_with_rng`].
    pub fn approx_query<R: Rng + ?Sized>(
        &self,
        query: &Formula,
        output_arity: usize,
        rng: &mut R,
    ) -> Result<GeneralizedRelation, SpatialDbError> {
        let outcome = self.run_reconstruct(query, output_arity, rng)?;
        match outcome.value {
            QueryValue::Relation(relation) => Ok(relation),
            other => unreachable!("reconstruction produced a non-relation value {other:?}"),
        }
    }

    /// Evaluates a query exactly through the symbolic pipeline (resolution,
    /// Fourier–Motzkin, DNF) — the baseline the approximate path avoids.
    pub fn evaluate_exact(
        &self,
        query: &Formula,
        output_arity: usize,
    ) -> Result<GeneralizedRelation, SpatialDbError> {
        self.database
            .evaluate(query, output_arity)
            .map_err(SpatialDbError::Symbolic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraint::parse_formula;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_db() -> SpatialDatabase {
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
        db.insert(
            "U",
            GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
                .union(&GeneralizedRelation::from_box_f64(&[3.0], &[4.0])),
        );
        db
    }

    #[test]
    fn generate_and_volume() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(201);
        let p = db.approx_generate("R", &mut rng).unwrap();
        assert!(db.relation("R").unwrap().contains_f64(&p));
        let v = db.approx_volume("R", &mut rng).unwrap();
        assert!((v - 2.0).abs() < 0.7, "volume {v}");
        let many = db.approx_generate_many("U", 100, &mut rng).unwrap();
        assert!(many.len() > 80);
        for p in &many {
            assert!(db.relation("U").unwrap().contains_f64(p));
        }
    }

    #[test]
    fn batch_generation_is_thread_count_independent() {
        let db = sample_db();
        let seq = SeedSequence::new(77);
        let single = db.approx_generate_batch("U", 64, &seq, 1).unwrap();
        let pooled = db.approx_generate_batch("U", 64, &seq, 4).unwrap();
        assert_eq!(single, pooled);
        assert!(single.iter().filter(|p| p.is_some()).count() > 50);
        for p in single.iter().flatten() {
            assert!(db.relation("U").unwrap().contains_f64(p));
        }
        let v1 = db.approx_volume_batch("R", 5, &seq, 1).unwrap();
        let v4 = db.approx_volume_batch("R", 5, &seq, 4).unwrap();
        assert_eq!(v1, v4);
        assert!((v1 - 2.0).abs() < 0.7, "volume {v1}");
    }

    #[test]
    fn unknown_relation_errors() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(202);
        assert!(matches!(
            db.approx_generate("Missing", &mut rng),
            Err(SpatialDbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn exact_and_approximate_query_agree_roughly() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(203);
        // Q(x0) = exists x1. R(x0, x1): the interval [0, 2].
        let q = parse_formula("exists x1. R(x0, x1)", 2).unwrap();
        let exact = db.evaluate_exact(&q, 1).unwrap();
        assert!(exact.contains_f64(&[1.0]));
        assert!(!exact.contains_f64(&[2.5]));
        let approx = db.approx_query(&q, 1, &mut rng).unwrap();
        // The approximation covers the middle of the interval and does not
        // wildly overshoot.
        assert!(approx.contains_f64(&[1.0]));
        assert!(!approx.contains_f64(&[3.0]));
    }

    #[test]
    fn non_observable_relation_is_reported() {
        let mut db = SpatialDatabase::new();
        use cdb_constraint::{Atom, GeneralizedTuple};
        db.insert(
            "Half",
            GeneralizedRelation::from_tuple(GeneralizedTuple::new(
                1,
                vec![Atom::le_from_ints(&[1], 0)],
            )),
        );
        let mut rng = StdRng::seed_from_u64(204);
        assert!(matches!(
            db.approx_volume("Half", &mut rng),
            Err(SpatialDbError::NotObservable { .. })
        ));
    }
}
