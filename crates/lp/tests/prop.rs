//! Property-based tests for the simplex solver.
//!
//! The key invariants:
//! * systems constructed around a known witness point are always reported
//!   feasible, and the returned feasible point satisfies every constraint;
//! * the reported optimum is at least the objective value of the witness;
//! * the optimum of a maximization over a box equals the obvious closed form;
//! * the exact rational solver agrees with the floating-point solver.

use cdb_lp::{LpOutcome, LpProblem};
use cdb_num::Rational;
use proptest::prelude::*;

/// A random constraint system in `dim` variables that is guaranteed to
/// contain the witness point, together with that witness.
fn feasible_system(dim: usize) -> impl Strategy<Value = (Vec<(Vec<f64>, f64)>, Vec<f64>)> {
    let witness = proptest::collection::vec(-5.0f64..5.0, dim);
    let normals = proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, dim), 1..12);
    let margins = proptest::collection::vec(0.01f64..4.0, 1..12);
    (witness, normals, margins).prop_map(|(w, normals, margins)| {
        let rows: Vec<(Vec<f64>, f64)> = normals
            .into_iter()
            .zip(margins.into_iter().cycle())
            .map(|(a, m)| {
                let b = a.iter().zip(&w).map(|(ai, wi)| ai * wi).sum::<f64>() + m;
                (a, b)
            })
            .collect();
        (rows, w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn witness_systems_are_feasible((rows, witness) in feasible_system(3)) {
        let mut lp = LpProblem::new(3);
        for (a, b) in &rows {
            lp.add_le(a.clone(), *b);
        }
        let p = lp.feasible_point().expect("system with witness must be feasible");
        for (a, b) in &rows {
            let lhs: f64 = a.iter().zip(&p).map(|(ai, pi)| ai * pi).sum();
            prop_assert!(lhs <= b + 1e-6, "violated constraint: {lhs} > {b}");
        }
        prop_assert_eq!(p.len(), witness.len());
    }

    #[test]
    fn optimum_dominates_witness((rows, witness) in feasible_system(3), c in proptest::collection::vec(-2.0f64..2.0, 3)) {
        let mut lp = LpProblem::new(3);
        lp.set_objective(c.clone());
        for (a, b) in &rows {
            lp.add_le(a.clone(), *b);
        }
        let witness_value: f64 = c.iter().zip(&witness).map(|(ci, wi)| ci * wi).sum();
        match lp.solve() {
            LpOutcome::Optimal { value, point } => {
                prop_assert!(value >= witness_value - 1e-6);
                for (a, b) in &rows {
                    let lhs: f64 = a.iter().zip(&point).map(|(ai, pi)| ai * pi).sum();
                    prop_assert!(lhs <= b + 1e-6);
                }
            }
            LpOutcome::Unbounded => { /* also dominates the witness */ }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn box_maximization_closed_form(lo in proptest::collection::vec(-5.0f64..0.0, 4), width in proptest::collection::vec(0.1f64..5.0, 4), c in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
        let mut lp = LpProblem::new(4);
        lp.set_objective(c.clone());
        for j in 0..4 {
            let mut row = vec![0.0; 4];
            row[j] = 1.0;
            lp.add_le(row.clone(), hi[j]);
            row[j] = -1.0;
            lp.add_le(row, -lo[j]);
        }
        let expected: f64 = (0..4).map(|j| if c[j] >= 0.0 { c[j] * hi[j] } else { c[j] * lo[j] }).sum();
        match lp.solve() {
            LpOutcome::Optimal { value, .. } => prop_assert!((value - expected).abs() < 1e-6),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn exact_matches_float(coeffs in proptest::collection::vec(-4i64..=4, 6), rhs in proptest::collection::vec(1i64..=8, 3)) {
        // maximize x + y over three random half-planes that all contain the origin
        // in their interior (rhs > 0), plus a bounding box.
        let mut f = LpProblem::new(2);
        let mut q: LpProblem<Rational> = LpProblem::new(2);
        f.set_objective(vec![1.0, 1.0]);
        q.set_objective(vec![Rational::from_int(1), Rational::from_int(1)]);
        for i in 0..3 {
            let (a0, a1, b) = (coeffs[2 * i], coeffs[2 * i + 1], rhs[i]);
            f.add_le(vec![a0 as f64, a1 as f64], b as f64);
            q.add_le(vec![Rational::from_int(a0), Rational::from_int(a1)], Rational::from_int(b));
        }
        for j in 0..2 {
            let mut row = vec![0.0, 0.0];
            row[j] = 1.0;
            f.add_le(row.clone(), 10.0);
            row[j] = -1.0;
            f.add_le(row, 10.0);
            let mut qrow = vec![Rational::zero(), Rational::zero()];
            qrow[j] = Rational::from_int(1);
            q.add_le(qrow.clone(), Rational::from_int(10));
            qrow[j] = Rational::from_int(-1);
            qrow[(j + 1) % 2] = Rational::zero();
            q.add_le(qrow, Rational::from_int(10));
        }
        let fv = match f.solve() {
            LpOutcome::Optimal { value, .. } => value,
            other => { prop_assert!(false, "float LP not optimal: {:?}", other); return Ok(()); }
        };
        let qv = match q.solve() {
            LpOutcome::Optimal { value, .. } => value.to_f64(),
            other => { prop_assert!(false, "exact LP not optimal: {:?}", other); return Ok(()); }
        };
        prop_assert!((fv - qv).abs() < 1e-6, "float {fv} vs exact {qv}");
    }
}
