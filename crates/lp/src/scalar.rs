//! The scalar abstraction the simplex solver is generic over.

use cdb_num::Rational;

/// Arithmetic required by the simplex solver.
///
/// Two implementations are provided: `f64` (fast, used by the samplers) and
/// [`Rational`] (exact, used by the symbolic constraint layer for emptiness
/// and redundancy certificates). The `*_tol` predicates absorb the difference
/// between exact and floating-point pivoting: the rational implementation
/// compares exactly, the float implementation uses a small tolerance.
pub trait LpScalar: Clone + PartialOrd + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Construction from a small integer.
    fn from_i64(v: i64) -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division (callers guarantee the divisor is non-zero under `is_zero_tol`).
    fn div(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Is this value zero up to the pivoting tolerance?
    fn is_zero_tol(&self) -> bool;
    /// Lossy conversion used for reporting.
    fn to_f64(&self) -> f64;

    /// Is this value strictly positive beyond the tolerance?
    fn is_positive_tol(&self) -> bool {
        !self.is_zero_tol() && *self > Self::zero()
    }

    /// Is this value strictly negative beyond the tolerance?
    fn is_negative_tol(&self) -> bool {
        !self.is_zero_tol() && *self < Self::zero()
    }

    /// Absolute value.
    fn abs(&self) -> Self {
        if *self < Self::zero() {
            self.neg()
        } else {
            self.clone()
        }
    }
}

/// Pivot tolerance for the floating-point instantiation.
pub(crate) const F64_TOL: f64 = 1e-9;

impl LpScalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero_tol(&self) -> bool {
        self.abs() < F64_TOL
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl LpScalar for Rational {
    fn zero() -> Self {
        Rational::zero()
    }
    fn one() -> Self {
        Rational::one()
    }
    fn from_i64(v: i64) -> Self {
        Rational::from_int(v)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero_tol(&self) -> bool {
        self.is_zero()
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerance_behaviour() {
        assert!(1e-12f64.is_zero_tol());
        assert!(!1e-6f64.is_zero_tol());
        assert!(1e-6f64.is_positive_tol());
        assert!((-1e-6f64).is_negative_tol());
        assert!(!(1e-12f64).is_positive_tol());
        assert_eq!(LpScalar::abs(&-3.0f64), 3.0);
    }

    #[test]
    fn rational_is_exact() {
        let tiny = Rational::from_ratio(1, 1_000_000_000_000);
        assert!(!tiny.is_zero_tol());
        assert!(tiny.is_positive_tol());
        assert!(Rational::zero().is_zero_tol());
        assert_eq!(
            LpScalar::abs(&Rational::from_ratio(-2, 3)),
            Rational::from_ratio(2, 3)
        );
    }

    #[test]
    fn arithmetic_dispatch() {
        assert_eq!(LpScalar::add(&2.0f64, &3.0), 5.0);
        assert_eq!(
            LpScalar::mul(&Rational::from_ratio(1, 2), &Rational::from_ratio(2, 3)),
            Rational::from_ratio(1, 3)
        );
        assert_eq!(<f64 as LpScalar>::from_i64(-4), -4.0);
        assert_eq!(<Rational as LpScalar>::from_i64(-4), Rational::from_int(-4));
    }
}
