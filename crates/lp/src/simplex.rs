//! A dense two-phase primal simplex on the standard form
//! `min c·y  s.t.  A y = b,  y ≥ 0`.
//!
//! The solver keeps a full tableau (including the objective row) and pivots
//! with Bland's rule, which guarantees termination even on degenerate
//! problems at the cost of a few extra pivots — a good trade-off at the
//! problem sizes produced by the constraint layer.

use crate::scalar::LpScalar;

/// Result of a simplex run on a standard-form problem.
#[derive(Clone, Debug, PartialEq)]
pub enum SimplexOutcome<T> {
    /// An optimal basic feasible solution was found.
    Optimal {
        /// The optimal point `y` (length = number of standard-form variables).
        point: Vec<T>,
        /// The optimal objective value `c·y`.
        value: T,
    },
    /// The constraint system `A y = b, y ≥ 0` has no solution.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The pivot limit was exceeded (should not happen with Bland's rule; kept
    /// as a defensive outcome instead of looping forever on numerical noise).
    IterationLimit,
}

/// Dense tableau simplex solver.
#[derive(Debug)]
pub struct SimplexSolver<T> {
    /// `(m+1) × (n_total+1)` tableau; the last row is the objective row and
    /// the last column is the right-hand side.
    table: Vec<Vec<T>>,
    /// Index of the basic variable of each constraint row.
    basis: Vec<usize>,
    /// Number of structural (non-artificial) variables.
    n_struct: usize,
    /// Number of constraint rows.
    m: usize,
    /// Maximum number of pivots per phase.
    max_pivots: usize,
}

impl<T: LpScalar> SimplexSolver<T> {
    /// Solves `min c·y  s.t.  A y = b, y ≥ 0`.
    ///
    /// `a` is row-major with `m` rows of length `n`; `b` has length `m`; `c`
    /// has length `n`. Rows with negative right-hand sides are negated
    /// automatically.
    pub fn solve_standard(a: &[Vec<T>], b: &[T], c: &[T], max_pivots: usize) -> SimplexOutcome<T> {
        let m = a.len();
        let n = c.len();
        for row in a {
            assert_eq!(row.len(), n, "constraint row has wrong arity");
        }
        assert_eq!(b.len(), m, "rhs has wrong length");

        if m == 0 {
            // No constraints: optimum is 0 at the origin unless some cost is
            // negative, in which case the problem is unbounded below.
            if c.iter().any(|cj| cj.is_negative_tol()) {
                return SimplexOutcome::Unbounded;
            }
            return SimplexOutcome::Optimal {
                point: vec![T::zero(); n],
                value: T::zero(),
            };
        }

        // Build the phase-1 tableau with one artificial variable per row.
        let n_total = n + m;
        let mut table: Vec<Vec<T>> = Vec::with_capacity(m + 1);
        for i in 0..m {
            let mut row: Vec<T> = Vec::with_capacity(n_total + 1);
            let flip = b[i].is_negative_tol();
            for j in 0..n {
                let v = if flip { a[i][j].neg() } else { a[i][j].clone() };
                row.push(v);
            }
            for k in 0..m {
                row.push(if k == i { T::one() } else { T::zero() });
            }
            row.push(if flip { b[i].neg() } else { b[i].clone() });
            table.push(row);
        }
        // Phase-1 objective row: minimize the sum of artificials. With the
        // artificial basis, the reduced cost of column j is -sum_i a_ij and
        // the objective value is -sum_i b_i.
        let mut obj: Vec<T> = vec![T::zero(); n_total + 1];
        for j in 0..=n_total {
            let mut s = T::zero();
            for row in table.iter().take(m) {
                s = s.add(&row[j]);
            }
            obj[j] = s.neg();
        }
        // Artificial columns have cost 1, so their reduced cost is 1 - 1 = 0.
        for (k, slot) in obj.iter_mut().enumerate().take(n_total).skip(n) {
            let _ = k;
            *slot = T::zero();
        }
        table.push(obj);

        let mut solver = SimplexSolver {
            table,
            basis: (n..n_total).collect(),
            n_struct: n,
            m,
            max_pivots,
        };

        // Phase 1: allow every column to enter.
        match solver.run(n_total) {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded => return SimplexOutcome::Infeasible,
            PhaseEnd::IterationLimit => return SimplexOutcome::IterationLimit,
        }
        let phase1_value = solver.table[solver.m][n_total].neg();
        if phase1_value.is_positive_tol() {
            return SimplexOutcome::Infeasible;
        }
        solver.drive_out_artificials();

        // Phase 2: rebuild the objective row from the true costs and restrict
        // entering variables to the structural columns.
        for j in 0..=n_total {
            solver.table[solver.m][j] = if j < n { c[j].clone() } else { T::zero() };
        }
        for i in 0..solver.m {
            let bi = solver.basis[i];
            let cost = if bi < n { c[bi].clone() } else { T::zero() };
            if cost.is_zero_tol() {
                continue;
            }
            for j in 0..=n_total {
                let delta = cost.mul(&solver.table[i][j]);
                solver.table[solver.m][j] = solver.table[solver.m][j].sub(&delta);
            }
        }
        match solver.run(n) {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded => return SimplexOutcome::Unbounded,
            PhaseEnd::IterationLimit => return SimplexOutcome::IterationLimit,
        }

        // Extract the solution.
        let mut point = vec![T::zero(); n];
        for i in 0..solver.m {
            let bi = solver.basis[i];
            if bi < n {
                point[bi] = solver.table[i][n_total].clone();
            }
        }
        let mut value = T::zero();
        for j in 0..n {
            value = value.add(&c[j].mul(&point[j]));
        }
        SimplexOutcome::Optimal { point, value }
    }

    /// Runs simplex pivots until optimality, unboundedness or the pivot cap,
    /// allowing only the first `allowed_cols` columns to enter the basis.
    fn run(&mut self, allowed_cols: usize) -> PhaseEnd {
        let rhs = self.table[0].len() - 1;
        for _ in 0..self.max_pivots {
            // Bland's rule: smallest-index column with a negative reduced cost.
            let mut entering = None;
            for j in 0..allowed_cols {
                if self.table[self.m][j].is_negative_tol() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                return PhaseEnd::Optimal;
            };
            // Ratio test with Bland's tie-break on the basis index.
            let mut leaving: Option<(usize, T)> = None;
            for i in 0..self.m {
                if self.table[i][j].is_positive_tol() {
                    let ratio = self.table[i][rhs].div(&self.table[i][j]);
                    let better = match &leaving {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leaving = Some((i, ratio));
                    }
                }
            }
            let Some((i, _)) = leaving else {
                return PhaseEnd::Unbounded;
            };
            self.pivot(i, j);
        }
        PhaseEnd::IterationLimit
    }

    /// Pivots on `(row, col)`: normalizes the pivot row and eliminates the
    /// pivot column from every other row including the objective row.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.table[0].len();
        let pivot = self.table[row][col].clone();
        for j in 0..width {
            self.table[row][j] = self.table[row][j].div(&pivot);
        }
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.table[i][col].clone();
            if factor.is_zero_tol() {
                continue;
            }
            for j in 0..width {
                let delta = factor.mul(&self.table[row][j]);
                self.table[i][j] = self.table[i][j].sub(&delta);
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots artificial variables out of the basis wherever a
    /// structural column with a non-zero coefficient exists. Rows where no
    /// such column exists are redundant constraints; their artificial stays
    /// basic at value zero and is simply never allowed to re-enter.
    fn drive_out_artificials(&mut self) {
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..self.n_struct {
                if !self.table[i][j].is_zero_tol() {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(j) = pivot_col {
                self.pivot(i, j);
            }
        }
    }
}

/// Internal phase result.
enum PhaseEnd {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn simple_standard_form() {
        // min -x1 - 2 x2 s.t. x1 + x2 + s1 = 4, x1 + s2 = 3, x >= 0.
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![1.0, 0.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        match SimplexSolver::solve_standard(&a, &b, &c, 100) {
            SimplexOutcome::Optimal { point, value } => {
                assert!((value + 8.0).abs() < 1e-9);
                assert!((point[1] - 4.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x1 = 1 and x1 = 2 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        assert_eq!(
            SimplexSolver::solve_standard(&a, &b, &c, 100),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn detects_unbounded() {
        // min -x1 s.t. x1 - x2 = 0 (x1 can grow with x2).
        let a = vec![vec![1.0, -1.0]];
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(
            SimplexSolver::solve_standard(&a, &b, &c, 100),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn handles_negative_rhs() {
        // -x1 = -5  <=>  x1 = 5.
        let a = vec![vec![-1.0, 0.0]];
        let b = vec![-5.0];
        let c = vec![1.0, 0.0];
        match SimplexSolver::solve_standard(&a, &b, &c, 100) {
            SimplexOutcome::Optimal { point, value } => {
                assert!((point[0] - 5.0).abs() < 1e-9);
                assert!((value - 5.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // The same constraint twice.
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 0.0]];
        let b = vec![2.0, 2.0, 1.0];
        let c = vec![-1.0, -1.0];
        match SimplexSolver::solve_standard(&a, &b, &c, 100) {
            SimplexOutcome::Optimal { value, .. } => assert!((value + 2.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_rational_pivoting() {
        // min -x s.t. 3x + s = 1 -> x = 1/3 exactly.
        let a = vec![vec![r(3, 1), r(1, 1)]];
        let b = vec![r(1, 1)];
        let c = vec![r(-1, 1), r(0, 1)];
        match SimplexSolver::solve_standard(&a, &b, &c, 100) {
            SimplexOutcome::Optimal { point, value } => {
                assert_eq!(point[0], r(1, 3));
                assert_eq!(value, r(-1, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_constraints() {
        let outcome = SimplexSolver::solve_standard(&[], &[], &[1.0, 2.0], 10);
        assert!(matches!(outcome, SimplexOutcome::Optimal { .. }));
        let outcome = SimplexSolver::solve_standard(&[], &[], &[-1.0], 10);
        assert_eq!(outcome, SimplexOutcome::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate corner: multiple constraints active at the optimum.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![1.0, 1.0, 2.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0, 0.0];
        match SimplexSolver::solve_standard(&a, &b, &c, 1000) {
            SimplexOutcome::Optimal { value, .. } => assert!((value + 2.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }
}
