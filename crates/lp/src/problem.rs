//! User-facing LP problems over free (unrestricted-sign) variables.

use crate::scalar::LpScalar;
use crate::simplex::{SimplexOutcome, SimplexSolver};

/// Kind of a linear constraint in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConstraintKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
}

/// Outcome of solving an [`LpProblem`].
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome<T> {
    /// A maximizer was found.
    Optimal {
        /// The maximizing point (one coordinate per original variable).
        point: Vec<T>,
        /// The maximum objective value.
        value: T,
    },
    /// The constraints are inconsistent.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The solver hit its pivot cap.
    IterationLimit,
}

impl<T> LpOutcome<T> {
    /// Returns `true` when the constraints admit at least one point.
    pub fn is_feasible(&self) -> bool {
        matches!(self, LpOutcome::Optimal { .. } | LpOutcome::Unbounded)
    }
}

/// A linear program `maximize c·x  subject to  a_i·x ≤ b_i / a_i·x = b_i`
/// over *free* variables `x ∈ R^n`.
///
/// This is the natural shape for constraint database work: generalized tuples
/// are conjunctions of inequalities over unconstrained real variables. The
/// problem is converted internally to standard form (variable splitting plus
/// slack variables) and handed to the two-phase [`SimplexSolver`].
#[derive(Clone, Debug)]
pub struct LpProblem<T> {
    n_vars: usize,
    objective: Vec<T>,
    rows: Vec<(Vec<T>, T, ConstraintKind)>,
    max_pivots: usize,
}

impl<T: LpScalar> LpProblem<T> {
    /// Creates an empty problem over `n_vars` free variables with a zero
    /// objective (useful for pure feasibility questions).
    pub fn new(n_vars: usize) -> Self {
        LpProblem {
            n_vars,
            objective: vec![T::zero(); n_vars],
            rows: Vec::new(),
            max_pivots: 10_000,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the maximization objective `c`.
    pub fn set_objective(&mut self, c: Vec<T>) {
        assert_eq!(c.len(), self.n_vars, "objective arity mismatch");
        self.objective = c;
    }

    /// Overrides the pivot cap (defaults to 10 000 per phase).
    pub fn set_max_pivots(&mut self, cap: usize) {
        self.max_pivots = cap;
    }

    /// Adds the constraint `a·x ≤ b`.
    pub fn add_le(&mut self, a: Vec<T>, b: T) {
        assert_eq!(a.len(), self.n_vars, "constraint arity mismatch");
        self.rows.push((a, b, ConstraintKind::Le));
    }

    /// Adds the constraint `a·x ≥ b` (stored as `−a·x ≤ −b`).
    pub fn add_ge(&mut self, a: Vec<T>, b: T) {
        let neg: Vec<T> = a.iter().map(|v| v.neg()).collect();
        self.add_le(neg, b.neg());
    }

    /// Adds the constraint `a·x = b`.
    pub fn add_eq(&mut self, a: Vec<T>, b: T) {
        assert_eq!(a.len(), self.n_vars, "constraint arity mismatch");
        self.rows.push((a, b, ConstraintKind::Eq));
    }

    /// Solves the problem.
    pub fn solve(&self) -> LpOutcome<T> {
        let n = self.n_vars;
        let m = self.rows.len();
        let n_slack = self
            .rows
            .iter()
            .filter(|r| r.2 == ConstraintKind::Le)
            .count();
        let n_std = 2 * n + n_slack;

        let mut a_std: Vec<Vec<T>> = Vec::with_capacity(m);
        let mut b_std: Vec<T> = Vec::with_capacity(m);
        let mut slack_idx = 0;
        for (a, b, kind) in &self.rows {
            let mut row = Vec::with_capacity(n_std);
            for j in 0..n {
                row.push(a[j].clone());
            }
            for j in 0..n {
                row.push(a[j].neg());
            }
            for s in 0..n_slack {
                let v = if *kind == ConstraintKind::Le && s == slack_idx {
                    T::one()
                } else {
                    T::zero()
                };
                row.push(v);
            }
            if *kind == ConstraintKind::Le {
                slack_idx += 1;
            }
            a_std.push(row);
            b_std.push(b.clone());
        }

        // maximize c·x  ==  minimize −c·(x⁺ − x⁻).
        let mut c_std = Vec::with_capacity(n_std);
        for j in 0..n {
            c_std.push(self.objective[j].neg());
        }
        for j in 0..n {
            c_std.push(self.objective[j].clone());
        }
        for _ in 0..n_slack {
            c_std.push(T::zero());
        }

        match SimplexSolver::solve_standard(&a_std, &b_std, &c_std, self.max_pivots) {
            SimplexOutcome::Optimal { point, value } => {
                let mut x = Vec::with_capacity(n);
                for j in 0..n {
                    x.push(point[j].sub(&point[n + j]));
                }
                LpOutcome::Optimal {
                    point: x,
                    value: value.neg(),
                }
            }
            SimplexOutcome::Infeasible => LpOutcome::Infeasible,
            SimplexOutcome::Unbounded => LpOutcome::Unbounded,
            SimplexOutcome::IterationLimit => LpOutcome::IterationLimit,
        }
    }

    /// Returns any feasible point of the constraint system, ignoring the
    /// objective, or `None` when the system is empty.
    pub fn feasible_point(&self) -> Option<Vec<T>> {
        let mut probe = self.clone();
        probe.objective = vec![T::zero(); self.n_vars];
        match probe.solve() {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// Maximizes `c·x` over the current constraints without mutating the
    /// stored objective.
    pub fn maximize(&self, c: Vec<T>) -> LpOutcome<T> {
        let mut probe = self.clone();
        probe.set_objective(c);
        probe.solve()
    }

    /// Minimizes `c·x` over the current constraints.
    pub fn minimize(&self, c: Vec<T>) -> LpOutcome<T> {
        let neg: Vec<T> = c.iter().map(|v| v.neg()).collect();
        match self.maximize(neg) {
            LpOutcome::Optimal { point, value } => LpOutcome::Optimal {
                point,
                value: value.neg(),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rational;

    #[test]
    fn maximize_over_triangle() {
        // Triangle x >= 0, y >= 0, x + y <= 1; maximize x + 2y -> 2 at (0,1).
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 2.0]);
        lp.add_ge(vec![1.0, 0.0], 0.0);
        lp.add_ge(vec![0.0, 1.0], 0.0);
        lp.add_le(vec![1.0, 1.0], 1.0);
        match lp.solve() {
            LpOutcome::Optimal { point, value } => {
                assert!((value - 2.0).abs() < 1e-9);
                assert!(point[0].abs() < 1e-9 && (point[1] - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_variables_can_be_negative() {
        // maximize -x subject to x >= -3  -> optimum 3 at x = -3.
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![-1.0]);
        lp.add_ge(vec![1.0], -3.0);
        match lp.solve() {
            LpOutcome::Optimal { point, value } => {
                assert!((point[0] + 3.0).abs() < 1e-9);
                assert!((value - 3.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_system() {
        let mut lp = LpProblem::new(1);
        lp.add_le(vec![1.0], 0.0);
        lp.add_ge(vec![1.0], 1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
        assert!(lp.feasible_point().is_none());
        assert!(!lp.solve().is_feasible());
    }

    #[test]
    fn unbounded_objective() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 0.0]);
        lp.add_ge(vec![1.0, 0.0], 0.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
        assert!(lp.solve().is_feasible());
    }

    #[test]
    fn equality_constraints() {
        // maximize y s.t. x + y = 1, x >= 0, y <= 5 -> y = 1 at x = 0.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![0.0, 1.0]);
        lp.add_eq(vec![1.0, 1.0], 1.0);
        lp.add_ge(vec![1.0, 0.0], 0.0);
        lp.add_le(vec![0.0, 1.0], 5.0);
        match lp.solve() {
            LpOutcome::Optimal { point, value } => {
                assert!((value - 1.0).abs() < 1e-9);
                assert!((point[0] + point[1] - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn feasible_point_satisfies_constraints() {
        let mut lp = LpProblem::new(3);
        lp.add_le(vec![1.0, 1.0, 1.0], 1.0);
        lp.add_ge(vec![1.0, 0.0, 0.0], -2.0);
        lp.add_le(vec![0.0, 1.0, -1.0], 0.5);
        let p = lp.feasible_point().unwrap();
        assert!(p[0] + p[1] + p[2] <= 1.0 + 1e-9);
        assert!(p[0] >= -2.0 - 1e-9);
        assert!(p[1] - p[2] <= 0.5 + 1e-9);
    }

    #[test]
    fn minimize_and_maximize_helpers() {
        let mut lp = LpProblem::new(1);
        lp.add_le(vec![1.0], 4.0);
        lp.add_ge(vec![1.0], -1.0);
        match lp.maximize(vec![1.0]) {
            LpOutcome::Optimal { value, .. } => assert!((value - 4.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        match lp.minimize(vec![1.0]) {
            LpOutcome::Optimal { value, .. } => assert!((value + 1.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_rational_vertex() {
        // maximize x + y s.t. 2x + y <= 1, x + 3y <= 1, x,y >= 0.
        // Optimum at the intersection (2/5, 1/5) with value 3/5.
        let mut lp: LpProblem<Rational> = LpProblem::new(2);
        let r = Rational::from_ratio;
        lp.set_objective(vec![r(1, 1), r(1, 1)]);
        lp.add_le(vec![r(2, 1), r(1, 1)], r(1, 1));
        lp.add_le(vec![r(1, 1), r(3, 1)], r(1, 1));
        lp.add_ge(vec![r(1, 1), r(0, 1)], r(0, 1));
        lp.add_ge(vec![r(0, 1), r(1, 1)], r(0, 1));
        match lp.solve() {
            LpOutcome::Optimal { point, value } => {
                assert_eq!(point[0], r(2, 5));
                assert_eq!(point[1], r(1, 5));
                assert_eq!(value, r(3, 5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
