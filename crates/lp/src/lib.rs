//! Linear programming for the spatial constraint database workspace.
//!
//! The geometric layer needs linear programming for three jobs:
//!
//! * deciding whether a generalized tuple (a conjunction of linear
//!   constraints, i.e. an H-polyhedron) is empty,
//! * computing certificates of well-boundedness — the Chebyshev ball gives
//!   the inner radius `r_inf`, support optimization gives the outer radius
//!   `r_sup` required by Definition 2.2 of the paper, and
//! * pruning redundant constraints produced by Fourier–Motzkin elimination.
//!
//! The solver is a dense two-phase primal simplex with Bland's anti-cycling
//! rule, generic over the scalar type: [`f64`] for the samplers and
//! [`cdb_num::Rational`] when the constraint layer needs exact emptiness or
//! redundancy certificates.
//!
//! # Example
//!
//! ```
//! use cdb_lp::{LpProblem, LpOutcome};
//!
//! // maximize x + y  subject to  x <= 2, y <= 3, x + y <= 4, x,y free.
//! let mut lp = LpProblem::new(2);
//! lp.set_objective(vec![1.0, 1.0]);
//! lp.add_le(vec![1.0, 0.0], 2.0);
//! lp.add_le(vec![0.0, 1.0], 3.0);
//! lp.add_le(vec![1.0, 1.0], 4.0);
//! match lp.solve() {
//!     LpOutcome::Optimal { value, .. } => assert!((value - 4.0).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod scalar;
mod simplex;

pub use problem::{LpOutcome, LpProblem};
pub use scalar::LpScalar;
pub use simplex::{SimplexOutcome, SimplexSolver};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use cdb_num::Rational;

    #[test]
    fn exact_rational_lp() {
        // maximize x subject to 3x <= 1 has the exact optimum 1/3.
        let mut lp: LpProblem<Rational> = LpProblem::new(1);
        lp.set_objective(vec![Rational::from_int(1)]);
        lp.add_le(vec![Rational::from_int(3)], Rational::from_int(1));
        lp.add_le(vec![Rational::from_int(-1)], Rational::from_int(0)); // x >= 0
        match lp.solve() {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, Rational::from_ratio(1, 3));
                assert_eq!(point[0], Rational::from_ratio(1, 3));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
