//! Parsing and comparison of the `BENCH_*.json` report schemas.
//!
//! Two report families share the row shape gated by `bench_diff`:
//!
//! * `cdb-perf-report/v*` — single-query throughput rows written by
//!   `perf_report` (`steps_per_sec`, `samples_per_sec`);
//! * `cdb-load-report/v*` — traffic-shaped load rows written by
//!   `load_report` (`throughput_rps` plus the `p50_ms`/`p95_ms`/`p99_ms`/
//!   `max_ms` latency percentiles per query class).
//!
//! The parser is deliberately minimal (the workspace is offline — no serde):
//! it scans for the `"workload"` keys both reports write, and extracts the
//! sibling fields of each flat row object. Comparison is metric-directional:
//! throughput metrics regress when the candidate is *lower* than
//! `baseline · (1 − tolerance)`, latency percentiles when it is *higher*
//! than `baseline · (1 + tolerance)` **and** more than [`LATENCY_SLACK_MS`]
//! worse (sub-10ms tails jitter by whole multiples run to run). `max_ms` is
//! parsed and displayed but never gated — a single scheduler hiccup should
//! not fail CI.

/// One parsed report row. Perf rows fill the `steps/samples_per_sec`
/// columns, load rows the `requests/throughput/latency` columns; a row may
/// carry any subset and is compared only on the metrics both sides share.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Row {
    /// Row name (`"e1"`, `"load_sessions.sample"`, …) — the join key.
    pub workload: String,
    /// Ambient dimension, when the report records one.
    pub dim: Option<f64>,
    /// Kernel label of perf rows.
    pub kernel: Option<String>,
    /// Walk steps per second (perf rows).
    pub steps_per_sec: Option<f64>,
    /// End-to-end samples per second (perf rows).
    pub samples_per_sec: Option<f64>,
    /// Scheduled requests of a load row.
    pub requests: Option<f64>,
    /// Requests that resolved to a payload or typed error (load rows).
    pub completed: Option<f64>,
    /// Resolved requests that returned a typed error (load rows).
    pub errors: Option<f64>,
    /// Requests lost to contained worker panics (load rows).
    pub lost: Option<f64>,
    /// Completed requests per second of wall clock (load rows).
    pub throughput_rps: Option<f64>,
    /// Median latency in milliseconds (load rows).
    pub p50_ms: Option<f64>,
    /// 95th-percentile latency in milliseconds (load rows).
    pub p95_ms: Option<f64>,
    /// 99th-percentile latency in milliseconds (load rows).
    pub p99_ms: Option<f64>,
    /// Worst observed latency in milliseconds (load rows; never gated).
    pub max_ms: Option<f64>,
}

/// Extracts the string value following `"field":` inside `object`.
pub fn string_field(object: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let rest = after.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value following `"field":` inside `object`.
pub fn number_field(object: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parses every `{... "workload": ...}` object of a report.
pub fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"workload\"") {
        // The row object spans from the `{` before the key to the next `}`
        // (row objects are flat — both report writers emit one per line).
        let open = rest[..pos]
            .rfind('{')
            .ok_or("malformed report: workload key outside an object")?;
        let close = rest[pos..]
            .find('}')
            .ok_or("malformed report: unterminated row object")?
            + pos;
        let object = &rest[open..close];
        rows.push(Row {
            workload: string_field(object, "workload")
                .ok_or("malformed report: unreadable workload name")?,
            dim: number_field(object, "dim"),
            kernel: string_field(object, "kernel"),
            steps_per_sec: number_field(object, "steps_per_sec"),
            samples_per_sec: number_field(object, "samples_per_sec"),
            requests: number_field(object, "requests"),
            completed: number_field(object, "completed"),
            errors: number_field(object, "errors"),
            lost: number_field(object, "lost"),
            throughput_rps: number_field(object, "throughput_rps"),
            p50_ms: number_field(object, "p50_ms"),
            p95_ms: number_field(object, "p95_ms"),
            p99_ms: number_field(object, "p99_ms"),
            max_ms: number_field(object, "max_ms"),
        });
        rest = &rest[close..];
    }
    if rows.is_empty() {
        return Err("no workload rows found (is this a cdb report file?)".into());
    }
    Ok(rows)
}

/// Parses a full report file's text: requires one of the two schema markers,
/// then delegates to [`parse_rows`].
pub fn parse_report(text: &str) -> Result<Vec<Row>, String> {
    if !text.contains("cdb-perf-report/") && !text.contains("cdb-load-report/") {
        return Err("missing the cdb-perf-report/cdb-load-report schema marker".into());
    }
    parse_rows(text)
}

/// Reads and parses a report file.
pub fn load(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report(&text).map_err(|e| format!("{path}: {e}"))
}

/// Finds the row named `name`.
pub fn find<'a>(rows: &'a [Row], name: &str) -> Option<&'a Row> {
    rows.iter().find(|r| r.workload == name)
}

/// Which direction of change counts as a regression for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a candidate *below* `base · (1 − tol)` regresses.
    HigherIsBetter,
    /// Latency-like: a candidate *above* `base · (1 + tol)` regresses.
    LowerIsBetter,
}

/// The gated metrics, with their regression direction. `max_ms` is absent by
/// design: the worst single request is too noisy to gate.
pub const GATED_METRICS: [(&str, Direction); 5] = [
    ("samples_per_sec", Direction::HigherIsBetter),
    ("throughput_rps", Direction::HigherIsBetter),
    ("p50_ms", Direction::LowerIsBetter),
    ("p95_ms", Direction::LowerIsBetter),
    ("p99_ms", Direction::LowerIsBetter),
];

fn metric(row: &Row, name: &str) -> Option<f64> {
    match name {
        "samples_per_sec" => row.samples_per_sec,
        "throughput_rps" => row.throughput_rps,
        "p50_ms" => row.p50_ms,
        "p95_ms" => row.p95_ms,
        "p99_ms" => row.p99_ms,
        _ => None,
    }
}

/// One compared metric of a shared row.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name (one of [`GATED_METRICS`]).
    pub metric: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// Relative change `cand/base − 1` (0 when the baseline is 0).
    pub delta: f64,
    /// Whether the change regresses beyond the tolerance, in the metric's
    /// direction.
    pub regressed: bool,
}

/// Absolute slack for latency-percentile gates, in milliseconds. At modest
/// request counts a p99 is the handful of worst requests, and sub-10ms
/// percentiles jitter by whole multiples run to run (one scheduler hiccup
/// lands on a different request each time), so a purely relative tolerance
/// flakes. A latency metric regresses only when it is beyond the relative
/// tolerance *and* more than this many milliseconds worse — the gate exists
/// to catch real stalls, not timer noise.
pub const LATENCY_SLACK_MS: f64 = 10.0;

/// Compares two rows metric by metric: every gated metric present on *both*
/// sides yields a [`MetricDelta`]. A perf row gates on `samples_per_sec`, a
/// load row on `throughput_rps` + latency percentiles — the row shape itself
/// selects the arms. Latency percentiles additionally get
/// [`LATENCY_SLACK_MS`] of absolute slack before they count as regressed.
pub fn compare_row(base: &Row, cand: &Row, tolerance: f64) -> Vec<MetricDelta> {
    let mut deltas = Vec::new();
    for (name, direction) in GATED_METRICS {
        let (Some(b), Some(c)) = (metric(base, name), metric(cand, name)) else {
            continue;
        };
        let delta = if b > 0.0 { c / b - 1.0 } else { 0.0 };
        let regressed = match direction {
            Direction::HigherIsBetter => delta < -tolerance,
            Direction::LowerIsBetter => delta > tolerance && c - b > LATENCY_SLACK_MS,
        };
        deltas.push(MetricDelta {
            metric: name,
            base: b,
            cand: c,
            delta,
            regressed,
        });
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERF_SAMPLE: &str = r#"{
  "schema": "cdb-perf-report/v2",
  "workloads": [
    {"workload": "e1", "dim": 6, "kernel": "axis", "steps_per_sec": 700, "samples_per_sec": 150.5},
    {"workload": "e7_cold", "dim": 3, "kernel": "mixed", "steps_per_sec": 31e6, "samples_per_sec": 133.5}
  ]
}"#;

    const LOAD_SAMPLE: &str = r#"{
  "schema": "cdb-load-report/v1",
  "workloads": [
    {"workload": "load_sessions.sample", "requests": 500, "completed": 498, "errors": 3, "lost": 2, "throughput_rps": 1200.5, "p50_ms": 0.8, "p95_ms": 2.5, "p99_ms": 4.0, "max_ms": 9.1},
    {"workload": "load_sessions.volume", "requests": 200, "throughput_rps": 310.0, "p50_ms": 3.1, "p95_ms": 8.0, "p99_ms": 12.5, "max_ms": 20.0}
  ]
}"#;

    #[test]
    fn rows_parse_with_names_and_numbers() {
        let rows = parse_rows(PERF_SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "e1");
        assert_eq!(rows[0].samples_per_sec, Some(150.5));
        assert_eq!(rows[0].kernel.as_deref(), Some("axis"));
        assert_eq!(rows[1].steps_per_sec, Some(31e6));
        assert_eq!(rows[1].dim, Some(3.0));
        // Perf rows carry no load metrics.
        assert_eq!(rows[0].p95_ms, None);
        assert_eq!(rows[0].throughput_rps, None);
    }

    #[test]
    fn load_rows_parse_latency_percentiles() {
        let rows = parse_rows(LOAD_SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "load_sessions.sample");
        assert_eq!(rows[0].requests, Some(500.0));
        assert_eq!(rows[0].completed, Some(498.0));
        assert_eq!(rows[0].errors, Some(3.0));
        assert_eq!(rows[0].lost, Some(2.0));
        assert_eq!(rows[0].throughput_rps, Some(1200.5));
        // A row without the accounting fields parses with them absent.
        assert_eq!(rows[1].completed, None);
        assert_eq!(rows[1].errors, None);
        assert_eq!(rows[1].lost, None);
        assert_eq!(rows[0].p50_ms, Some(0.8));
        assert_eq!(rows[0].p95_ms, Some(2.5));
        assert_eq!(rows[0].p99_ms, Some(4.0));
        assert_eq!(rows[0].max_ms, Some(9.1));
        // Load rows carry no perf metrics.
        assert_eq!(rows[0].samples_per_sec, None);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("\"workload\": \"loose\"").is_err());
    }

    #[test]
    fn both_schema_markers_are_accepted_and_others_rejected() {
        assert!(parse_report(PERF_SAMPLE).is_ok());
        assert!(parse_report(LOAD_SAMPLE).is_ok());
        let unmarked = LOAD_SAMPLE.replace("cdb-load-report/v1", "mystery/v9");
        assert!(parse_report(&unmarked).is_err());
    }

    #[test]
    fn latency_metrics_regress_upward_and_throughput_downward() {
        let rows = parse_rows(LOAD_SAMPLE).unwrap();
        let base = &rows[0];
        let mut worse = base.clone();
        worse.p95_ms = Some(2.5 + 15.0); // +600% and beyond the absolute slack
        worse.p50_ms = Some(0.8 * 1.30); // +30% but sub-slack jitter: fine
        worse.throughput_rps = Some(1200.5 * 1.30); // +30% throughput: fine
        let deltas = compare_row(base, &worse, 0.15);
        let by_name = |n: &str| deltas.iter().find(|d| d.metric == n).unwrap();
        assert!(by_name("p95_ms").regressed);
        assert!(!by_name("throughput_rps").regressed);
        assert!(!by_name("p50_ms").regressed);

        // A big relative spike that stays within LATENCY_SLACK_MS absolute
        // is timer noise, not a regression.
        let mut jitter = base.clone();
        jitter.p99_ms = Some(4.0 + LATENCY_SLACK_MS - 0.5);
        let deltas = compare_row(base, &jitter, 0.15);
        assert!(
            !deltas
                .iter()
                .find(|d| d.metric == "p99_ms")
                .unwrap()
                .regressed
        );

        let mut slower = base.clone();
        slower.throughput_rps = Some(1200.5 * 0.70); // −30% throughput
        slower.p99_ms = Some(4.0 * 0.70); // −30% latency: improvement
        let deltas = compare_row(base, &slower, 0.15);
        let by_name = |n: &str| deltas.iter().find(|d| d.metric == n).unwrap();
        assert!(by_name("throughput_rps").regressed);
        assert!(!by_name("p99_ms").regressed);
    }

    #[test]
    fn comparison_only_covers_metrics_present_on_both_sides() {
        let perf = &parse_rows(PERF_SAMPLE).unwrap()[0];
        let load = &parse_rows(LOAD_SAMPLE).unwrap()[0];
        // Disjoint metric sets: nothing to compare, nothing to regress.
        assert!(compare_row(perf, load, 0.15).is_empty());
        // max_ms is never gated even when present on both sides.
        let metrics: Vec<&str> = compare_row(load, load, 0.15)
            .iter()
            .map(|d| d.metric)
            .collect();
        assert!(!metrics.contains(&"max_ms"));
        assert_eq!(metrics.len(), 4);
    }

    #[test]
    fn zero_baseline_never_divides_or_regresses() {
        let mut base = parse_rows(LOAD_SAMPLE).unwrap()[0].clone();
        base.throughput_rps = Some(0.0);
        let cand = parse_rows(LOAD_SAMPLE).unwrap()[0].clone();
        let deltas = compare_row(&base, &cand, 0.15);
        let tp = deltas
            .iter()
            .find(|d| d.metric == "throughput_rps")
            .unwrap();
        assert_eq!(tp.delta, 0.0);
        assert!(!tp.regressed);
    }
}
