//! Shared helpers for the experiment benchmarks (see EXPERIMENTS.md).
//!
//! Every bench target regenerates one experiment of the paper reproduction:
//! it reports the measured quantities (volumes, acceptance rates, errors) on
//! stderr once, and benchmarks the wall-clock cost of the relevant pipeline
//! with Criterion.

use criterion::Criterion;

pub mod load;
pub mod report;

/// Criterion configuration shared by all experiment benches: small sample
/// counts and short measurement windows, because a single iteration already
/// aggregates many random-walk steps.
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

/// Deterministic RNG used by every experiment.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
