//! Open-loop traffic-shaped load harness over [`SpatialDatabase`].
//!
//! The harness separates *what* traffic arrives from *how fast* the engine
//! serves it:
//!
//! 1. [`schedule`] turns a [`LoadSpec`] into a fixed request schedule —
//!    Poisson interarrivals (exponential gaps drawn from a dedicated
//!    [`SeedSequence`] stream) plus a per-request query class and target
//!    relation. The schedule is a pure function of the seed: it never
//!    observes service times, so a stall in the engine cannot slow down the
//!    arrival process and hide itself (no coordinated omission).
//! 2. [`run`] replays the schedule from N client threads over the timed
//!    batch fan-out: each worker sleeps until a request's scheduled arrival,
//!    issues it through the budgeted entry points, and the latency recorded
//!    is *completion − scheduled arrival* — queue wait included.
//!
//! **Determinism contract.** Request `i` draws its query randomness from
//! [`SeedSequence::item_stream`]`(i)`, so the *results* (points, estimates,
//! reconstruction digests, typed errors) are bitwise identical for any
//! client-thread count; only the timings vary. `tests/determinism.rs` pins
//! this. Budgets use only deterministic counters unless a caller arms a
//! deadline, so a tripped budget is the same typed
//! [`SpatialDbError::BudgetExhausted`] on every run of a seed.
//!
//! [`class_stats`] folds a run into per-query-class percentile rows and
//! [`render_report`] emits them in the `cdb-load-report/v1` schema that
//! `bench_diff` gates (see [`crate::report`]).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::Rng;

use cdb_constraint::{parse_formula, Formula};
use cdb_core::{SpatialDatabase, SpatialDbError};
use cdb_sampler::batch::fan_out_contained_timed;
use cdb_sampler::{BudgetTrip, QueryBudget, SeedSequence, WorkerPanic};
use cdb_workloads::sessions::SessionMix;

/// The query classes a session mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    /// Draw one almost-uniform point (`approx_generate_budgeted`).
    Sample,
    /// Estimate the relation's volume (`approx_volume_budgeted`).
    Volume,
    /// Reconstruct a projection of the relation (`approx_query`).
    Reconstruction,
}

impl QueryClass {
    /// All classes, in report order.
    pub const ALL: [QueryClass; 3] = [
        QueryClass::Sample,
        QueryClass::Volume,
        QueryClass::Reconstruction,
    ];

    /// Stable lowercase label used in report row names.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Sample => "sample",
            QueryClass::Volume => "volume",
            QueryClass::Reconstruction => "reconstruction",
        }
    }
}

/// One scheduled request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Position in the schedule (and the item-stream index funding it).
    pub index: usize,
    /// Scheduled arrival offset from the run epoch, in seconds. Kept as the
    /// raw `f64` so `tests/determinism.rs` can pin its bit pattern.
    pub arrival_secs: f64,
    /// The query class.
    pub class: QueryClass,
    /// Name of the target relation.
    pub relation: String,
}

impl Request {
    /// Scheduled arrival as a [`Duration`].
    pub fn arrival(&self) -> Duration {
        Duration::from_secs_f64(self.arrival_secs)
    }
}

/// Parameters of a load run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Number of requests to schedule.
    pub requests: usize,
    /// Mean arrival rate (requests per second of the Poisson process).
    pub rate: f64,
    /// Client threads (`0` = one per core).
    pub threads: usize,
    /// Root seed of the schedule and of every request's query randomness.
    pub seed: u64,
    /// Read/volume/reconstruction blend.
    pub mix: SessionMix,
    /// Budget applied to every sample/volume request. `approx_query` has no
    /// budgeted variant yet, so reconstruction requests run unbudgeted —
    /// keep their weight low in mixes that include pathological relations.
    pub budget: QueryBudget,
    /// Per-relation budget overrides (e.g. a starved budget on one name),
    /// taking precedence over `budget`.
    pub budget_overrides: BTreeMap<String, QueryBudget>,
}

impl LoadSpec {
    /// A spec with auto threads and unlimited budgets.
    pub fn new(requests: usize, rate: f64, seed: u64, mix: SessionMix) -> Self {
        LoadSpec {
            requests,
            rate,
            threads: 0,
            seed,
            mix,
            budget: QueryBudget::unlimited(),
            budget_overrides: BTreeMap::new(),
        }
    }

    /// Sets the client-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-request budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the budget for requests targeting `relation`.
    pub fn with_budget_override(mut self, relation: &str, budget: QueryBudget) -> Self {
        self.budget_overrides.insert(relation.to_string(), budget);
        self
    }
}

/// A fixed request schedule (see the module docs for the open-loop design).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// The requests, in arrival order (arrivals are nondecreasing).
    pub requests: Vec<Request>,
}

impl Schedule {
    /// Scheduled request count per class, in [`QueryClass::ALL`] order.
    pub fn class_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for r in &self.requests {
            counts[QueryClass::ALL.iter().position(|c| *c == r.class).unwrap()] += 1;
        }
        counts
    }
}

/// Builds the deterministic request schedule for `spec` over the given
/// relation names.
///
/// Interarrival gaps are exponential with mean `1/rate` (`−ln(1−u)/rate`
/// from a uniform stream), making arrivals a Poisson process; class and
/// relation picks come from a second dedicated stream. Both streams live
/// under [`SeedSequence::setup_stream`], so they can never collide with the
/// per-request [`SeedSequence::item_stream`] randomness used at run time.
pub fn schedule(spec: &LoadSpec, relations: &[String]) -> Schedule {
    assert!(!relations.is_empty(), "a schedule needs target relations");
    let total = spec.mix.total();
    assert!(spec.rate > 0.0, "arrival rate must be positive");
    let seq = SeedSequence::new(spec.seed);
    let mut arrivals = seq.setup_stream().child(0).rng();
    let mut picks = seq.setup_stream().child(1).rng();
    let mut t = 0.0f64;
    let mut requests = Vec::with_capacity(spec.requests);
    for index in 0..spec.requests {
        let u: f64 = arrivals.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / spec.rate;
        let w: f64 = picks.gen_range(0.0..total);
        let class = if w < spec.mix.sample {
            QueryClass::Sample
        } else if w < spec.mix.sample + spec.mix.volume {
            QueryClass::Volume
        } else {
            QueryClass::Reconstruction
        };
        let relation = relations[picks.gen_range(0..relations.len())].clone();
        requests.push(Request {
            index,
            arrival_secs: t,
            class,
            relation,
        });
    }
    Schedule { requests }
}

/// A successful query result, reduced to a comparable payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A sampled point.
    Point(Vec<f64>),
    /// A volume estimate.
    Estimate(f64),
    /// A reconstructed relation: tuple count plus a digest of its exact
    /// constraint representation.
    Relation {
        /// Number of generalized tuples in the reconstruction.
        tuples: usize,
        /// FNV-1a digest of the relation's rendered form.
        digest: u64,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl Payload {
    /// A 64-bit fingerprint of the payload's exact bit patterns (f64s enter
    /// via `to_bits`, so two payloads fingerprint equal iff they are bitwise
    /// identical).
    pub fn bits(&self) -> u64 {
        let mut h = FNV_OFFSET;
        match self {
            Payload::Point(xs) => {
                fnv(&mut h, b"point");
                for x in xs {
                    fnv(&mut h, &x.to_bits().to_le_bytes());
                }
            }
            Payload::Estimate(v) => {
                fnv(&mut h, b"estimate");
                fnv(&mut h, &v.to_bits().to_le_bytes());
            }
            Payload::Relation { tuples, digest } => {
                fnv(&mut h, b"relation");
                fnv(&mut h, &(*tuples as u64).to_le_bytes());
                fnv(&mut h, &digest.to_le_bytes());
            }
        }
        h
    }
}

/// A typed, comparable rendering of [`SpatialDbError`] for load outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The per-request budget tripped ([`SpatialDbError::BudgetExhausted`]).
    Budget(BudgetTrip),
    /// A genuine statistical generation failure.
    GenerationFailed,
    /// The target relation does not exist.
    UnknownRelation,
    /// The target relation is not observable.
    NotObservable,
    /// The reconstruction estimator failed.
    Reconstruction,
    /// Any other engine error, rendered.
    Other(String),
}

impl From<&SpatialDbError> for LoadError {
    fn from(err: &SpatialDbError) -> Self {
        match err {
            SpatialDbError::BudgetExhausted { cause, .. } => LoadError::Budget(*cause),
            SpatialDbError::GenerationFailed { .. } => LoadError::GenerationFailed,
            SpatialDbError::UnknownRelation(_) => LoadError::UnknownRelation,
            SpatialDbError::NotObservable { .. } => LoadError::NotObservable,
            SpatialDbError::Reconstruction(_) => LoadError::Reconstruction,
            other => LoadError::Other(other.to_string()),
        }
    }
}

/// The resolution of one request: its payload or typed error, plus the
/// open-loop latency (completion − *scheduled* arrival, queue wait
/// included).
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The query class of the request.
    pub class: QueryClass,
    /// The target relation.
    pub relation: String,
    /// The result — a payload or a typed error; both count as *resolved*.
    pub result: Result<Payload, LoadError>,
    /// Completion − scheduled arrival.
    pub latency: Duration,
}

/// The outcome of a load run.
#[derive(Debug)]
pub struct RunReport {
    /// Slot `i` resolves request `i`; `None` when a contained worker panic
    /// killed the request before it resolved.
    pub outcomes: Vec<Option<Outcome>>,
    /// Worker panics contained during the run.
    pub panics: Vec<WorkerPanic>,
    /// Wall-clock span of the whole run.
    pub wall: Duration,
}

impl RunReport {
    /// Number of requests lost to contained worker panics.
    pub fn lost(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_none()).count()
    }

    /// Per-request result fingerprints with all timing information
    /// excluded — the value `tests/determinism.rs` compares across client
    /// thread counts.
    pub fn result_bits(&self) -> Vec<Option<u64>> {
        self.outcomes
            .iter()
            .map(|slot| {
                slot.as_ref().map(|o| {
                    let mut h = FNV_OFFSET;
                    fnv(&mut h, o.class.label().as_bytes());
                    fnv(&mut h, o.relation.as_bytes());
                    match &o.result {
                        Ok(payload) => fnv(&mut h, &payload.bits().to_le_bytes()),
                        Err(err) => fnv(&mut h, format!("{err:?}").as_bytes()),
                    }
                    h
                })
            })
            .collect()
    }
}

/// Where the harness sends its traffic.
///
/// Both transports follow one seed discipline — request `i` is funded by
/// `SeedSequence::new(spec.seed).item_stream(i)` (sent over the wire as
/// `"seed"`/`"stream"` for HTTP) — so, given the same schedule, their
/// [`RunReport::result_bits`] are **bitwise identical**: the report schema
/// is transport-agnostic. The one caveat is budgets: only the
/// deterministic counters (`max_steps`, `max_attempts`) cross the wire; an
/// armed deadline or cancellation token is a process-local handle and is
/// dropped by the HTTP transport.
pub enum Transport<'a> {
    /// Direct calls into an in-process [`SpatialDatabase`].
    InProcess(&'a SpatialDatabase),
    /// HTTP/JSON requests against a `cdb-server` instance (usually
    /// loopback), one keep-alive connection per client thread.
    Http(std::net::SocketAddr),
}

/// Replays `schedule` against `db` from `spec.threads` client threads —
/// [`run_over`] with [`Transport::InProcess`].
pub fn run(db: &SpatialDatabase, spec: &LoadSpec, schedule: &Schedule) -> RunReport {
    run_over(&Transport::InProcess(db), spec, schedule)
}

/// The reconstruction query each scheduled reconstruction issues: project
/// the binary relation onto its first coordinate (`∃x₁. R(x₀, x₁)`).
/// Scheduling a reconstruction against a relation that is not binary is a
/// caller error and panics at parse/evaluation time.
fn reconstruction_text(relation: &str) -> String {
    format!("exists x1. {relation}(x0, x1)")
}

/// Sleeps until request `i`'s scheduled arrival (open-loop pacing).
fn pace(schedule: &Schedule, i: usize, epoch: Instant) {
    let arrival = schedule.requests[i].arrival();
    let now = epoch.elapsed();
    if now < arrival {
        std::thread::sleep(arrival - now);
    }
}

/// Replays `schedule` over the given [`Transport`] from `spec.threads`
/// client threads.
pub fn run_over(transport: &Transport<'_>, spec: &LoadSpec, schedule: &Schedule) -> RunReport {
    let n = schedule.requests.len();
    let seq = SeedSequence::new(spec.seed);
    let epoch = Instant::now();
    let fan_out = match transport {
        Transport::InProcess(db) => {
            let mut queries: BTreeMap<String, Formula> = BTreeMap::new();
            for req in &schedule.requests {
                if req.class == QueryClass::Reconstruction && !queries.contains_key(&req.relation) {
                    let text = reconstruction_text(&req.relation);
                    let formula = parse_formula(&text, 2).unwrap_or_else(|e| {
                        panic!("reconstruction query {text:?} does not parse: {e:?}")
                    });
                    queries.insert(req.relation.clone(), formula);
                }
            }
            fan_out_contained_timed(
                n,
                spec.threads,
                epoch,
                || (),
                |_, i| {
                    pace(schedule, i, epoch);
                    let req = &schedule.requests[i];
                    let budget = spec
                        .budget_overrides
                        .get(&req.relation)
                        .unwrap_or(&spec.budget);
                    let mut rng = seq.item_stream(i).rng();
                    match req.class {
                        QueryClass::Sample => db
                            .approx_generate_budgeted(&req.relation, budget, &mut rng)
                            .map(Payload::Point)
                            .map_err(|e| LoadError::from(&e)),
                        QueryClass::Volume => db
                            .approx_volume_budgeted(&req.relation, budget, &mut rng)
                            .map(Payload::Estimate)
                            .map_err(|e| LoadError::from(&e)),
                        QueryClass::Reconstruction => db
                            .approx_query(&queries[&req.relation], 1, &mut rng)
                            .map(|rel| {
                                let mut digest = FNV_OFFSET;
                                fnv(&mut digest, format!("{rel:?}").as_bytes());
                                Payload::Relation {
                                    tuples: rel.tuples().len(),
                                    digest,
                                }
                            })
                            .map_err(|e| LoadError::from(&e)),
                    }
                },
            )
        }
        Transport::Http(addr) => {
            let addr = *addr;
            fan_out_contained_timed(
                n,
                spec.threads,
                epoch,
                move || cdb_server::client::Client::new(addr),
                |client, i| {
                    pace(schedule, i, epoch);
                    http_request(client, spec, &schedule.requests[i], i)
                },
            )
        }
    };
    let wall = epoch.elapsed();
    let outcomes = fan_out
        .slots
        .into_iter()
        .zip(&schedule.requests)
        .map(|(slot, req)| {
            slot.map(|timed| Outcome {
                class: req.class,
                relation: req.relation.clone(),
                result: timed.value,
                latency: timed.finished.saturating_sub(req.arrival()),
            })
        })
        .collect();
    RunReport {
        outcomes,
        panics: fan_out.panics,
        wall,
    }
}

/// Issues scheduled request `i` over HTTP and decodes the response into
/// the same [`Payload`] / [`LoadError`] values the in-process transport
/// produces (see [`Transport`] for the parity contract).
fn http_request(
    client: &mut cdb_server::client::Client,
    spec: &LoadSpec,
    req: &Request,
    i: usize,
) -> Result<Payload, LoadError> {
    use cdb_server::json::Json;

    let budget = spec
        .budget_overrides
        .get(&req.relation)
        .unwrap_or(&spec.budget);
    let mut fields = vec![
        ("seed".to_string(), Json::u64_str(spec.seed)),
        ("stream".to_string(), Json::count(i)),
    ];
    // Only the deterministic counters cross the wire; a deadline or cancel
    // token is process-local and silently dropped here.
    let mut budget_fields = Vec::new();
    if let Some(steps) = budget.max_steps {
        budget_fields.push(("max_steps".to_string(), Json::u64_str(steps)));
    }
    if let Some(attempts) = budget.max_attempts {
        budget_fields.push(("max_attempts".to_string(), Json::u64_str(attempts)));
    }
    let path = match req.class {
        QueryClass::Sample | QueryClass::Volume => {
            fields.push(("relation".to_string(), Json::str(req.relation.clone())));
            if !budget_fields.is_empty() {
                fields.push(("budget".to_string(), Json::Object(budget_fields)));
            }
            if req.class == QueryClass::Sample {
                "/v1/sample"
            } else {
                "/v1/volume"
            }
        }
        QueryClass::Reconstruction => {
            fields.push((
                "query".to_string(),
                Json::str(reconstruction_text(&req.relation)),
            ));
            fields.push(("arity".to_string(), Json::count(2)));
            fields.push(("output_arity".to_string(), Json::count(1)));
            "/v1/reconstruct"
        }
    };
    let body = Json::Object(fields);
    let (status, response) = client
        .request_json("POST", path, Some(&body))
        .map_err(|e| LoadError::Other(format!("transport: {e}")))?;
    if status != 200 {
        return Err(decode_http_error(status, &response));
    }
    match req.class {
        QueryClass::Sample => {
            let point = response
                .get("point")
                .and_then(Json::as_array)
                .ok_or_else(|| LoadError::Other("sample response without a point".into()))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| LoadError::Other("non-numeric coordinate".into()))
                })
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Payload::Point(point))
        }
        QueryClass::Volume => response
            .get("volume")
            .and_then(Json::as_f64)
            .map(Payload::Estimate)
            .ok_or_else(|| LoadError::Other("volume response without an estimate".into())),
        QueryClass::Reconstruction => {
            let tuples = response.get("tuples").and_then(Json::as_usize);
            let digest = response.get("digest").and_then(Json::as_u64);
            match (tuples, digest) {
                (Some(tuples), Some(digest)) => Ok(Payload::Relation { tuples, digest }),
                _ => Err(LoadError::Other(
                    "reconstruct response without tuples/digest".into(),
                )),
            }
        }
    }
}

/// Maps a `cdb-server` error envelope back onto the [`LoadError`] the
/// in-process transport would have produced for the same engine failure.
fn decode_http_error(status: u16, response: &cdb_server::json::Json) -> LoadError {
    let error = response.get("error");
    let code = error
        .and_then(|e| e.get("code"))
        .and_then(cdb_server::json::Json::as_str)
        .unwrap_or("");
    match (status, code) {
        (429, _) => {
            let cause = error
                .and_then(|e| e.get("cause"))
                .and_then(cdb_server::json::Json::as_str)
                .unwrap_or("");
            match cause {
                "steps" => LoadError::Budget(BudgetTrip::Steps),
                "attempts" => LoadError::Budget(BudgetTrip::Attempts),
                "deadline" => LoadError::Budget(BudgetTrip::Deadline),
                "cancelled" => LoadError::Budget(BudgetTrip::Cancelled),
                other => LoadError::Other(format!("budget exhausted, unknown cause {other:?}")),
            }
        }
        (_, "generation_failed") => LoadError::GenerationFailed,
        (_, "unknown_relation") => LoadError::UnknownRelation,
        (_, "not_observable") => LoadError::NotObservable,
        (_, "not_estimable") => LoadError::Reconstruction,
        _ => LoadError::Other(format!("http {status} {code}")),
    }
}

/// Per-query-class latency and throughput statistics of a run.
#[derive(Clone, Debug)]
pub struct ClassStats {
    /// The query class.
    pub class: QueryClass,
    /// Requests of this class in the schedule.
    pub scheduled: usize,
    /// Requests that resolved (payload or typed error).
    pub completed: usize,
    /// Resolved requests that returned a typed error.
    pub errors: usize,
    /// Requests lost to contained worker panics.
    pub lost: usize,
    /// Completed requests per second of run wall clock.
    pub throughput_rps: f64,
    /// Median open-loop latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
}

/// The `q`-quantile (0 < q ≤ 1) of a sorted latency list, by the
/// nearest-rank method; 0 for an empty list.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Folds a run into one [`ClassStats`] per query class present in the
/// schedule (classes with zero scheduled requests are omitted).
pub fn class_stats(schedule: &Schedule, report: &RunReport) -> Vec<ClassStats> {
    QueryClass::ALL
        .iter()
        .filter_map(|&class| {
            let scheduled = schedule
                .requests
                .iter()
                .filter(|r| r.class == class)
                .count();
            if scheduled == 0 {
                return None;
            }
            let mut latencies: Vec<Duration> = Vec::new();
            let mut errors = 0usize;
            let mut lost = 0usize;
            for (slot, req) in report.outcomes.iter().zip(&schedule.requests) {
                if req.class != class {
                    continue;
                }
                match slot {
                    Some(outcome) => {
                        latencies.push(outcome.latency);
                        if outcome.result.is_err() {
                            errors += 1;
                        }
                    }
                    None => lost += 1,
                }
            }
            latencies.sort();
            let wall = report.wall.as_secs_f64().max(1e-9);
            Some(ClassStats {
                class,
                scheduled,
                completed: latencies.len(),
                errors,
                lost,
                throughput_rps: latencies.len() as f64 / wall,
                p50_ms: percentile_ms(&latencies, 0.50),
                p95_ms: percentile_ms(&latencies, 0.95),
                p99_ms: percentile_ms(&latencies, 0.99),
                max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
            })
        })
        .collect()
}

/// Renders named class rows as a `cdb-load-report/v1` JSON document — the
/// schema `bench_diff` parses and gates (see [`crate::report`]).
pub fn render_report(rows: &[(String, ClassStats)], quick: bool) -> String {
    let mut json = String::from("{\n  \"schema\": \"cdb-load-report/v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, (name, s)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{name}\", \"requests\": {}, \"completed\": {}, \
             \"errors\": {}, \"lost\": {}, \"throughput_rps\": {:.3}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}}}{}\n",
            s.scheduled,
            s.completed,
            s.errors,
            s.lost,
            s.throughput_rps,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.max_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["A".into(), "B".into()]
    }

    #[test]
    fn schedule_is_deterministic_and_open_loop() {
        let spec = LoadSpec::new(64, 500.0, 7, SessionMix::read_heavy());
        let a = schedule(&spec, &names());
        let b = schedule(&spec, &names());
        assert_eq!(a, b);
        assert_eq!(a.requests.len(), 64);
        // Arrivals are nondecreasing and purely schedule-driven.
        for pair in a.requests.windows(2) {
            assert!(pair[1].arrival_secs >= pair[0].arrival_secs);
        }
        // All three classes appear under the read-heavy mix at n = 64.
        assert!(a.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn schedule_respects_a_zero_weight_class() {
        let spec = LoadSpec::new(80, 500.0, 7, SessionMix::no_reconstruction(0.5, 0.5));
        let s = schedule(&spec, &names());
        assert_eq!(s.class_counts()[2], 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = |k: u64| Duration::from_millis(k);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ms(&sorted, 0.95), 95.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[ms(7)], 0.5), 7.0);
    }

    #[test]
    fn rendered_report_roundtrips_through_the_parser() {
        let stats = ClassStats {
            class: QueryClass::Sample,
            scheduled: 10,
            completed: 9,
            errors: 1,
            lost: 1,
            throughput_rps: 123.456,
            p50_ms: 0.5,
            p95_ms: 1.25,
            p99_ms: 2.5,
            max_ms: 4.0,
        };
        let text = render_report(&[("load_demo.sample".into(), stats)], true);
        let rows = crate::report::parse_report(&text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].workload, "load_demo.sample");
        assert_eq!(rows[0].requests, Some(10.0));
        assert_eq!(rows[0].p95_ms, Some(1.25));
        assert_eq!(rows[0].throughput_rps, Some(123.456));
    }

    #[test]
    fn payload_bits_distinguish_bitwise_differences() {
        // −0.0 == 0.0 as values but differ bitwise: the fingerprint must
        // separate them.
        let a = Payload::Point(vec![1.0, 0.0]);
        let b = Payload::Point(vec![1.0, -0.0]);
        assert_eq!(a.bits(), a.clone().bits());
        assert_ne!(a.bits(), b.bits());
        assert_ne!(
            Payload::Estimate(1.0).bits(),
            Payload::Point(vec![1.0]).bits()
        );
    }
}
