//! Walk-throughput report: measures hit-and-run steps/sec and samples/sec on
//! the e1 polytope, e2 ball and e7 projection workloads and writes the
//! machine-readable `BENCH_walk.json`, so every PR leaves a perf trajectory
//! behind (`./ci.sh --bench` runs it).
//!
//! The harness deliberately drives only the stable public sampler API
//! (`DfkSampler::sample`, `ProjectionGenerator::sample`), so the same source
//! compiles against older revisions of the workspace — that is how the
//! pre/post numbers quoted in PR descriptions are produced.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cdb_constraint::{Atom, GeneralizedTuple};
use cdb_geometry::{Ellipsoid, HPolytope};
use cdb_linalg::Vector;
use cdb_sampler::{
    ConvexBody, DfkSampler, GeneratorParams, ProjectionGenerator, RelationGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured workload row of `BENCH_walk.json`.
struct Row {
    workload: &'static str,
    dim: usize,
    steps_per_sec: f64,
    samples_per_sec: f64,
}

/// Runs `tick` (one sample) repeatedly: a short warm-up, then a timed window.
/// Returns samples/sec.
fn measure(mut tick: impl FnMut(), warmup: Duration, window: Duration) -> f64 {
    let start = Instant::now();
    while start.elapsed() < warmup {
        tick();
    }
    let start = Instant::now();
    let mut n = 0u64;
    while start.elapsed() < window {
        tick();
        n += 1;
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// The e7 cone in dimension `d`: `0 ≤ x_1 ≤ 1`, `0 ≤ x_i ≤ x_1`.
fn cone(d: usize) -> GeneralizedTuple {
    let mut atoms = Vec::new();
    let mut first_lo = vec![0i64; d];
    first_lo[0] = -1;
    atoms.push(Atom::le_from_ints(&first_lo, 0));
    let mut first_hi = vec![0i64; d];
    first_hi[0] = 1;
    atoms.push(Atom::le_from_ints(&first_hi, -1));
    for i in 1..d {
        let mut lo = vec![0i64; d];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0));
        let mut hi = vec![0i64; d];
        hi[i] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, 0));
    }
    GeneralizedTuple::new(d, atoms)
}

fn main() {
    let warmup = Duration::from_millis(300);
    let window = Duration::from_millis(1500);
    let params = GeneratorParams::fast();
    let mut rows = Vec::new();

    // e1: hit-and-run chains on a 6-dimensional hypercube (12 constraints).
    {
        let d = 6;
        let body = ConvexBody::from_polytope(&HPolytope::hypercube(d, 1.0))
            .expect("hypercube is well-bounded");
        let mut rng = StdRng::seed_from_u64(1001);
        let sampler = DfkSampler::new(body, params, &mut rng);
        let steps_per_sample = params.walk_steps(d) as f64;
        let sps = measure(
            || {
                std::hint::black_box(sampler.sample(&mut rng));
            },
            warmup,
            window,
        );
        rows.push(Row {
            workload: "e1_polytope_hit_and_run",
            dim: d,
            steps_per_sec: sps * steps_per_sample,
            samples_per_sec: sps,
        });
    }

    // e2: hit-and-run chains on a 6-dimensional ball behind a loose
    // certificate (the oracle-backed body of experiment E2).
    {
        let d = 6;
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.25);
        let mut rng = StdRng::seed_from_u64(1002);
        let sampler = DfkSampler::new(body, params, &mut rng);
        let steps_per_sample = params.walk_steps(d) as f64;
        let sps = measure(
            || {
                std::hint::black_box(sampler.sample(&mut rng));
            },
            warmup,
            window,
        );
        rows.push(Row {
            workload: "e2_ball_hit_and_run",
            dim: d,
            steps_per_sec: sps * steps_per_sample,
            samples_per_sec: sps,
        });
    }

    // e7: the cylinder-compensated projection generator on the 3-dimensional
    // cone (each output point costs ~1/acceptance_rate chains).
    {
        let d = 3;
        let shape = cone(d);
        let proj_params = GeneratorParams {
            gamma: 0.1,
            ..params
        };
        let mut rng = StdRng::seed_from_u64(1003);
        let mut generator = ProjectionGenerator::new(&shape, &[0], proj_params, &mut rng)
            .expect("cone is observable");
        let steps_per_chain = proj_params.walk_steps(d) as f64;
        let sps = measure(
            || {
                std::hint::black_box(generator.sample(&mut rng));
            },
            warmup,
            window,
        );
        // One emitted sample costs 1/acceptance chains of walk_steps each.
        let acceptance = generator.acceptance_rate().max(1e-12);
        rows.push(Row {
            workload: "e7_projection_compensated",
            dim: d,
            steps_per_sec: sps * steps_per_chain / acceptance,
            samples_per_sec: sps,
        });
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cdb-perf-report/v1\",\n");
    json.push_str(&format!("  \"unix_time\": {unix_time},\n"));
    json.push_str(&format!(
        "  \"walk_steps_factor\": {},\n",
        params.walk_steps_factor
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"dim\": {}, \"steps_per_sec\": {:.0}, \"samples_per_sec\": {:.1}}}{}\n",
            r.workload,
            r.dim,
            r.steps_per_sec,
            r.samples_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("CDB_BENCH_OUT").unwrap_or_else(|_| "BENCH_walk.json".into());
    std::fs::write(&out, &json).expect("write BENCH_walk.json");
    eprintln!("wrote {out}:");
    print!("{json}");
}
