//! Walk-throughput report: measures hit-and-run steps/sec and samples/sec on
//! the e1 polytope, e2 ball and e7 projection workloads plus the structured
//! constraint-matrix workloads (axis-aligned box stack, banded sparse
//! intersection — each with a forced-dense twin on the *same* body, so the
//! kernel speedup is isolated from everything else), and writes the
//! machine-readable `BENCH_walk.json`, so every PR leaves a perf trajectory
//! behind (`./ci.sh --bench` runs it; `./ci.sh --bench-quick` runs the same
//! harness with a tiny time budget as a dispatch smoke test).
//!
//! The e1/e2 rows deliberately drive only the long-stable public sampler
//! API, so pre/post comparisons against the recorded `BENCH_walk.json` of
//! earlier revisions stay apples-to-apples; the structured rows additionally
//! use `HPolytope::force_dense` and `cdb_workloads::structured` (PR 4+), the
//! e7 rows are cold/warm weight-cache twins via `ProjectionParams`
//! (PR 5+) — the warm twin keeps the historical row name — and the
//! `e_shared_subrelations` rows are warm/cold twins of the prepared-relation
//! store on an end-to-end `SpatialDatabase` query loop (PR 7+).
//!
//! Environment knobs: `CDB_BENCH_OUT` overrides the output path and
//! `CDB_BENCH_QUICK=1` shrinks the warm-up/measurement windows to a few
//! milliseconds (numbers are then meaningless — it only proves every kernel
//! dispatch path runs — so quick output defaults to
//! `target/BENCH_walk_quick.json`, never the recorded `BENCH_walk.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use cdb_constraint::{Atom, GeneralizedRelation, GeneralizedTuple};
use cdb_core::SpatialDatabase;
use cdb_geometry::{Ellipsoid, HPolytope};
use cdb_linalg::Vector;
use cdb_sampler::{
    CellSelection, ConvexBody, DfkSampler, GeneratorParams, ProjectionGenerator, ProjectionParams,
    RelationGenerator,
};
use cdb_workloads::structured;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured workload row of `BENCH_walk.json`.
struct Row {
    workload: &'static str,
    dim: usize,
    /// Constraint-matrix kernel the walk dispatches to (`"oracle"`/`"mixed"`
    /// for non-polytope bodies).
    kernel: &'static str,
    steps_per_sec: f64,
    samples_per_sec: f64,
}

/// Runs `tick` (one sample) repeatedly: a short warm-up, then a timed window.
/// Returns samples/sec.
fn measure(mut tick: impl FnMut(), warmup: Duration, window: Duration) -> f64 {
    let start = Instant::now();
    while start.elapsed() < warmup {
        tick();
    }
    let start = Instant::now();
    let mut n = 0u64;
    while start.elapsed() < window {
        tick();
        n += 1;
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// The e7 cone in dimension `d`: `0 ≤ x_1 ≤ 1`, `0 ≤ x_i ≤ x_1`.
fn cone(d: usize) -> GeneralizedTuple {
    let mut atoms = Vec::new();
    let mut first_lo = vec![0i64; d];
    first_lo[0] = -1;
    atoms.push(Atom::le_from_ints(&first_lo, 0));
    let mut first_hi = vec![0i64; d];
    first_hi[0] = 1;
    atoms.push(Atom::le_from_ints(&first_hi, -1));
    for i in 1..d {
        let mut lo = vec![0i64; d];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0));
        let mut hi = vec![0i64; d];
        hi[i] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, 0));
    }
    GeneralizedTuple::new(d, atoms)
}

/// Measures one polytope-backed hit-and-run row through the public sampler
/// API; `kernel` is taken from the polytope's detected (or forced) matrix.
fn polytope_row(
    workload: &'static str,
    p: &HPolytope,
    seed: u64,
    params: GeneratorParams,
    warmup: Duration,
    window: Duration,
) -> Row {
    let d = p.dim();
    let kernel = p.matrix().kind();
    let body = ConvexBody::from_polytope(p).expect("workload polytope is well-bounded");
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = DfkSampler::new(body, params, &mut rng);
    let steps_per_sample = params.walk_steps(d) as f64;
    let sps = measure(
        || {
            std::hint::black_box(sampler.sample(&mut rng));
        },
        warmup,
        window,
    );
    Row {
        workload,
        dim: d,
        kernel,
        steps_per_sec: sps * steps_per_sample,
        samples_per_sec: sps,
    }
}

fn main() {
    let quick = std::env::var("CDB_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (warmup, window) = if quick {
        (Duration::from_millis(5), Duration::from_millis(25))
    } else {
        (Duration::from_millis(300), Duration::from_millis(1500))
    };
    let params = GeneratorParams::fast();
    let mut rows = Vec::new();

    // e1: hit-and-run chains on a 6-dimensional hypercube (12 constraints).
    rows.push(polytope_row(
        "e1_polytope_hit_and_run",
        &HPolytope::hypercube(6, 1.0),
        1001,
        params,
        warmup,
        window,
    ));

    // e2: hit-and-run chains on a 6-dimensional ball behind a loose
    // certificate (the oracle-backed body of experiment E2).
    {
        let d = 6;
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.25);
        let mut rng = StdRng::seed_from_u64(1002);
        let sampler = DfkSampler::new(body, params, &mut rng);
        let steps_per_sample = params.walk_steps(d) as f64;
        let sps = measure(
            || {
                std::hint::black_box(sampler.sample(&mut rng));
            },
            warmup,
            window,
        );
        rows.push(Row {
            workload: "e2_ball_hit_and_run",
            dim: d,
            kernel: "oracle",
            steps_per_sec: sps * steps_per_sample,
            samples_per_sec: sps,
        });
    }

    // e7: the cylinder-compensated projection generator on the 3-dimensional
    // cone, measured three ways on the same body and seed: the rejection
    // loop with a warm weight cache (the historical
    // `e7_projection_compensated` name, kept so the cross-PR perf trajectory
    // and `bench_diff` stay comparable), the rejection loop with the cache
    // disabled (every attempt pays the full fiber-volume fill), and the
    // stratified cell selector (alias-table draw, no chains discarded). The
    // rejection rows pin `CellSelection::Rejection` explicitly — the default
    // now resolves to stratified selection, which would silently stop
    // measuring the loop these rows have always tracked.
    {
        let d = 3;
        let shape = cone(d);
        let proj_params = GeneratorParams {
            gamma: 0.1,
            ..params
        };
        for (workload, cache_capacity, selection) in [
            (
                "e7_projection_compensated",
                cdb_sampler::DEFAULT_WEIGHT_CACHE_CAPACITY,
                CellSelection::Rejection,
            ),
            (
                "e7_projection_compensated_cold",
                0usize,
                CellSelection::Rejection,
            ),
            (
                "e7_projection_stratified",
                cdb_sampler::DEFAULT_WEIGHT_CACHE_CAPACITY,
                CellSelection::Stratified,
            ),
        ] {
            let projection = ProjectionParams::new(proj_params)
                .with_cache_capacity(cache_capacity)
                .with_cell_selection(selection);
            let mut rng = StdRng::seed_from_u64(1003);
            let mut generator = ProjectionGenerator::new_with(&shape, &[0], projection, &mut rng)
                .expect("cone is observable");
            // Pre-warm until at least one sample is accepted: a quick-mode
            // window of a few milliseconds can easily close with zero
            // acceptances from the rejection loop, and an acceptance rate
            // measured as 0 used to turn the steps/sec column into ~1e15
            // garbage through the `max(1e-12)` guard below.
            let accepted = (0..1_000_000).any(|_| generator.sample(&mut rng).is_some());
            assert!(accepted, "{workload}: generator never accepted a sample");
            let steps_per_chain = proj_params.walk_steps(d) as f64;
            let sps = measure(
                || {
                    std::hint::black_box(generator.sample(&mut rng));
                },
                warmup,
                window,
            );
            // One emitted sample costs 1/acceptance chains of walk_steps
            // each (exactly 1 for the stratified selector).
            let acceptance = generator.acceptance_rate().max(1e-12);
            rows.push(Row {
                workload,
                dim: d,
                kernel: "mixed",
                steps_per_sec: sps * steps_per_chain / acceptance,
                samples_per_sec: sps,
            });
        }
    }

    // e_shared: end-to-end `SpatialDatabase::approx_generate` latency while
    // cycling six relation names that map two-to-one onto three shared
    // contents — the prepared-relation store workload. The warm row uses the
    // default store (after the first pass every query re-attaches a cached
    // prepared body); the cold row disables the store (capacity 0), so every
    // query pays full canonicalization + rounding + preparation. The ratio
    // between the two rows is the store's headline speedup.
    {
        let d = 2;
        let contents = [
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 0.5]),
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[0.5, 2.0])
                .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 1.0])),
        ];
        for (workload, capacity) in [
            (
                "e_shared_subrelations",
                cdb_sampler::DEFAULT_PREPARED_STORE_CAPACITY,
            ),
            ("e_shared_subrelations_cold", 0usize),
        ] {
            let mut db = SpatialDatabase::with_params(params).with_store_capacity(capacity);
            let names: Vec<String> = (0..6).map(|i| format!("Q{i}")).collect();
            for (i, name) in names.iter().enumerate() {
                db.insert(name.clone(), contents[i % contents.len()].clone());
            }
            let mut rng = StdRng::seed_from_u64(3001);
            let mut i = 0usize;
            let steps_per_sample = params.walk_steps(d) as f64;
            let sps = measure(
                || {
                    let name = &names[i % names.len()];
                    i += 1;
                    std::hint::black_box(db.approx_generate(name, &mut rng).unwrap());
                },
                warmup,
                window,
            );
            rows.push(Row {
                workload,
                dim: d,
                kernel: "axis",
                steps_per_sec: sps * steps_per_sample,
                samples_per_sec: sps,
            });
        }
    }

    // s1: a 32-dimensional axis-aligned box stack (256 one-nonzero rows) —
    // the detected axis kernel vs the dense kernel forced on the same body.
    // The point streams are bitwise identical; only the per-step cost moves.
    {
        let mut gen_rng = StdRng::seed_from_u64(2001);
        let (stack, _volume) = structured::box_stack(32, 4, 0.5, &mut gen_rng);
        assert_eq!(stack.matrix().kind(), "axis", "box stack must detect axis");
        rows.push(polytope_row(
            "s1_box_stack_axis",
            &stack,
            2101,
            params,
            warmup,
            window,
        ));
        rows.push(polytope_row(
            "s1_box_stack_forced_dense",
            &stack.force_dense(),
            2101,
            params,
            warmup,
            window,
        ));
    }

    // s2: a 32-dimensional banded overlay intersection (126 rows, ≤ 2
    // nonzeros each) — the detected CSR kernel vs the dense kernel on the
    // same body.
    {
        let mut gen_rng = StdRng::seed_from_u64(2002);
        let band = structured::banded_overlay(32, 0.5, &mut gen_rng);
        assert_eq!(band.matrix().kind(), "sparse", "overlay must detect sparse");
        rows.push(polytope_row(
            "s2_banded_overlay_sparse",
            &band,
            2102,
            params,
            warmup,
            window,
        ));
        rows.push(polytope_row(
            "s2_banded_overlay_forced_dense",
            &band.force_dense(),
            2102,
            params,
            warmup,
            window,
        ));
    }

    // s3: a SAT-style sparse cut system (64 box rows + 48 three-literal
    // cuts) through the CSR kernel — the Section 4.1.3 relaxation shape.
    {
        let mut gen_rng = StdRng::seed_from_u64(2003);
        let sat = structured::sat_sparse_system(32, 48, 3, 0.1, &mut gen_rng);
        assert_eq!(
            sat.matrix().kind(),
            "sparse",
            "SAT system must detect sparse"
        );
        rows.push(polytope_row(
            "s3_sat_sparse_cuts",
            &sat,
            2103,
            params,
            warmup,
            window,
        ));
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cdb-perf-report/v2\",\n");
    json.push_str(&format!("  \"unix_time\": {unix_time},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"walk_steps_factor\": {},\n",
        params.walk_steps_factor
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"dim\": {}, \"kernel\": \"{}\", \"steps_per_sec\": {:.0}, \"samples_per_sec\": {:.1}}}{}\n",
            r.workload,
            r.dim,
            r.kernel,
            r.steps_per_sec,
            r.samples_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // Quick-mode numbers are meaningless, so they must never land in the
    // recorded BENCH_walk.json by default.
    let default_out = if quick {
        "target/BENCH_walk_quick.json"
    } else {
        "BENCH_walk.json"
    };
    let out = std::env::var("CDB_BENCH_OUT").unwrap_or_else(|_| default_out.into());
    std::fs::write(&out, &json).expect("write BENCH_walk.json");
    eprintln!("wrote {out}:");
    print!("{json}");
}
