//! Perf-regression gate over two `BENCH_*.json`-schema reports.
//!
//! Compares a candidate report row by row against a baseline and exits
//! nonzero when any *shared* row regresses beyond the tolerance (default
//! 15% — wide enough to absorb the ~10% machine drift ROADMAP documents
//! between sessions, tight enough to catch real hot-path regressions).
//! Both report schemas are accepted, in either position and mixed:
//! `cdb-perf-report/v*` rows gate on `samples_per_sec` (lower is worse),
//! `cdb-load-report/v*` rows on `throughput_rps` (lower is worse) plus the
//! `p50_ms`/`p95_ms`/`p99_ms` latency percentiles (higher is worse, with
//! `LATENCY_SLACK_MS` of absolute slack so sub-10ms tail jitter cannot
//! flake the gate); `max_ms` is displayed by the load report but never
//! gated. Rows present
//! on only one side are reported but never fail the gate, so adding
//! workloads is painless; `--coverage-only` instead checks that every
//! baseline row still exists in the candidate (and skips the numeric
//! comparison entirely) — the mode `ci.sh` runs on every default pass
//! against the quick smoke reports, whose numbers are meaningless but whose
//! row sets prove every dispatch path still executes.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--tolerance 0.15] [--coverage-only]
//! ```
//!
//! Exit codes: `0` pass, `1` regression or lost coverage, `2` usage or
//! parse error.
//!
//! Parsing and the metric-direction table live in `cdb_bench::report`, where
//! they are unit-tested and shared with `tests/load.rs`.

use std::process::ExitCode;

use cdb_bench::report::{compare_row, find, load};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff <baseline.json> <candidate.json> [--tolerance <frac>] [--coverage-only]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.15f64;
    let mut coverage_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => return usage(),
            },
            "--coverage-only" => coverage_only = true,
            _ if arg.starts_with("--") => return usage(),
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        return usage();
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::from(2);
        }
    };

    if coverage_only {
        // Row-coverage gate: the candidate must retain every baseline row
        // (same workload name), so dispatch coverage can never silently
        // shrink. Numbers are ignored — quick-mode reports are legal input.
        let missing: Vec<&str> = baseline
            .iter()
            .filter(|b| find(&candidate, &b.workload).is_none())
            .map(|b| b.workload.as_str())
            .collect();
        let extra = candidate
            .iter()
            .filter(|c| find(&baseline, &c.workload).is_none())
            .count();
        println!(
            "bench_diff coverage: {} baseline rows, {} candidate rows ({} new)",
            baseline.len(),
            candidate.len(),
            extra
        );
        for b in &baseline {
            let state = if find(&candidate, &b.workload).is_some() {
                "present"
            } else {
                "MISSING"
            };
            println!("  {:<36} {}", b.workload, state);
        }
        if missing.is_empty() {
            println!("bench_diff: coverage OK");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "bench_diff: candidate lost {} workload row(s): {}",
            missing.len(),
            missing.join(", ")
        );
        return ExitCode::from(1);
    }

    // Full comparison: one line per gated metric the shared rows both carry.
    let mut regressions = 0usize;
    println!(
        "{:<36} {:<16} {:>14} {:>14} {:>9}  {}",
        "workload", "metric", "baseline", "candidate", "delta", "verdict"
    );
    for b in &baseline {
        let Some(c) = find(&candidate, &b.workload) else {
            println!(
                "{:<36} {:<16} {:>14} {:>14} {:>9}  only-in-baseline",
                b.workload, "-", "-", "-", "-"
            );
            continue;
        };
        let deltas = compare_row(b, c, tolerance);
        if deltas.is_empty() {
            println!(
                "{:<36} {:<16} {:>14} {:>14} {:>9}  unreadable",
                b.workload, "-", "-", "-", "-"
            );
            continue;
        }
        for d in deltas {
            if d.regressed {
                regressions += 1;
            }
            println!(
                "{:<36} {:<16} {:>14.2} {:>14.2} {:>+8.1}%  {}",
                b.workload,
                d.metric,
                d.base,
                d.cand,
                d.delta * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
    }
    for c in &candidate {
        if find(&baseline, &c.workload).is_none() {
            println!(
                "{:<36} {:<16} {:>14} {:>14} {:>9}  new-row",
                c.workload, "-", "-", "-", "-"
            );
        }
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} metric(s) regressed beyond {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::from(1);
    }
    println!(
        "bench_diff: no shared metric regressed beyond {:.0}%",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
