//! Perf-regression gate over two `BENCH_walk.json`-schema reports.
//!
//! Compares a candidate report row by row against a baseline and exits
//! nonzero when any *shared* row regresses beyond the tolerance (default
//! 15% — wide enough to absorb the ~10% machine drift ROADMAP documents
//! between sessions, tight enough to catch real hot-path regressions).
//! Rows present on only one side are reported but never fail the gate, so
//! adding workloads is painless; `--coverage-only` instead checks that every
//! baseline row still exists in the candidate (and skips the numeric
//! comparison entirely) — the mode `ci.sh` runs on every default pass
//! against the quick smoke report, whose numbers are meaningless but whose
//! row set proves every kernel-dispatch path still executes.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--tolerance 0.15] [--coverage-only]
//! ```
//!
//! Exit codes: `0` pass, `1` regression or lost coverage, `2` usage or
//! parse error.
//!
//! The parser is deliberately minimal (the workspace is offline — no serde):
//! it scans for the `"workload"` keys the perf report writes and extracts
//! the sibling numeric fields of each row object. It accepts any report the
//! in-repo `perf_report` binary (schema `cdb-perf-report/v1+`) produced.

use std::process::ExitCode;

/// One parsed report row.
#[derive(Clone, Debug, PartialEq)]
struct Row {
    workload: String,
    dim: Option<f64>,
    kernel: Option<String>,
    steps_per_sec: Option<f64>,
    samples_per_sec: Option<f64>,
}

/// Extracts the string value following `"field":` inside `object`.
fn string_field(object: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let rest = after.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value following `"field":` inside `object`.
fn number_field(object: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parses every `{... "workload": ...}` object of a report.
fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"workload\"") {
        // The row object spans from the `{` before the key to the next `}`
        // (row objects are flat — the perf report writes one per line).
        let open = rest[..pos]
            .rfind('{')
            .ok_or("malformed report: workload key outside an object")?;
        let close = rest[pos..]
            .find('}')
            .ok_or("malformed report: unterminated row object")?
            + pos;
        let object = &rest[open..close];
        rows.push(Row {
            workload: string_field(object, "workload")
                .ok_or("malformed report: unreadable workload name")?,
            dim: number_field(object, "dim"),
            kernel: string_field(object, "kernel"),
            steps_per_sec: number_field(object, "steps_per_sec"),
            samples_per_sec: number_field(object, "samples_per_sec"),
        });
        rest = &rest[close..];
    }
    if rows.is_empty() {
        return Err("no workload rows found (is this a cdb-perf-report file?)".into());
    }
    Ok(rows)
}

fn load(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("cdb-perf-report/") {
        return Err(format!("{path}: missing the cdb-perf-report schema marker"));
    }
    parse_rows(&text).map_err(|e| format!("{path}: {e}"))
}

fn find<'a>(rows: &'a [Row], name: &str) -> Option<&'a Row> {
    rows.iter().find(|r| r.workload == name)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff <baseline.json> <candidate.json> [--tolerance <frac>] [--coverage-only]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.15f64;
    let mut coverage_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => return usage(),
            },
            "--coverage-only" => coverage_only = true,
            _ if arg.starts_with("--") => return usage(),
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        return usage();
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::from(2);
        }
    };

    if coverage_only {
        // Row-coverage gate: the candidate must retain every baseline row
        // (same workload name), so dispatch coverage can never silently
        // shrink. Numbers are ignored — quick-mode reports are legal input.
        let missing: Vec<&str> = baseline
            .iter()
            .filter(|b| find(&candidate, &b.workload).is_none())
            .map(|b| b.workload.as_str())
            .collect();
        let extra = candidate
            .iter()
            .filter(|c| find(&baseline, &c.workload).is_none())
            .count();
        println!(
            "bench_diff coverage: {} baseline rows, {} candidate rows ({} new)",
            baseline.len(),
            candidate.len(),
            extra
        );
        for b in &baseline {
            let state = if find(&candidate, &b.workload).is_some() {
                "present"
            } else {
                "MISSING"
            };
            println!("  {:<36} {}", b.workload, state);
        }
        if missing.is_empty() {
            println!("bench_diff: coverage OK");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "bench_diff: candidate lost {} workload row(s): {}",
            missing.len(),
            missing.join(", ")
        );
        return ExitCode::from(1);
    }

    // Full comparison: gate on samples_per_sec of the shared rows (the
    // end-to-end metric every workload reports); steps_per_sec is shown for
    // context.
    let mut regressions = 0usize;
    println!(
        "{:<36} {:>14} {:>14} {:>9}  {}",
        "workload", "base sps", "cand sps", "delta", "verdict"
    );
    for b in &baseline {
        let Some(c) = find(&candidate, &b.workload) else {
            println!(
                "{:<36} {:>14} {:>14} {:>9}  only-in-baseline",
                b.workload, "-", "-", "-"
            );
            continue;
        };
        let (Some(base_sps), Some(cand_sps)) = (b.samples_per_sec, c.samples_per_sec) else {
            println!(
                "{:<36} {:>14} {:>14} {:>9}  unreadable",
                b.workload, "-", "-", "-"
            );
            continue;
        };
        let delta = if base_sps > 0.0 {
            cand_sps / base_sps - 1.0
        } else {
            0.0
        };
        let regressed = delta < -tolerance;
        if regressed {
            regressions += 1;
        }
        println!(
            "{:<36} {:>14.1} {:>14.1} {:>+8.1}%  {}",
            b.workload,
            base_sps,
            cand_sps,
            delta * 100.0,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    for c in &candidate {
        if find(&baseline, &c.workload).is_none() {
            println!(
                "{:<36} {:>14} {:>14} {:>9}  new-row",
                c.workload, "-", "-", "-"
            );
        }
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} row(s) regressed beyond {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::from(1);
    }
    println!(
        "bench_diff: no shared row regressed beyond {:.0}%",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "cdb-perf-report/v2",
  "workloads": [
    {"workload": "e1", "dim": 6, "kernel": "axis", "steps_per_sec": 700, "samples_per_sec": 150.5},
    {"workload": "e7_cold", "dim": 3, "kernel": "mixed", "steps_per_sec": 31e6, "samples_per_sec": 133.5}
  ]
}"#;

    #[test]
    fn rows_parse_with_names_and_numbers() {
        let rows = parse_rows(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "e1");
        assert_eq!(rows[0].samples_per_sec, Some(150.5));
        assert_eq!(rows[0].kernel.as_deref(), Some("axis"));
        assert_eq!(rows[1].steps_per_sec, Some(31e6));
        assert_eq!(rows[1].dim, Some(3.0));
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("\"workload\": \"loose\"").is_err());
    }
}
