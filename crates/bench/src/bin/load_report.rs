//! Traffic-shaped load report: replays deterministic open-loop query mixes
//! against `SpatialDatabase` from N client threads and writes the
//! machine-readable `BENCH_load.json` (`cdb-load-report/v1` schema), so
//! every PR leaves a latency trajectory behind next to the walk-throughput
//! one (`./ci.sh --bench-load` runs it; the default `ci.sh` pass runs the
//! quick variant as a dispatch smoke test and coverage-checks its rows).
//!
//! Four mixes — one per workload family of the scenario-diversity roadmap
//! item, plus an HTTP loopback smoke:
//!
//! * `sessions` — a shared-content polytope soup under a read-heavy
//!   sample/volume/reconstruction session blend: many names collapse onto
//!   few canonical keys, so the prepared-relation store serves concurrent
//!   hits on shared entries;
//! * `moving_overlay` — time-sliced moving-object GIS layers under a
//!   sample/volume blend, queries spread across the time slices;
//! * `degenerate` — needle boxes and squeezed simplices (rounding enabled)
//!   under a sample/volume blend;
//! * `http_sessions` — a small sessions blend replayed over a loopback
//!   `cdb-server` through the harness's HTTP transport, proving the report
//!   schema is transport-agnostic.
//!
//! Every row reports throughput plus p50/p95/p99/max open-loop latency
//! (completion − *scheduled* arrival: the schedule is fixed up front and
//! never slows down with the server, so coordinated omission cannot hide a
//! stall). Requests run under a generous deterministic `QueryBudget`, so a
//! pathological query degrades into a typed `BudgetExhausted` row-side
//! error instead of wedging the run.
//!
//! Environment knobs: `CDB_LOAD_OUT` overrides the output path,
//! `CDB_LOAD_REQUESTS` scales every mix's request count, `CDB_LOAD_THREADS`
//! fixes the client-thread count (default: one per core), and
//! `CDB_LOAD_QUICK=1` shrinks the request counts ~20× (numbers are then
//! meaningless — it only proves the harness paths run — so quick output
//! defaults to `target/BENCH_load_quick.json`, never the recorded
//! `BENCH_load.json`).

use cdb_bench::load::{
    class_stats, render_report, run, run_over, schedule, ClassStats, LoadSpec, Transport,
};
use cdb_core::SpatialDatabase;
use cdb_sampler::{GeneratorParams, QueryBudget};
use cdb_server::{Server, ServerConfig};
use cdb_workloads::sessions::SessionMix;
use cdb_workloads::{degenerate, gis, sessions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds, schedules and runs one mix, returning its named class rows.
fn run_mix(
    label: &str,
    db: &SpatialDatabase,
    names: &[String],
    spec: &LoadSpec,
) -> Vec<(String, ClassStats)> {
    let sched = schedule(spec, names);
    let report = run(db, spec, &sched);
    assert!(
        report.panics.is_empty() && report.lost() == 0,
        "{label}: load run lost requests: {:?}",
        report.panics
    );
    class_stats(&sched, &report)
        .into_iter()
        .map(|s| (format!("load_{label}.{}", s.class.label()), s))
        .collect()
}

fn main() {
    let quick = std::env::var("CDB_LOAD_QUICK").is_ok_and(|v| v == "1");
    let scale: f64 = std::env::var("CDB_LOAD_REQUESTS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|n| n / 600.0)
        .unwrap_or(if quick { 0.05 } else { 1.0 });
    let threads: usize = std::env::var("CDB_LOAD_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let count = |base: usize| ((base as f64 * scale).round() as usize).max(20);
    // Arrival rates put the full run around the engine's mixed-traffic
    // capacity so queueing is visible in the percentiles without the
    // schedule running far ahead of the servers.
    let budget = QueryBudget::unlimited()
        .with_max_steps(50_000_000)
        .with_max_attempts(100_000);
    let mut rows: Vec<(String, ClassStats)> = Vec::new();

    // Mix 1: shared-content polytope soup, read-heavy session blend.
    {
        let soup = sessions::polytope_soup(
            &sessions::SoupSpec::default(),
            &mut StdRng::seed_from_u64(2026),
        );
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        for (name, relation) in &soup.entries {
            db.insert(name.clone(), relation.clone());
        }
        let spec = LoadSpec::new(
            count(600),
            900.0 * scale.min(1.0),
            901,
            SessionMix::read_heavy(),
        )
        .with_threads(threads)
        .with_budget(budget.clone());
        rows.extend(run_mix("sessions", &db, &soup.names(), &spec));
    }

    // Mix 2: time-sliced moving-object overlays, sample/volume blend.
    {
        let mo = gis::moving_overlay(
            &gis::MovingOverlaySpec::default(),
            &mut StdRng::seed_from_u64(2027),
        );
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        let mut names = Vec::new();
        for (j, slice) in mo.slices.iter().enumerate() {
            let name = format!("Slice{j}");
            db.insert(name.clone(), slice.relation.clone());
            names.push(name);
        }
        let spec = LoadSpec::new(
            count(400),
            700.0 * scale.min(1.0),
            902,
            SessionMix::no_reconstruction(0.7, 0.3),
        )
        .with_threads(threads)
        .with_budget(budget.clone());
        rows.extend(run_mix("moving_overlay", &db, &names, &spec));
    }

    // Mix 3: degenerate high-aspect bodies through the rounding path.
    {
        let mut params = GeneratorParams::fast();
        params.rounding = true;
        let mut db = SpatialDatabase::with_params(params);
        let mut names = Vec::new();
        for body in degenerate::suite(3, 16) {
            db.insert(body.name, body.relation.clone());
            names.push(body.name.to_string());
        }
        let spec = LoadSpec::new(
            count(300),
            300.0 * scale.min(1.0),
            903,
            SessionMix::no_reconstruction(0.6, 0.4),
        )
        .with_threads(threads)
        .with_budget(budget.clone());
        rows.extend(run_mix("degenerate", &db, &names, &spec));
    }

    // Mix 4: HTTP loopback smoke — a small sessions blend served by a real
    // `cdb-server` over 127.0.0.1, proving the report schema is
    // transport-agnostic (the rows carry the same fields as the in-process
    // mixes; see `Transport` in `cdb_bench::load` for the parity contract).
    {
        let soup = sessions::polytope_soup(
            &sessions::SoupSpec::default(),
            &mut StdRng::seed_from_u64(2026),
        );
        let mut db = SpatialDatabase::with_params(GeneratorParams::fast());
        for (name, relation) in &soup.entries {
            db.insert(name.clone(), relation.clone());
        }
        let names = soup.names();
        let server =
            Server::start_with_db(ServerConfig::default(), db).expect("loopback server starts");
        let spec = LoadSpec::new(
            count(200),
            400.0 * scale.min(1.0),
            904,
            SessionMix::read_heavy(),
        )
        .with_threads(threads)
        .with_budget(budget);
        let sched = schedule(&spec, &names);
        let report = run_over(&Transport::Http(server.addr()), &spec, &sched);
        assert!(
            report.panics.is_empty() && report.lost() == 0,
            "http_sessions: load run lost requests: {:?}",
            report.panics
        );
        rows.extend(
            class_stats(&sched, &report)
                .into_iter()
                .map(|s| (format!("load_http_sessions.{}", s.class.label()), s)),
        );
    }

    let json = render_report(&rows, quick);
    let default_out = if quick {
        "target/BENCH_load_quick.json"
    } else {
        "BENCH_load.json"
    };
    let out = std::env::var("CDB_LOAD_OUT").unwrap_or_else(|_| default_out.into());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprint!("{json}");
    eprintln!("load report written to {out}");
}
