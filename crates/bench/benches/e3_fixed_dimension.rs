//! E3 — the fixed-dimension algorithms of Section 3 (Theorem 3.1): exact
//! volume and cube-decomposition sampling are cheap for fixed dimension but
//! their cost grows exponentially with the dimension, which is the paper's
//! motivation for the randomized approach.

use cdb_bench::{experiment_criterion, rng};
use cdb_constraint::GeneralizedRelation;
use cdb_sampler::{FixedDimSampler, RelationGenerator};
use cdb_workloads::polytopes;
use criterion::{black_box, Criterion};

fn e3_fixed_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_fixed_dimension");
    for d in [2usize, 3, 4] {
        let relation = GeneralizedRelation::from_tuple(polytopes::hypercube(d, 1.0)).union(
            &GeneralizedRelation::from_tuple(polytopes::standard_simplex(d)),
        );
        // Grid step chosen so the cell count stays around 10^4-10^5 per dimension.
        let gamma = match d {
            2 => 0.02,
            3 => 0.08,
            _ => 0.2,
        };
        let sampler = FixedDimSampler::new(&relation, gamma).expect("bounded relation");
        eprintln!(
            "[E3] d={d} gamma={gamma}: cells={} grid_volume={:.4} exact_volume={:.4}",
            sampler.cell_count(),
            sampler.grid_volume(),
            sampler.exact_volume()
        );
        group.bench_function(format!("decompose_d{d}"), |b| {
            b.iter(|| black_box(FixedDimSampler::new(&relation, gamma)))
        });
        group.bench_function(format!("exact_volume_d{d}"), |b| {
            let s = sampler.clone();
            b.iter(|| black_box(s.exact_volume()))
        });
        group.bench_function(format!("sample_d{d}"), |b| {
            let mut s = sampler.clone();
            let mut r = rng(300 + d as u64);
            b.iter(|| black_box(s.sample(&mut r)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e3_fixed_dimension(&mut criterion);
    criterion.final_summary();
}
