//! E11 — the SAT encoding of Section 4.1.3: the intersection generator must
//! refuse (not poly-related) on CNF encodings, otherwise it would decide SAT.
//! E12 — the Section 5 extension to polynomial constraints: balls and
//! ellipsoids are observable through the same membership-oracle machinery.

use std::sync::Arc;

use cdb_bench::{experiment_criterion, rng};
use cdb_geometry::ball::unit_ball_volume;
use cdb_geometry::Ellipsoid;
use cdb_linalg::Vector;
use cdb_sampler::{
    ConvexBody, DfkSampler, GeneratorParams, IntersectionGenerator, RelationVolumeEstimator,
};
use cdb_workloads::sat;
use criterion::{black_box, Criterion};

fn e11_sat_encoding(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e11_sat_encoding");
    for n_vars in [3usize, 5] {
        let mut r = rng(1100 + n_vars as u64);
        let cnf = sat::random_k_cnf(n_vars, 2 * n_vars, 3.min(n_vars), &mut r);
        let satisfiable = cnf.brute_force_satisfiable();
        let relations = sat::cnf_relations(&cnf);
        let mut generator =
            IntersectionGenerator::new(&relations, params).expect("clauses are observable");
        let estimate = generator.estimate_volume(&mut r);
        eprintln!(
            "[E11] n={n_vars} clauses={}: satisfiable={satisfiable} estimate={estimate:?} acceptance={:.4}",
            cnf.clauses.len(),
            generator.acceptance_rate()
        );
        group.bench_function(format!("cnf_intersection_n{n_vars}"), |b| {
            b.iter(|| black_box(generator.estimate_volume(&mut r)))
        });
    }
    group.finish();
}

fn e12_polynomial_constraints(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e12_polynomial");
    for d in [2usize, 4, 6] {
        let mut r = rng(1200 + d as u64);
        // A ball (degree-2 polynomial constraint) through the generic oracle.
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 1.0, 1.0);
        let sampler = DfkSampler::new(body, params, &mut r);
        let estimate = sampler.estimate_volume_median(3, &mut r);
        let exact = unit_ball_volume(d);
        eprintln!(
            "[E12] ball d={d}: exact={exact:.4} estimate={estimate:.4} rel_err={:.3}",
            (estimate - exact).abs() / exact
        );
        group.bench_function(format!("ball_volume_d{d}"), |b| {
            b.iter(|| black_box(sampler.estimate_volume(&mut r)))
        });

        // An axis-aligned ellipsoid with exact volume.
        let semi_axes: Vec<f64> = (0..d).map(|i| 0.5 + 0.25 * i as f64).collect();
        let ellipsoid = Ellipsoid::axis_aligned(Vector::zeros(d), &semi_axes).expect("ellipsoid");
        let exact_e = ellipsoid.volume();
        let r_inf = semi_axes.iter().cloned().fold(f64::INFINITY, f64::min);
        let r_sup = semi_axes.iter().cloned().fold(0.0f64, f64::max);
        let body_e = ConvexBody::from_oracle(Arc::new(ellipsoid), Vector::zeros(d), r_inf, r_sup);
        let sampler_e = DfkSampler::new(body_e, params, &mut r);
        let estimate_e = sampler_e.estimate_volume_median(3, &mut r);
        eprintln!(
            "[E12] ellipsoid d={d}: exact={exact_e:.4} estimate={estimate_e:.4} rel_err={:.3}",
            (estimate_e - exact_e).abs() / exact_e
        );
        group.bench_function(format!("ellipsoid_sample_d{d}"), |b| {
            b.iter(|| black_box(sampler_e.sample(&mut r)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e11_sat_encoding(&mut criterion);
    e12_polynomial_constraints(&mut criterion);
    criterion.final_summary();
}
