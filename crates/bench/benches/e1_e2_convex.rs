//! E1 — convex well-bounded relations are observable (DFK theorem, Section 2):
//! generator + volume estimator accuracy across body families and dimensions.
//! E2 — naive bounding-box rejection vs the DFK estimator: the acceptance rate
//! of rejection sampling collapses exponentially with the dimension
//! (the paper's introductory argument).

use std::sync::Arc;

use cdb_bench::{experiment_criterion, rng};
use cdb_geometry::ball::{ball_to_cube_ratio, unit_ball_volume};
use cdb_geometry::Ellipsoid;
use cdb_linalg::Vector;
use cdb_sampler::{
    batch, ConvexBody, DfkSampler, GeneratorParams, RejectionSampler, RelationVolumeEstimator,
    SeedSequence,
};
use cdb_workloads::polytopes;
use criterion::{black_box, Criterion};

fn e1_convex_observability(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e1_convex_observable");
    for d in [2usize, 4, 6] {
        let bodies: Vec<(&str, cdb_constraint::GeneralizedTuple, f64)> = vec![
            (
                "hypercube",
                polytopes::hypercube(d, 1.0),
                polytopes::hypercube_volume(d, 1.0),
            ),
            (
                "simplex",
                polytopes::standard_simplex(d),
                polytopes::simplex_volume(d),
            ),
        ];
        for (name, tuple, exact) in bodies {
            let mut r = rng(100 + d as u64);
            let body = ConvexBody::from_tuple(&tuple).expect("workload bodies are well-bounded");
            let sampler = DfkSampler::new(body, params, &mut r);
            let estimate = sampler.estimate_volume_median(3, &mut r);
            eprintln!(
                "[E1] d={d} {name}: exact={exact:.4} estimate={estimate:.4} rel_err={:.3}",
                (estimate - exact).abs() / exact
            );
            group.bench_function(format!("{name}_d{d}_sample"), |b| {
                b.iter(|| black_box(sampler.sample(&mut r)))
            });
            group.bench_function(format!("{name}_d{d}_volume"), |b| {
                b.iter(|| black_box(sampler.estimate_volume(&mut r)))
            });
            // The parallel batch path: 64 chains fanned out over all cores,
            // with bitwise-reproducible output for the fixed seed.
            let seq = SeedSequence::new(300 + d as u64);
            group.bench_function(format!("{name}_d{d}_sample_batch64"), |b| {
                b.iter(|| black_box(sampler.sample_batch(64, &seq, 0)))
            });
        }
    }
    group.finish();
}

fn e2_rejection_vs_dfk(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_rejection_vs_dfk");
    for d in [2usize, 6, 10] {
        let mut r = rng(200 + d as u64);
        let exact = unit_ball_volume(d);
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
        // A deliberately *loose* certificate (r_inf < r_sup). The original E2
        // configuration passed the tight certificate r_inf = r_sup = 1.0,
        // which pins the body to the certificate ball: the telescoping chain
        // is empty and `estimate_volume` returns the closed-form ball volume
        // in ~110 ns without touching the RNG (see the exact-certificate
        // shortcut on `DfkSampler::estimate_volume`). The loose certificate
        // makes the benchmark measure the real telescoping-product work.
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.25);

        let dfk = DfkSampler::new(body.clone(), GeneratorParams::fast(), &mut r);
        let dfk_estimate = dfk.estimate_volume(&mut r);

        let mut rejection =
            RejectionSampler::new(body, Vector::filled(d, -1.0), Vector::filled(d, 1.0));
        rejection.set_volume_trials(5_000);
        let rejection_estimate = rejection.estimate_volume(&mut r).unwrap_or(0.0);
        eprintln!(
            "[E2] d={d}: exact={exact:.5} dfk={dfk_estimate:.5} rejection={rejection_estimate:.5} \
             rejection_acceptance={:.6} theoretical={:.6}",
            rejection.acceptance_rate(),
            ball_to_cube_ratio(d)
        );

        group.bench_function(format!("dfk_volume_d{d}"), |b| {
            b.iter(|| black_box(dfk.estimate_volume(&mut r)))
        });
        // Median-of-5 through the batch layer, once sequential and once over
        // all cores: same output, different wall clock.
        let seq = SeedSequence::new(400 + d as u64);
        group.bench_function(format!("dfk_volume_median5_seq_d{d}"), |b| {
            b.iter(|| black_box(dfk.estimate_volume_median_batch(5, &seq, 1)))
        });
        group.bench_function(format!("dfk_volume_median5_par_d{d}"), |b| {
            b.iter(|| black_box(dfk.estimate_volume_median_batch(5, &seq, batch::auto_threads())))
        });
        group.bench_function(format!("rejection_volume_d{d}"), |b| {
            b.iter(|| black_box(rejection.estimate_volume(&mut r)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e1_convex_observability(&mut criterion);
    e2_rejection_vs_dfk(&mut criterion);
    criterion.final_summary();
}
