//! E7 — Figure 1 and Theorem 4.3: raw projection of uniform samples is not
//! uniform, Algorithm 2's compensation restores uniformity, measured with a
//! chi-square statistic; plus the cost of the compensated generator as the
//! dimension grows.

use cdb_bench::{experiment_criterion, rng};
use cdb_constraint::{Atom, GeneralizedTuple};
use cdb_sampler::diagnostics::{chi_square_loose_bound, uniformity_chi_square};
use cdb_sampler::{
    CellSelection, GeneratorParams, ProjectionGenerator, ProjectionParams, RelationGenerator,
    SeedSequence,
};
use criterion::{black_box, Criterion};

/// The generalization of the Figure 1 triangle to dimension `d`: the cone
/// `0 ≤ x_1 ≤ 1`, `0 ≤ x_i ≤ x_1` for `i ≥ 2`. Fibers over `x_1` grow like
/// `x_1^{d−1}`, so the uncorrected projection is strongly biased toward 1.
fn cone(d: usize) -> GeneralizedTuple {
    let mut atoms = Vec::new();
    let mut first_lo = vec![0i64; d];
    first_lo[0] = -1;
    atoms.push(Atom::le_from_ints(&first_lo, 0)); // x1 >= 0
    let mut first_hi = vec![0i64; d];
    first_hi[0] = 1;
    atoms.push(Atom::le_from_ints(&first_hi, -1)); // x1 <= 1
    for i in 1..d {
        let mut lo = vec![0i64; d];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0)); // x_i >= 0
        let mut hi = vec![0i64; d];
        hi[i] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, 0)); // x_i <= x_1
    }
    GeneralizedTuple::new(d, atoms)
}

fn e7_projection(c: &mut Criterion) {
    let params = GeneratorParams {
        gamma: 0.1,
        ..GeneratorParams::fast()
    };
    let mut group = c.benchmark_group("e7_projection");
    for d in [2usize, 3, 4] {
        let shape = cone(d);
        let mut r = rng(700 + d as u64);
        // Pinned to the rejection loop: these are the historical
        // `algorithm2_projection_*` rows, and the default now resolves to
        // the stratified selector (measured separately below).
        let rejection = ProjectionParams::new(params).with_cell_selection(CellSelection::Rejection);
        let mut generator = ProjectionGenerator::new_with(&shape, &[0], rejection, &mut r)
            .expect("cone is observable");
        let stratified =
            ProjectionParams::new(params).with_cell_selection(CellSelection::Stratified);
        let mut strat_generator = ProjectionGenerator::new_with(&shape, &[0], stratified, &mut r)
            .expect("cone is observable");

        let n = 600;
        let biased: Vec<f64> = (0..n)
            .map(|_| generator.sample_uncorrected(&mut r)[0])
            .collect();
        let corrected: Vec<f64> = generator
            .sample_many(n, &mut r)
            .into_iter()
            .map(|p| p[0])
            .collect();
        let chi_biased = uniformity_chi_square(&biased, 0.0, 1.0, 8);
        let chi_corrected = uniformity_chi_square(&corrected, 0.0, 1.0, 8);
        eprintln!(
            "[E7] d={d}: chi2_uncorrected={chi_biased:.1} chi2_algorithm2={chi_corrected:.1} \
             (uniformity red line ~{:.1}) acceptance={:.4}",
            chi_square_loose_bound(7),
            generator.acceptance_rate()
        );

        group.bench_function(format!("uncorrected_projection_d{d}"), |b| {
            b.iter(|| black_box(generator.sample_uncorrected(&mut r)))
        });
        group.bench_function(format!("algorithm2_projection_d{d}"), |b| {
            b.iter(|| black_box(generator.sample(&mut r)))
        });
        group.bench_function(format!("stratified_projection_d{d}"), |b| {
            b.iter(|| black_box(strat_generator.sample(&mut r)))
        });
        // The compensated generator through the parallel batch layer.
        let seq = SeedSequence::new(750 + d as u64);
        group.bench_function(format!("algorithm2_projection_batch64_d{d}"), |b| {
            b.iter(|| black_box(generator.sample_batch(64, &seq, 0)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e7_projection(&mut criterion);
    criterion.final_summary();
}
