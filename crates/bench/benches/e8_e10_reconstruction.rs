//! E8 — Lemma 4.1: the convex hull of N almost-uniform samples approximates
//! the sampled polytope; the symmetric-difference error shrinks with N.
//! E10 — Theorem 4.4 / Algorithms 4–5: guaranteed (ε,δ)-estimation of
//! positive existential queries (the ∃z (R1∧R2) ∨ R4 workload of §4.3.2).

use cdb_bench::{experiment_criterion, rng};
use cdb_constraint::{parse_formula, GeneralizedRelation, GeneralizedTuple};
use cdb_core::SpatialDatabase;
use cdb_geometry::volume::{polytope_volume, symmetric_difference_volume, union_volume};
use cdb_reconstruct::ConvexReconstructor;
use cdb_sampler::GeneratorParams;
use criterion::{black_box, Criterion};

fn e8_hull_reconstruction(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let reconstructor = ConvexReconstructor::new(params, 0.2, 0.2);
    let mut group = c.benchmark_group("e8_hull_reconstruction");
    let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
    let truth = square.to_hpolytope();
    let exact = polytope_volume(&truth);
    for n in [50usize, 200, 800] {
        let mut r = rng(800 + n as u64);
        let hull = reconstructor
            .reconstruct_tuple(&square, Some(n), &mut r)
            .expect("square is observable");
        let sd = symmetric_difference_volume(&[truth.clone()], &[hull]);
        eprintln!(
            "[E8] N={n}: symmetric_difference={sd:.4} ({:.2}% of the exact volume)",
            100.0 * sd / exact
        );
        group.bench_function(format!("hull_of_{n}_samples"), |b| {
            b.iter(|| black_box(reconstructor.reconstruct_tuple(&square, Some(n), &mut r)))
        });
    }
    group.finish();
}

fn e10_positive_queries(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e10_positive_queries");
    let mut db = SpatialDatabase::with_params(params);
    db.insert(
        "R1",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.5]),
    );
    db.insert(
        "R2",
        GeneralizedRelation::from_box_f64(&[0.5, 0.0], &[2.0, 2.0]),
    );
    db.insert(
        "R4",
        GeneralizedRelation::from_box_f64(&[3.0, 0.0], &[4.0, 1.0]),
    );
    let query = parse_formula("(exists x2. R1(x0, x2) and R2(x2, x1)) or R4(x0, x1)", 3)
        .expect("valid query");

    let exact = db.evaluate_exact(&query, 2).expect("symbolic evaluation");
    let exact_volume = union_volume(&exact.to_polytopes());
    let mut r = rng(1000);
    let approx = db
        .approx_query(&query, 2, &mut r)
        .expect("reconstruction succeeds");
    let sd = symmetric_difference_volume(&exact.to_polytopes(), &approx.to_polytopes());
    eprintln!(
        "[E10] section 4.3.2 query: exact_volume={exact_volume:.4} pieces_exact={} pieces_approx={} \
         symmetric_difference={sd:.4} ({:.2}%)",
        exact.tuples().len(),
        approx.tuples().len(),
        100.0 * sd / exact_volume
    );

    group.bench_function("symbolic_evaluation", |b| {
        b.iter(|| black_box(db.evaluate_exact(&query, 2)))
    });
    group.bench_function("sampling_reconstruction", |b| {
        b.iter(|| black_box(db.approx_query(&query, 2, &mut r)))
    });
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e8_hull_reconstruction(&mut criterion);
    e10_positive_queries(&mut criterion);
    criterion.final_summary();
}
