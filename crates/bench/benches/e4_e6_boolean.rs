//! E4 — the union generator / estimator (Algorithm 1, Theorems 4.1–4.2 and
//! Corollary 4.2 for m-ary unions), on overlapping boxes and GIS layers.
//! E5 — the intersection generator (Proposition 4.1): accuracy and the
//! collapse of the acceptance rate as the overlap shrinks.
//! E6 — the difference generator (Proposition 4.2).

use cdb_bench::{experiment_criterion, rng};
use cdb_constraint::GeneralizedRelation;
use cdb_geometry::volume::union_volume;
use cdb_sampler::{
    DifferenceGenerator, GeneratorParams, IntersectionGenerator, RelationGenerator,
    RelationVolumeEstimator, SeedSequence, UnionGenerator,
};
use cdb_workloads::gis;
use criterion::{black_box, Criterion};

fn e4_union(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e4_union");
    for m in [2usize, 4, 8] {
        // m unit boxes, each shifted by 0.5: heavily overlapping union.
        let mut relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        for i in 1..m {
            let s = 0.5 * i as f64;
            relation = relation.union(&GeneralizedRelation::from_box_f64(
                &[s, 0.0],
                &[s + 1.0, 1.0],
            ));
        }
        let exact = union_volume(&relation.to_polytopes());
        let mut generator = UnionGenerator::new(&relation, params).expect("observable union");
        let mut r = rng(400 + m as u64);
        let estimate = generator
            .estimate_volume(&mut r)
            .expect("estimation succeeds");
        eprintln!(
            "[E4] m={m}: exact={exact:.4} estimate={estimate:.4} rel_err={:.3}",
            (estimate - exact).abs() / exact
        );
        group.bench_function(format!("union_volume_m{m}"), |b| {
            b.iter(|| black_box(generator.estimate_volume(&mut r)))
        });
        group.bench_function(format!("union_sample_m{m}"), |b| {
            b.iter(|| black_box(generator.sample(&mut r)))
        });
        // 64 almost-uniform points through the parallel batch layer (one
        // child seed stream per point, all cores).
        let seq = SeedSequence::new(450 + m as u64);
        group.bench_function(format!("union_sample_batch64_m{m}"), |b| {
            b.iter(|| black_box(generator.sample_batch(64, &seq, 0)))
        });
    }
    // A GIS layer as the realistic workload.
    let mut r = rng(444);
    let layer = gis::parcels(&gis::GisLayerSpec::default(), &mut r);
    let mut generator = UnionGenerator::new(&layer.relation, params).expect("observable layer");
    let estimate = generator
        .estimate_volume(&mut r)
        .expect("estimation succeeds");
    eprintln!(
        "[E4] gis parcels: exact={:.4} estimate={estimate:.4}",
        layer.exact_area
    );
    group.bench_function("union_volume_gis", |b| {
        b.iter(|| black_box(generator.estimate_volume(&mut r)))
    });
    group.finish();
}

fn e5_intersection(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e5_intersection");
    // Overlap fraction rho controls poly-relatedness.
    for (label, rho) in [("half", 0.5), ("tenth", 0.1), ("thousandth", 1e-3)] {
        let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let b_rel = GeneralizedRelation::from_box_f64(&[1.0 - rho, 0.0], &[2.0 - rho, 1.0]);
        let mut generator =
            IntersectionGenerator::new(&[a, b_rel], params).expect("observable operands");
        let mut r = rng(500);
        let estimate = generator.estimate_volume(&mut r);
        eprintln!(
            "[E5] overlap={label} ({rho}): exact={rho:.4} estimate={estimate:?} acceptance={:.4}",
            generator.acceptance_rate()
        );
        group.bench_function(format!("intersection_volume_{label}"), |b| {
            b.iter(|| black_box(generator.estimate_volume(&mut r)))
        });
    }
    group.finish();
}

fn e6_difference(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let mut group = c.benchmark_group("e6_difference");
    for (label, cut) in [("quarter", 0.25), ("half", 0.5), ("ninety_percent", 0.9)] {
        let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let s2 = GeneralizedRelation::from_box_f64(&[1.0 - cut, 0.0], &[2.0, 1.0]);
        let exact = 1.0 - cut;
        let mut generator = DifferenceGenerator::new(&s1, &s2, params).expect("observable minuend");
        let mut r = rng(600);
        let estimate = generator.estimate_volume(&mut r);
        eprintln!(
            "[E6] cut={label}: exact={exact:.4} estimate={estimate:?} acceptance={:.4}",
            generator.acceptance_rate()
        );
        group.bench_function(format!("difference_volume_{label}"), |b| {
            b.iter(|| black_box(generator.estimate_volume(&mut r)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e4_union(&mut criterion);
    e5_intersection(&mut criterion);
    e6_difference(&mut criterion);
    criterion.final_summary();
}
