//! E9 — Proposition 4.3: estimating a projection query by sampling +
//! low-dimensional convex hull (Algorithm 3) vs the symbolic Fourier–Motzkin
//! elimination, as the number of eliminated variables grows.
//!
//! The paper's claim is asymptotic (`O(2^{e/2}·poly(d+e))` vs `O(2^{2^k})`);
//! the bench reports the measured crossover shape on rotated boxes, where
//! Fourier–Motzkin's intermediate constraint growth is visible.

use cdb_bench::{experiment_criterion, rng};
use cdb_constraint::{qe, Atom, GeneralizedRelation, GeneralizedTuple, LinTerm};
use cdb_geometry::volume::{symmetric_difference_volume, union_volume};
use cdb_reconstruct::ProjectionQueryEstimator;
use cdb_sampler::GeneratorParams;
use criterion::{black_box, Criterion};

/// A (2+k)-dimensional "rotated slab stack": the box `[0,2]×[0,1]` in the
/// first two coordinates, with every extra coordinate constrained between
/// coordinate differences, so eliminating it produces constraint growth.
fn stacked_body(extra: usize) -> GeneralizedTuple {
    let d = 2 + extra;
    let mut atoms = Vec::new();
    // Base box.
    let mut c = vec![0i64; d];
    c[0] = -1;
    atoms.push(Atom::le_from_ints(&c, 0));
    c = vec![0i64; d];
    c[0] = 1;
    atoms.push(Atom::le_from_ints(&c, -2));
    c = vec![0i64; d];
    c[1] = -1;
    atoms.push(Atom::le_from_ints(&c, 0));
    c = vec![0i64; d];
    c[1] = 1;
    atoms.push(Atom::le_from_ints(&c, -1));
    // Each extra coordinate z_i satisfies  x0 - x1 - 1 <= z_i <= x0 + x1 + 1.
    for i in 2..d {
        let mut lo = vec![0i64; d];
        lo[0] = 1;
        lo[1] = -1;
        lo[i] = -1;
        atoms.push(Atom::new(
            LinTerm::from_ints(&lo, -1),
            cdb_constraint::CompOp::Le,
        ));
        let mut hi = vec![0i64; d];
        hi[0] = -1;
        hi[1] = -1;
        hi[i] = 1;
        atoms.push(Atom::new(
            LinTerm::from_ints(&hi, -1),
            cdb_constraint::CompOp::Le,
        ));
    }
    GeneralizedTuple::new(d, atoms)
}

fn e9_query_speedup(c: &mut Criterion) {
    let params = GeneratorParams::fast();
    let estimator = ProjectionQueryEstimator::new(params, 0.25, 0.25);
    let mut group = c.benchmark_group("e9_projection_query");
    for eliminated in [1usize, 2, 3] {
        let tuple = stacked_body(eliminated);
        let keep = [0usize, 1];
        let mut r = rng(900 + eliminated as u64);

        // Symbolic baseline: Fourier–Motzkin projection of the tuple.
        let symbolic = qe::project_tuple(&tuple, &keep);
        let symbolic_rel = GeneralizedRelation::from_tuple(symbolic);
        let exact_area = union_volume(&symbolic_rel.to_polytopes());

        // Sampling estimator (Algorithm 3).
        let hull = estimator
            .estimate(&tuple, &keep, Some(200), &mut r)
            .expect("projection is observable");
        let sd = symmetric_difference_volume(&symbolic_rel.to_polytopes(), &[hull]);
        eprintln!(
            "[E9] eliminated={eliminated}: exact_area={exact_area:.4} symmetric_difference={sd:.4} \
             ({:.2}% of exact)",
            100.0 * sd / exact_area
        );

        group.bench_function(format!("fourier_motzkin_k{eliminated}"), |b| {
            b.iter(|| black_box(qe::project_tuple(&tuple, &keep)))
        });
        group.bench_function(format!("sampling_reconstruction_k{eliminated}"), |b| {
            b.iter(|| black_box(estimator.estimate(&tuple, &keep, Some(200), &mut r)))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = experiment_criterion();
    e9_query_speedup(&mut criterion);
    criterion.final_summary();
}
