//! Proof that the walk engine's polytope fast path is allocation-free: a
//! counting `GlobalAlloc` shim wraps the system allocator and the test
//! asserts that thousands of accepted hit-and-run steps perform **zero**
//! heap allocations once the [`WalkScratch`] workspace is warmed up.
//!
//! The shim is the one place in the workspace that needs `unsafe` (a
//! `GlobalAlloc` impl cannot be written without it); the library crates all
//! keep `#![forbid(unsafe_code)]`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cdb_geometry::HPolytope;
use cdb_sampler::walk::{ball_walk_step, hit_and_run_step, WalkScratch};
use cdb_sampler::ConvexBody;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocation and reallocation served to the *current thread*.
/// Per-thread (const-initialized `thread_local`, so the counter itself never
/// allocates and has no destructor): the libtest harness runs its own
/// bookkeeping threads whose allocations must not leak into the measured
/// windows.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns the number of heap allocations the current thread
/// performed inside it.
fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.with(Cell::get);
    let out = f();
    let after = ALLOCATIONS.with(Cell::get);
    (after - before, out)
}

/// One test function on purpose (scenarios run sequentially): even with the
/// per-thread counter, keeping a single `#[test]` makes the measured windows
/// independent of libtest's scheduling.
#[test]
fn walk_steps_are_allocation_free() {
    hit_and_run_scenario();
    ball_walk_scenario();
    telescoping_ball_intersection_scenario();
}

fn hit_and_run_scenario() {
    let polytope = HPolytope::hypercube(6, 1.0);
    let body = ConvexBody::from_polytope(&polytope).expect("hypercube is well-bounded");
    let mut rng = StdRng::seed_from_u64(42);
    let mut scratch = WalkScratch::new();
    scratch.begin(&body, body.center());

    // Warm up: a few steps to fault in any lazily allocated buffers.
    for _ in 0..64 {
        hit_and_run_step(&body, &mut scratch, &mut rng);
    }

    let mut accepted = 0usize;
    let (allocs, ()) = allocations_during(|| {
        // Far more than WalkScratch::REFRESH_PERIOD accepted steps, so the
        // periodic residual recompute is counted too.
        for _ in 0..5000 {
            if hit_and_run_step(&body, &mut scratch, &mut rng) {
                accepted += 1;
            }
        }
    });
    assert!(accepted > 2500, "hit-and-run barely moved: {accepted}");
    assert!(
        accepted > WalkScratch::REFRESH_PERIOD,
        "window too small to cover a refresh: {accepted}"
    );
    assert_eq!(
        allocs, 0,
        "polytope hit-and-run fast path allocated {allocs} times over {accepted} accepted steps"
    );
}

fn ball_walk_scenario() {
    let polytope = HPolytope::hypercube(4, 1.0);
    let body = ConvexBody::from_polytope(&polytope).expect("hypercube is well-bounded");
    let delta = body.r_inf() / (body.dim() as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(7);
    let mut scratch = WalkScratch::new();
    scratch.begin(&body, body.center());
    for _ in 0..64 {
        ball_walk_step(&body, &mut scratch, delta, &mut rng);
    }
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..2000 {
            ball_walk_step(&body, &mut scratch, delta, &mut rng);
        }
    });
    assert_eq!(allocs, 0, "ball walk allocated {allocs} times");
}

fn telescoping_ball_intersection_scenario() {
    // The volume estimator walks K ∩ B(c, r): the wrapped oracle must stay on
    // the incremental path.
    let polytope = HPolytope::hypercube(5, 1.0);
    let body = ConvexBody::from_polytope(&polytope).expect("hypercube is well-bounded");
    let shrunk = body.intersect_ball(0.9 * body.r_sup());
    let mut rng = StdRng::seed_from_u64(11);
    let mut scratch = WalkScratch::new();
    scratch.begin(&shrunk, shrunk.center());
    for _ in 0..64 {
        hit_and_run_step(&shrunk, &mut scratch, &mut rng);
    }
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..2000 {
            hit_and_run_step(&shrunk, &mut scratch, &mut rng);
        }
    });
    assert_eq!(allocs, 0, "ball-intersection walk allocated {allocs} times");
}
