//! Property tests for the closed-form `PolyBody` chord intervals.
//!
//! Hit-and-run used to pay a 120-evaluation bisection per step on polynomial
//! oracles; `PolyBody::chord_interval` (via `PolyConstraint::line_quadratic`)
//! replaces that with per-constraint quadratic roots. These properties pin
//! the closed form to the membership oracle on random polytopes and random
//! ball/ellipsoid intersections:
//!
//! * both returned endpoints lie inside the body,
//! * points just outside either endpoint lie outside,
//! * the closed-form interval agrees with the old bisection path.
//!
//! All bodies are generated with the origin strictly inside (constraint
//! slack at least 0.4 at the origin), which bounds the boundary-crossing
//! slope from below and keeps the "just outside" margin numerically robust.

use cdb_constraint::poly::{Monomial, PolyBody, PolyConstraint};
use cdb_sampler::MembershipOracle;
use proptest::prelude::*;

/// Extent cap used by the bisection fallback in the walk layer; all test
/// bodies fit well inside it.
const MAX_EXTENT: f64 = 8.0;

fn point_on_line(point: &[f64], dir: &[f64], t: f64) -> Vec<f64> {
    point.iter().zip(dir).map(|(p, d)| p + t * d).collect()
}

/// The 60-step bisection of `walk::chord`, replicated against the membership
/// oracle (the path `chord_interval` replaces).
fn bisect_chord(body: &PolyBody, point: &[f64], dir: &[f64]) -> (f64, f64) {
    let contains = |t: f64| MembershipOracle::contains(body, &point_on_line(point, dir, t));
    let boundary = |sign: f64| -> f64 {
        let mut lo = 0.0f64;
        let mut hi = MAX_EXTENT;
        if contains(sign * hi) {
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if contains(sign * mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    (-boundary(-1.0), boundary(1.0))
}

/// Shared property: closed-form chord from the origin exists, its endpoints
/// are inside, just-outside points are outside, and it matches bisection.
fn check_chord_properties(body: &PolyBody, dir: &[f64]) -> Result<(), String> {
    let origin = vec![0.0; body.arity()];
    prop_assert!(
        MembershipOracle::contains(body, &origin),
        "test bodies contain the origin by construction"
    );
    let (lo, hi) = MembershipOracle::chord_interval(body, &origin, dir)
        .expect("degree-2 bodies have closed-form chords");
    prop_assert!(
        lo < 0.0 && hi > 0.0,
        "chord must straddle the origin: ({lo}, {hi})"
    );
    prop_assert!(
        hi < MAX_EXTENT && lo > -MAX_EXTENT,
        "test bodies are bounded"
    );

    // Endpoints (nudged inward by less than the oracle can resolve a
    // boundary crossing) are inside.
    let eps = 1e-7;
    prop_assert!(
        MembershipOracle::contains(body, &point_on_line(&origin, dir, hi - eps)),
        "upper endpoint escaped"
    );
    prop_assert!(
        MembershipOracle::contains(body, &point_on_line(&origin, dir, lo + eps)),
        "lower endpoint escaped"
    );

    // Points just outside either endpoint are outside.
    let step = 1e-3;
    prop_assert!(
        !MembershipOracle::contains(body, &point_on_line(&origin, dir, hi + step)),
        "point beyond the upper endpoint is still inside"
    );
    prop_assert!(
        !MembershipOracle::contains(body, &point_on_line(&origin, dir, lo - step)),
        "point beyond the lower endpoint is still inside"
    );

    // Agreement with the old bisection path.
    let (blo, bhi) = bisect_chord(body, &origin, dir);
    prop_assert!(
        (lo - blo).abs() < 1e-5 && (hi - bhi).abs() < 1e-5,
        "closed form ({lo:.8}, {hi:.8}) vs bisection ({blo:.8}, {bhi:.8})"
    );
    Ok(())
}

/// A random bounded polytope as a `PolyBody` of degree-1 constraints: the box
/// `[-1.5, 1.5]^d` cut by random halfspaces `a·x ≤ offset` with
/// `offset ≥ 0.4·‖a‖∞·d`, so the origin keeps slack.
fn linear_body(dim: usize, cuts: Vec<(Vec<f64>, f64)>) -> PolyBody {
    let mut constraints = Vec::new();
    for i in 0..dim {
        for sign in [1.0, -1.0] {
            let mut e = vec![0u32; dim];
            e[i] = 1;
            constraints.push(PolyConstraint::new(
                dim,
                vec![Monomial::new(sign, e), Monomial::new(-1.5, vec![0; dim])],
            ));
        }
    }
    for (normal, offset) in cuts {
        let mut monomials: Vec<Monomial> = Vec::new();
        for (i, &a) in normal.iter().take(dim).enumerate() {
            let mut e = vec![0u32; dim];
            e[i] = 1;
            monomials.push(Monomial::new(a, e));
        }
        monomials.push(Monomial::new(-offset.max(0.4), vec![0; dim]));
        constraints.push(PolyConstraint::new(dim, monomials));
    }
    PolyBody::new(dim, constraints, true)
}

fn direction(dim: usize, raw: &[f64]) -> Option<Vec<f64>> {
    let norm: f64 = raw[..dim].iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 0.1 {
        return None;
    }
    Some(raw[..dim].iter().map(|x| x / norm).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chords_on_random_polytopes(
        normals in proptest::collection::vec(
            (proptest::collection::vec(-1.0f64..1.0, 4), 0.4f64..2.0), 1..5),
        raw_dir in proptest::collection::vec(-1.0f64..1.0, 4),
        dim in 2usize..=4,
    ) {
        let Some(dir) = direction(dim, &raw_dir) else { return Ok(()) };
        let body = linear_body(dim, normals);
        check_chord_properties(&body, &dir)?;
    }

    #[test]
    fn chords_on_random_ball_ellipsoid_intersections(
        c1 in proptest::collection::vec(-0.3f64..0.3, 3),
        r1 in 0.7f64..1.5,
        c2 in proptest::collection::vec(-0.3f64..0.3, 3),
        axes in proptest::collection::vec(0.7f64..2.0, 3),
        raw_dir in proptest::collection::vec(-1.0f64..1.0, 3),
        dim in 2usize..=3,
    ) {
        let Some(dir) = direction(dim, &raw_dir) else { return Ok(()) };
        let ball = PolyBody::ball(&c1[..dim], r1);
        let ellipsoid = PolyBody::ellipsoid(&c2[..dim], &axes[..dim]);
        let lens = ball.intersect(&ellipsoid);
        check_chord_properties(&lens, &dir)?;
    }

    #[test]
    fn cubic_bodies_fall_back_to_bisection(
        coeff in 0.5f64..2.0,
    ) {
        // x³ ≤ 1-ish bodies have no closed form: chord_interval is None and
        // the walk layer bisects instead.
        let cubic = PolyBody::new(
            1,
            vec![PolyConstraint::new(
                1,
                vec![Monomial::new(coeff, vec![3]), Monomial::new(-1.0, vec![0])],
            )],
            true,
        );
        prop_assert!(MembershipOracle::chord_interval(&cubic, &[0.0], &[1.0]).is_none());
    }
}
