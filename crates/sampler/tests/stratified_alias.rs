//! Property tests for the stratified layer's Vose alias table.
//!
//! The alias table is the load-bearing piece of the stratified cell
//! selector: if it loses probability mass, strands a positive-weight cell,
//! or distorts the weight proportions, the projection generator's output
//! distribution silently drifts — the statistical gates would eventually
//! notice, but at much coarser resolution. These properties pin the table
//! itself:
//!
//! * construction conserves mass: the effective per-index probabilities sum
//!   to 1 within an ulp-scaled bound,
//! * every positive-weight index is reachable and every zero-weight index
//!   is unreachable (exactly — zero cells are never alias donees),
//! * a 64-cell chi-square draw test matches the input weights,
//! * degenerate inputs (single cell, zero-weight cells, near-equal weights)
//!   construct without panicking and keep the proportions.

use cdb_sampler::diagnostics;
use cdb_sampler::AliasTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weight vectors of 1..=64 entries in `[0, 1000)` with at least one
/// strictly positive entry (the constructible domain).
fn weight_vectors() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1000.0, 1..=64).prop_map(|mut w| {
        if !w.iter().any(|&x| x > 0.0) {
            w[0] = 1.0;
        }
        w
    })
}

proptest! {
    #[test]
    fn construction_conserves_mass(weights in weight_vectors()) {
        let table = AliasTable::new(&weights).expect("positive total weight");
        let total: f64 = (0..table.len())
            .map(|i| table.effective_probability(i))
            .sum();
        // Vose construction does O(n) additions per slot; allow an
        // n-scaled ulp budget around 1.
        let bound = weights.len() as f64 * 16.0 * f64::EPSILON;
        prop_assert!(
            (total - 1.0).abs() <= bound,
            "mass {total} drifted beyond {bound}"
        );
    }

    #[test]
    fn effective_probabilities_match_the_weights(weights in weight_vectors()) {
        let table = AliasTable::new(&weights).expect("positive total weight");
        let sum: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let want = w / sum;
            let got = table.effective_probability(i);
            prop_assert!(
                (got - want).abs() <= 1e-9 * (1.0 + want),
                "index {i}: effective {got} vs weight share {want}"
            );
        }
    }

    #[test]
    fn zero_weight_indices_are_unreachable(
        weights in weight_vectors(),
        zero_at in proptest::collection::vec(0usize..64, 1..8),
    ) {
        // Punch zero-weight holes into the vector (keeping index 0
        // positive), then check the holes get *exactly* zero probability: a
        // zero-weight slot is never an alias donee, so its threshold is 0
        // and nothing aliases into it.
        let mut weights = weights;
        if weights.len() > 1 {
            for &z in &zero_at {
                let idx = 1 + z % (weights.len() - 1);
                weights[idx] = 0.0;
            }
        }
        weights[0] = weights[0].max(1.0);
        let table = AliasTable::new(&weights).expect("positive total weight");
        let mut rng = StdRng::seed_from_u64(0xA11A5);
        for _ in 0..256 {
            let drawn = table.sample(&mut rng);
            prop_assert!(weights[drawn] > 0.0, "drew zero-weight index {drawn}");
        }
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                prop_assert_eq!(table.effective_probability(i), 0.0);
            } else {
                prop_assert!(table.effective_probability(i) > 0.0);
            }
        }
    }
}

#[test]
fn chi_square_draws_match_the_weights_on_64_cells() {
    // A fixed 64-cell weight profile with 3 orders of magnitude of spread;
    // the empirical histogram of 64k draws must pass the loose chi-square
    // bound against the exact expectations.
    let weights: Vec<f64> = (0..64)
        .map(|i| match i % 4 {
            0 => 0.05,
            1 => 1.0,
            2 => 7.5,
            _ => 40.0,
        })
        .collect();
    let table = AliasTable::new(&weights).unwrap();
    let n = 64 * 1000usize;
    let mut rng = StdRng::seed_from_u64(0xC811);
    let mut observed = vec![0usize; 64];
    for _ in 0..n {
        observed[table.sample(&mut rng)] += 1;
    }
    let sum: f64 = weights.iter().sum();
    let expected: Vec<f64> = weights.iter().map(|w| w / sum * n as f64).collect();
    let stat = diagnostics::chi_square_statistic(&observed, &expected);
    let bound = diagnostics::chi_square_loose_bound(63);
    assert!(stat < bound, "chi-square {stat} exceeds {bound}");
}

#[test]
fn single_cell_tables_always_return_zero() {
    let table = AliasTable::new(&[0.125]).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..64 {
        assert_eq!(table.sample(&mut rng), 0);
    }
    assert_eq!(table.len(), 1);
    assert!((table.effective_probability(0) - 1.0).abs() < 1e-15);
}

#[test]
fn near_equal_weights_stay_near_uniform() {
    // Weights 1 ± k·ε straddle the donor/receiver threshold of the Vose
    // scaling — the classic numerical corner. Construction must not panic
    // and every probability must stay within ulps of uniform.
    let n = 33usize;
    let weights: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 - 16.0) * f64::EPSILON)
        .collect();
    let table = AliasTable::new(&weights).unwrap();
    for i in 0..n {
        let p = table.effective_probability(i);
        assert!(
            (p - 1.0 / n as f64).abs() < 1e-12,
            "index {i}: probability {p}"
        );
    }
    // Sampling still reaches (essentially) every index.
    let mut rng = StdRng::seed_from_u64(7);
    let mut seen = vec![false; n];
    for _ in 0..20_000 {
        seen[table.sample(&mut rng)] = true;
    }
    assert!(seen.iter().filter(|&&s| s).count() > n - 3);
}

#[test]
fn degenerate_inputs_are_rejected_not_panicked() {
    assert!(AliasTable::new(&[]).is_none());
    assert!(AliasTable::new(&[0.0; 16]).is_none());
    assert!(AliasTable::new(&[1.0, f64::NAN]).is_none());
    assert!(AliasTable::new(&[1.0, -1e-12]).is_none());
    assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_none());
}
