//! Contract of the memoized compensation-weight subsystem: the cache is
//! *invisible* to the output stream.
//!
//! The cylinder weight of a γ-grid cell is a pure function of the cell (and,
//! for the estimated strategy, of the generator's weight seed), so a
//! generator with memoization enabled, bounded, or disabled must produce
//! bitwise identical trajectories from the same seeds — hits and misses
//! differ only in cost. These tests pin that contract for both fill
//! strategies, the auto strategy resolution, and the clone semantics the
//! batch workers rely on.
//!
//! Store audit (PR 7): every generator in this file is built directly, so
//! its weight cache and selector are *private* — equivalent to running
//! against a disabled prepared-relation store — and the legacy cases below
//! stay pinned to that baseline verbatim. The warm-state tests at the end
//! cover the new sharing path: `export_warm_state` / `import_warm_state`
//! move a warm cache + selector between generators, and must be exactly as
//! invisible as the private caches are.

use cdb_sampler::{
    CellSelection, FiberVolume, GeneratorParams, ProjectionGenerator, ProjectionParams,
    RelationGenerator, RelationVolumeEstimator, SeedSequence,
};
use cdb_workloads::projection::{deep_cone, deep_cone_fiber_volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cdb_constraint::{Atom, GeneralizedTuple};

/// The Figure-1 triangle `0 ≤ x ≤ 1, 0 ≤ y ≤ x`.
fn figure1_triangle() -> GeneralizedTuple {
    GeneralizedTuple::new(
        2,
        vec![
            Atom::le_from_ints(&[-1, 0], 0),
            Atom::le_from_ints(&[1, 0], -1),
            Atom::le_from_ints(&[0, -1], 0),
            Atom::le_from_ints(&[-1, 1], 0),
        ],
    )
}

fn base_params() -> GeneratorParams {
    GeneratorParams {
        gamma: 0.05,
        ..GeneratorParams::fast()
    }
}

/// Builds the triangle projection generator under the given weight params,
/// from a fixed constructor seed.
fn generator_with(params: ProjectionParams) -> ProjectionGenerator {
    let mut rng = StdRng::seed_from_u64(4242);
    ProjectionGenerator::new_with(&figure1_triangle(), &[0], params, &mut rng).unwrap()
}

/// Draws a fixed sequential stream and returns the raw bits of every sample.
fn sample_bits(generator: &mut ProjectionGenerator, n: usize) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(999);
    generator
        .sample_many(n, &mut rng)
        .into_iter()
        .map(|p| p.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn exact_strategy_is_cache_invariant_bitwise() {
    // Pinned to the rejection loop: this is the compensation hot path whose
    // cache the test has always gated (the default now resolves to
    // stratified selection, covered by its own invariance tests below).
    let base = ProjectionParams::new(base_params()).with_cell_selection(CellSelection::Rejection);
    let mut cached = generator_with(base);
    let mut tiny = generator_with(base.with_cache_capacity(8));
    let mut uncached = generator_with(base.with_cache_capacity(0));
    assert_eq!(cached.resolved_fiber_volume(), FiberVolume::Exact);

    let a = sample_bits(&mut cached, 150);
    let b = sample_bits(&mut tiny, 150);
    let c = sample_bits(&mut uncached, 150);
    assert!(!a.is_empty());
    assert_eq!(a, b, "a capacity-bounded cache changed the trajectory");
    assert_eq!(a, c, "disabling the cache changed the trajectory");

    // The contract is not vacuous: the full cache actually memoized.
    assert!(cached.weight_cache().hits() > 0, "cache never hit");
    assert!(
        !uncached.weight_cache().is_enabled(),
        "capacity 0 must disable the cache"
    );
}

#[test]
fn estimated_strategy_is_cache_invariant_bitwise() {
    let base = ProjectionParams::new(base_params())
        .with_fiber_volume(FiberVolume::Estimated)
        .with_cell_selection(CellSelection::Rejection);
    let mut cached = generator_with(base);
    let mut uncached = generator_with(base.with_cache_capacity(0));
    assert_eq!(cached.resolved_fiber_volume(), FiberVolume::Estimated);

    let a = sample_bits(&mut cached, 60);
    let b = sample_bits(&mut uncached, 60);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "estimated weights must be pure functions of the cell: caching them \
         may never change the stream"
    );
    assert!(cached.weight_cache().hits() > 0);
}

#[test]
fn warm_clones_draw_the_same_stream_as_cold_generators() {
    // Batch workers clone a (possibly warmed) generator; a warm cache must
    // not shift the worker's stream.
    let mut original = generator_with(ProjectionParams::new(base_params()));
    let _ = sample_bits(&mut original, 100); // warm the cache
    assert!(original.weight_cache().len() > 0);
    let mut warm_clone = original.clone();
    let mut cold = generator_with(ProjectionParams::new(base_params()));
    assert_eq!(
        sample_bits(&mut warm_clone, 80),
        sample_bits(&mut cold, 80),
        "a warmed clone diverged from a cold generator"
    );
}

#[test]
fn batch_and_sequential_weights_agree_across_thread_counts() {
    // End-to-end: the default projection path (cache on) is thread-count
    // invariant, including the estimated strategy.
    for mode in [FiberVolume::Exact, FiberVolume::Estimated] {
        let params = ProjectionParams::new(base_params()).with_fiber_volume(mode);
        let seq = SeedSequence::new(0xFEED);
        let baseline = generator_with(params).sample_batch(48, &seq, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                baseline,
                generator_with(params).sample_batch(48, &seq, threads),
                "{mode:?}: sample_batch differs at {threads} threads"
            );
        }
        assert!(baseline.iter().filter(|p| p.is_some()).count() > 24);
    }
}

#[test]
fn auto_strategy_resolves_by_fiber_dimension() {
    let mut rng = StdRng::seed_from_u64(7);
    let shallow = ProjectionGenerator::new(&deep_cone(4), &[0], base_params(), &mut rng).unwrap();
    assert_eq!(shallow.fiber_dim(), 3);
    assert_eq!(shallow.resolved_fiber_volume(), FiberVolume::Exact);

    // Fiber dimension 9: C(20, 9) ≈ 168k vertex-enumeration bases per
    // weight — auto must pick the estimator.
    let deep = ProjectionGenerator::new(&deep_cone(10), &[0], base_params(), &mut rng).unwrap();
    assert_eq!(deep.fiber_dim(), 9);
    assert_eq!(deep.resolved_fiber_volume(), FiberVolume::Estimated);
}

#[test]
fn estimated_weights_track_the_closed_form_on_the_deep_cone() {
    // The deep cone's fiber above x0 = t is [0, t]^{d−1} with volume
    // t^{d−1}: the estimated weight of a cell must land within the
    // telescoping estimator's (loose, seeded) error of the closed form.
    let d = 10usize;
    let mut rng = StdRng::seed_from_u64(11);
    let mut generator =
        ProjectionGenerator::new(&deep_cone(d), &[0], base_params(), &mut rng).unwrap();
    assert_eq!(generator.resolved_fiber_volume(), FiberVolume::Estimated);
    let step = generator.grid().step();
    let cell = step.powi(d as i32 - 1);
    for t in [0.4f64, 0.8] {
        let snapped = (t / step).round() * step;
        let expected = (deep_cone_fiber_volume(d, snapped) / cell).max(1.0);
        let got = generator.compensation_weight(&[t]);
        let ratio = got / expected;
        assert!(
            (0.2..5.0).contains(&ratio),
            "estimated weight at t = {t}: got {got:.3e}, closed form {expected:.3e} \
             (ratio {ratio:.2})"
        );
        // And the memo returns the exact same bits on the next probe.
        assert_eq!(generator.compensation_weight(&[t]).to_bits(), got.to_bits());
    }
}

#[test]
fn volume_estimates_are_cache_invariant() {
    let base = ProjectionParams::new(base_params());
    let seq = SeedSequence::new(0xAB);
    let with_cache = generator_with(base).estimate_volume_batch(4, &seq, 0);
    let without = generator_with(base.with_cache_capacity(0)).estimate_volume_batch(4, &seq, 0);
    assert_eq!(with_cache, without);
    assert!(with_cache.iter().all(|v| v.is_some()));
}

#[test]
fn stratified_output_is_cache_state_invariant_bitwise() {
    // The stratified selector enumerates every candidate cell exactly once
    // through the same snap→probe→fill weight path the rejection loop uses;
    // its weights are pure functions of the cell, so a warm, bounded, or
    // disabled cache must leave the alias table — and with it every emitted
    // bit — unchanged.
    let base = ProjectionParams::new(base_params()).with_cell_selection(CellSelection::Stratified);
    let mut warm = generator_with(base);
    let mut tiny = generator_with(base.with_cache_capacity(8));
    let mut disabled = generator_with(base.with_cache_capacity(0));
    assert_eq!(warm.resolved_cell_selection(), CellSelection::Stratified);

    let a = sample_bits(&mut warm, 150);
    let b = sample_bits(&mut tiny, 150);
    let c = sample_bits(&mut disabled, 150);
    assert_eq!(a.len(), 150, "stratified draws never fail");
    assert_eq!(
        a, b,
        "a capacity-bounded cache changed the stratified stream"
    );
    assert_eq!(a, c, "disabling the cache changed the stratified stream");

    // A warmed clone (cache + built selector) agrees with a cold build.
    let mut warm_clone = warm.clone();
    let mut cold = generator_with(base);
    assert_eq!(
        sample_bits(&mut warm_clone, 80),
        sample_bits(&mut cold, 80),
        "a warmed stratified clone diverged from a cold generator"
    );
}

#[test]
fn coarse_to_fine_output_is_cache_state_invariant_bitwise() {
    // Same contract for the cascade, whose fine tables are *built lazily
    // per visited coarse cell* — laziness must be as invisible as the
    // weight cache itself.
    let base = ProjectionParams::new(base_params())
        .with_cell_selection(CellSelection::CoarseToFine)
        .with_max_enumerated_cells(16);
    let mut warm = generator_with(base);
    let mut disabled = generator_with(base.with_cache_capacity(0));
    assert_eq!(warm.resolved_cell_selection(), CellSelection::CoarseToFine);

    let a = sample_bits(&mut warm, 120);
    let b = sample_bits(&mut disabled, 120);
    assert!(a.len() > 100, "cascade rejected too much: {}", a.len());
    assert_eq!(a, b, "disabling the cache changed the cascade stream");
}

#[test]
fn stratified_batches_are_thread_count_invariant() {
    for (selection, budget) in [
        (CellSelection::Stratified, 1usize << 16),
        (CellSelection::CoarseToFine, 16),
    ] {
        let params = ProjectionParams::new(base_params())
            .with_cell_selection(selection)
            .with_max_enumerated_cells(budget);
        let seq = SeedSequence::new(0xF00D);
        let baseline = generator_with(params).sample_batch(48, &seq, 1);
        for threads in [2usize, 8, 0] {
            assert_eq!(
                baseline,
                generator_with(params).sample_batch(48, &seq, threads),
                "{selection:?}: sample_batch differs at {threads} threads"
            );
        }
        assert!(baseline.iter().filter(|p| p.is_some()).count() > 40);
    }
}

#[test]
fn rejection_and_stratified_volumes_agree_on_the_triangle() {
    // The projection of the triangle onto x has length exactly 1. The
    // rejection estimator is a Monte-Carlo (ε, δ) estimate; the stratified
    // estimate is a deterministic Riemann sum at grid resolution. Both must
    // land inside the (loose, seeded) ε-band around the truth — and
    // therefore within the combined budget of each other.
    let mut rng = StdRng::seed_from_u64(0x7E57);
    let rejection =
        ProjectionParams::new(base_params()).with_cell_selection(CellSelection::Rejection);
    let mut gen_rej = generator_with(rejection);
    let v_rej = gen_rej.estimate_volume(&mut rng).unwrap();
    let stratified =
        ProjectionParams::new(base_params()).with_cell_selection(CellSelection::Stratified);
    let mut gen_str = generator_with(stratified);
    let v_str = gen_str.estimate_volume(&mut rng).unwrap();
    assert!((v_rej - 1.0).abs() < 0.45, "rejection volume {v_rej}");
    assert!((v_str - 1.0).abs() < 0.05, "stratified volume {v_str}");
    assert!(
        (v_rej - v_str).abs() < 0.5,
        "strategies disagree: rejection {v_rej} vs stratified {v_str}"
    );
}

// ---------------------------------------------------------------------------
// Warm-state export/import (the prepared-relation store's sharing path)
// ---------------------------------------------------------------------------

#[test]
fn imported_warm_state_is_bitwise_invisible() {
    // A warm generator exports its cache + selector; a fresh peer imports
    // them. Both the peer and an untouched cold generator must then draw
    // bitwise identical streams: warm state only skips recomputation.
    for (label, mode) in [
        ("exact", FiberVolume::Exact),
        ("estimated", FiberVolume::Estimated),
    ] {
        // Rejection selection: the compensation loop consults the weight
        // cache per sample, so imported cells demonstrably get hit (the
        // stratified selector transfer has its own test below).
        let proj = ProjectionParams::new(base_params())
            .with_fiber_volume(mode)
            .with_cell_selection(CellSelection::Rejection);
        let mut donor = generator_with(proj);
        let _ = sample_bits(&mut donor, 256); // fill the cache and selector
        let warm = donor.export_warm_state();
        assert!(warm.warm_cells() > 0, "{label}: donor stayed cold");

        let mut importer = generator_with(proj);
        importer.import_warm_state(&warm);
        let mut cold = generator_with(proj);
        assert_eq!(
            sample_bits(&mut importer, 192),
            sample_bits(&mut cold, 192),
            "{label}: imported warm state changed the output stream"
        );
        // The import did pay off: the importer answers from the warm cells.
        assert!(
            importer.weight_cache().hits() > 0,
            "{label}: importer never hit its imported cells"
        );
    }
}

#[test]
fn warm_exports_are_canonical_regardless_of_fill_history() {
    // Two donors warm their caches through *different* sampling histories.
    // Exports sort cells by integer key, so importing either must leave the
    // importer in the same table state — pinned here by comparing the
    // subsequent streams bitwise.
    let proj = ProjectionParams::new(base_params())
        .with_fiber_volume(FiberVolume::Exact)
        .with_cell_selection(CellSelection::Rejection);
    let mut donor_a = generator_with(proj);
    let _ = sample_bits(&mut donor_a, 256);
    let mut donor_b = generator_with(proj);
    // Different history: two shorter, differently-seeded passes.
    let mut rng = StdRng::seed_from_u64(0x5107);
    let _ = donor_b.sample_many(96, &mut rng);
    let _ = sample_bits(&mut donor_b, 96);

    let mut via_a = generator_with(proj);
    via_a.import_warm_state(&donor_a.export_warm_state());
    let mut via_b = generator_with(proj);
    via_b.import_warm_state(&donor_b.export_warm_state());
    assert_eq!(
        sample_bits(&mut via_a, 160),
        sample_bits(&mut via_b, 160),
        "imports from different fill histories diverged"
    );
}

#[test]
fn warm_state_carries_the_stratified_selector() {
    let proj = ProjectionParams::new(base_params()).with_cell_selection(CellSelection::Stratified);
    let mut donor = generator_with(proj);
    let _ = sample_bits(&mut donor, 64);
    let warm = donor.export_warm_state();
    assert!(warm.has_selector(), "sampling must build the selector");
    let mut importer = generator_with(proj);
    importer.import_warm_state(&warm);
    let mut cold = generator_with(proj);
    assert_eq!(
        sample_bits(&mut importer, 128),
        sample_bits(&mut cold, 128),
        "imported stratified selector changed the output stream"
    );
}
