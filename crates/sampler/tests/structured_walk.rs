//! Bitwise-equivalence gates for the structure-aware constraint kernels.
//!
//! The `ConstraintMatrix` representations (axis-aligned, CSR, dense) are a
//! pure performance choice: the structured kernels replicate the dense
//! 4-accumulator summation order exactly (see the reproducibility notes in
//! `cdb_linalg::kernels`), so switching a polytope between its detected
//! representation and [`HPolytope::force_dense`] must never change a single
//! bit of any matvec, chord interval, or sampled point. These properties
//! pin that contract on randomly generated structured polytopes from
//! `cdb_workloads::structured` — the exact bodies the perf report's
//! structured rows measure — for:
//!
//! * the raw `A·x` matrix–vector products,
//! * closed-form and incremental-state chord intervals on random lines,
//! * whole hit-and-run trajectories and `DfkSampler` point streams.

use cdb_geometry::HPolytope;
use cdb_sampler::walk::{random_direction, walk, WalkScratch};
use cdb_sampler::{ConvexBody, DfkSampler, GeneratorParams, MembershipOracle, WalkKind};
use cdb_workloads::structured;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three structured families, keyed by a proptest-chosen seed. Returns
/// the detected-representation polytope plus its expected kind.
fn structured_polytope(family: u8, dim: usize, seed: u64) -> (HPolytope, &'static str) {
    let mut rng = StdRng::seed_from_u64(seed);
    match family % 3 {
        0 => {
            let (p, _vol) = structured::box_stack(dim, 1 + (seed % 3) as usize, 0.5, &mut rng);
            (p, "axis")
        }
        1 => (
            structured::banded_overlay(dim.max(8), 0.5, &mut rng),
            "sparse",
        ),
        _ => (
            structured::sat_sparse_system(dim.max(8), 2 * dim, 3, 0.1, &mut rng),
            "sparse",
        ),
    }
}

/// An interior point: the polytope families are all built around the box
/// center, which their generators keep strictly feasible.
fn interior_point(p: &HPolytope) -> Vec<f64> {
    let (lo, hi) = p.bounding_box().expect("structured bodies are bounded");
    lo.as_slice()
        .iter()
        .zip(hi.as_slice())
        .map(|(&l, &h)| 0.5 * (l + h))
        .collect()
}

/// Long trajectories that cross the `WalkScratch::REFRESH_PERIOD` boundary
/// (the proptest trajectories below stay short): the anti-drift recompute
/// goes through `walk_state_init`, which also dispatches on the
/// representation, so it must not break bitwise equality either.
#[test]
fn refresh_crossing_trajectories_are_bitwise_dense() {
    for family in 0u8..3 {
        let (p, _) = structured_polytope(family, 10, 97 + family as u64);
        let dense = p.force_dense();
        let body_s = ConvexBody::from_polytope(&p).expect("well-bounded");
        let body_d = ConvexBody::from_polytope(&dense).expect("well-bounded");
        let start = cdb_linalg::Vector::from(interior_point(&p));
        let steps = WalkScratch::REFRESH_PERIOD + 128;
        let mut scratch = WalkScratch::new();
        let mut rng = StdRng::seed_from_u64(4242);
        let end_s = walk(
            &body_s,
            &start,
            WalkKind::HitAndRun,
            steps,
            &mut rng,
            &mut scratch,
        );
        let mut rng = StdRng::seed_from_u64(4242);
        let end_d = walk(
            &body_d,
            &start,
            WalkKind::HitAndRun,
            steps,
            &mut rng,
            &mut scratch,
        );
        for (s, d) in end_s.as_slice().iter().zip(end_d.as_slice()) {
            assert_eq!(
                s.to_bits(),
                d.to_bits(),
                "family {family}: trajectory diverged across the refresh: {s} vs {d}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `A·x` through the detected representation is bitwise the dense product.
    #[test]
    fn matvec_is_bitwise_dense(
        family in 0u8..3,
        dim in 8usize..24,
        seed in 0u64..1_000_000,
        raw in proptest::collection::vec(-2.0f64..2.0, 24),
    ) {
        let (p, kind) = structured_polytope(family, dim, seed);
        prop_assert_eq!(p.matrix().kind(), kind, "detection changed");
        let dense = p.force_dense();
        let x = &raw[..p.dim()];
        let mut out_s = vec![0.0; p.n_constraints()];
        let mut out_d = vec![0.0; p.n_constraints()];
        p.matrix().mat_vec_into(x, &mut out_s);
        dense.matrix().mat_vec_into(x, &mut out_d);
        for (i, (s, d)) in out_s.iter().zip(&out_d).enumerate() {
            prop_assert_eq!(s.to_bits(), d.to_bits(), "row {} differs: {} vs {}", i, s, d);
        }
        for i in 0..p.n_constraints() {
            prop_assert_eq!(
                p.matrix().row_dot(i, x).to_bits(),
                dense.matrix().row_dot(i, x).to_bits()
            );
        }
    }

    /// Closed-form and incremental chords agree bitwise across kernels, and
    /// the incremental membership sign-check does too.
    #[test]
    fn chords_are_bitwise_dense(
        family in 0u8..3,
        dim in 8usize..20,
        seed in 0u64..1_000_000,
        dir_seed in 0u64..1_000_000,
        t_frac in 0.05f64..0.95,
    ) {
        let (p, _) = structured_polytope(family, dim, seed);
        let dense = p.force_dense();
        let point = interior_point(&p);
        let dir = random_direction(p.dim(), &mut StdRng::seed_from_u64(dir_seed));

        let cs = p.chord_interval(&point, dir.as_slice()).expect("polytope chord");
        let cd = dense.chord_interval(&point, dir.as_slice()).expect("polytope chord");
        prop_assert_eq!(cs.0.to_bits(), cd.0.to_bits(), "chord lo: {} vs {}", cs.0, cd.0);
        prop_assert_eq!(cs.1.to_bits(), cd.1.to_bits(), "chord hi: {} vs {}", cs.1, cd.1);

        let len = p.walk_state_len().expect("incremental protocol");
        let (mut st_s, mut im_s) = (vec![0.0; len], vec![0.0; len]);
        let (mut st_d, mut im_d) = (vec![0.0; len], vec![0.0; len]);
        p.walk_state_init(&point, &mut st_s);
        dense.walk_state_init(&point, &mut st_d);
        let is_ = p.walk_state_chord(&st_s, dir.as_slice(), &mut im_s);
        let id = dense.walk_state_chord(&st_d, dir.as_slice(), &mut im_d);
        prop_assert_eq!(is_.0.to_bits(), id.0.to_bits());
        prop_assert_eq!(is_.1.to_bits(), id.1.to_bits());
        for (s, d) in st_s.iter().zip(&st_d).chain(im_s.iter().zip(&im_d)) {
            prop_assert_eq!(s.to_bits(), d.to_bits());
        }

        // Membership at an interior parameter of the chord, plus one outside.
        let t_in = is_.0 + t_frac * (is_.1 - is_.0);
        let t_out = is_.1 + (is_.1 - is_.0).max(1e-3);
        prop_assert_eq!(
            p.walk_state_contains(&st_s, &im_s, t_in),
            dense.walk_state_contains(&st_d, &im_d, t_in)
        );
        prop_assert_eq!(
            p.walk_state_contains(&st_s, &im_s, t_out),
            dense.walk_state_contains(&st_d, &im_d, t_out)
        );
    }

    /// Whole hit-and-run trajectories — including the incremental-state
    /// refresh — and DFK sample streams are bitwise identical across kernels.
    #[test]
    fn walk_trajectories_are_bitwise_dense(
        family in 0u8..3,
        dim in 8usize..16,
        seed in 0u64..1_000_000,
        walk_seed in 0u64..1_000_000,
    ) {
        let (p, _) = structured_polytope(family, dim, seed);
        let dense = p.force_dense();
        let body_s = ConvexBody::from_polytope(&p).expect("well-bounded");
        let body_d = ConvexBody::from_polytope(&dense).expect("well-bounded");

        let start = cdb_linalg::Vector::from(interior_point(&p));
        let mut scratch = WalkScratch::new();
        let mut rng = StdRng::seed_from_u64(walk_seed);
        let end_s = walk(&body_s, &start, WalkKind::HitAndRun, 64, &mut rng, &mut scratch);
        let mut rng = StdRng::seed_from_u64(walk_seed);
        let end_d = walk(&body_d, &start, WalkKind::HitAndRun, 64, &mut rng, &mut scratch);
        for (s, d) in end_s.as_slice().iter().zip(end_d.as_slice()) {
            prop_assert_eq!(s.to_bits(), d.to_bits(), "trajectory diverged: {} vs {}", s, d);
        }

        let params = GeneratorParams::fast();
        let mut rng = StdRng::seed_from_u64(walk_seed);
        let sampler_s = DfkSampler::new(body_s, params, &mut rng);
        let mut rng = StdRng::seed_from_u64(walk_seed);
        let sampler_d = DfkSampler::new(body_d, params, &mut rng);
        let mut rng_s = StdRng::seed_from_u64(walk_seed ^ 0x5eed);
        let mut rng_d = StdRng::seed_from_u64(walk_seed ^ 0x5eed);
        for _ in 0..3 {
            let xs = sampler_s.sample(&mut rng_s);
            let xd = sampler_d.sample(&mut rng_d);
            for (s, d) in xs.iter().zip(&xd) {
                prop_assert_eq!(s.to_bits(), d.to_bits(), "sample diverged: {} vs {}", s, d);
            }
        }
    }
}
