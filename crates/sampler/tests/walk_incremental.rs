//! Correctness gates for the incremental walk engine: the cached chord state
//! must agree with the closed-form oracle answers, and the `axpy`-updated
//! residuals must not drift measurably from a fresh `b − A·x` recompute over
//! long chains (the walk refreshes the state every
//! `WalkScratch::REFRESH_PERIOD` accepted steps precisely to bound this).

use std::sync::Arc;

use cdb_geometry::{Ellipsoid, HPolytope};
use cdb_linalg::Vector;
use cdb_sampler::walk::{hit_and_run_step, walk, WalkScratch};
use cdb_sampler::{ConvexBody, MembershipOracle, WalkKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn simplex_body(d: usize) -> ConvexBody {
    ConvexBody::from_polytope(&HPolytope::standard_simplex(d)).expect("simplex is well-bounded")
}

/// Random interior-ish point of the standard simplex.
fn simplex_point<R: Rng>(d: usize, rng: &mut R) -> Vector {
    let mut p = Vector::zeros(d);
    let mut budget = 0.9;
    for i in 0..d {
        let share = rng.gen_range(0.0..budget / 2.0);
        p[i] = share + 0.01 / d as f64;
        budget -= share;
    }
    p
}

#[test]
fn incremental_chord_matches_closed_form_on_random_lines() {
    let d = 5;
    let body = simplex_body(d);
    let oracle = body.oracle();
    let len = oracle
        .walk_state_len()
        .expect("polytope supports the protocol");
    let mut rng = StdRng::seed_from_u64(1);
    let mut state = vec![0.0; len];
    let mut dir_image = vec![0.0; len];
    for _ in 0..200 {
        let point = simplex_point(d, &mut rng);
        let dir = cdb_sampler::walk::random_direction(d, &mut rng);
        oracle.walk_state_init(point.as_slice(), &mut state);
        let (lo, hi) = oracle.walk_state_chord(&state, dir.as_slice(), &mut dir_image);
        let (clo, chi) = body
            .chord_interval(&point, &dir)
            .expect("polytope has closed-form chords");
        assert!((lo - clo).abs() < 1e-9, "lo {lo} vs {clo}");
        assert!((hi - chi).abs() < 1e-9, "hi {hi} vs {chi}");
        // Membership along the chord agrees with the full oracle.
        for t in [lo + 1e-6, 0.5 * (lo + hi), hi - 1e-6] {
            let probe = point.add_scaled(&dir, t);
            assert_eq!(
                oracle.walk_state_contains(&state, &dir_image, t),
                body.contains_vec(&probe),
                "membership mismatch at t = {t}"
            );
        }
    }
}

#[test]
fn residual_drift_stays_below_1e9_after_10k_steps() {
    let d = 6;
    let body = simplex_body(d);
    let mut rng = StdRng::seed_from_u64(2);
    let mut scratch = WalkScratch::new();
    scratch.begin(&body, body.center());
    let mut accepted = 0usize;
    for _ in 0..10_000 {
        if hit_and_run_step(&body, &mut scratch, &mut rng) {
            accepted += 1;
        }
    }
    assert!(accepted > 5_000, "walk barely moved: {accepted}");
    let drift = scratch
        .residual_drift(&body)
        .expect("polytope path is incremental");
    assert!(
        drift <= 1e-9,
        "incremental residuals drifted to {drift:.3e} after {accepted} accepted steps"
    );
    // The final point is a genuine interior point of the body.
    assert!(body.contains_vec(scratch.point()));
}

#[test]
fn ellipsoid_incremental_state_matches_quadratic_and_bounds_drift() {
    let d = 4;
    let ell = Ellipsoid::ball(Vector::zeros(d), 1.0).expect("unit ball");
    let body = ConvexBody::from_oracle(Arc::new(ell), Vector::zeros(d), 0.8, 1.25);
    let mut rng = StdRng::seed_from_u64(3);
    let mut scratch = WalkScratch::new();
    scratch.begin(&body, body.center());
    for _ in 0..10_000 {
        hit_and_run_step(&body, &mut scratch, &mut rng);
    }
    let drift = scratch
        .residual_drift(&body)
        .expect("ellipsoid path is incremental");
    assert!(drift <= 1e-9, "quadratic partials drifted to {drift:.3e}");
    assert!(scratch.point().norm() <= 1.0 + 1e-6);
}

#[test]
fn affine_preimage_state_stays_live_and_bounds_drift() {
    // The rounding transform wraps the oracle in an affine preimage; its
    // incremental state (inner residuals + the mapped point) must stay
    // consistent with a fresh recompute across long chains, so that
    // `residual_drift` is meaningful for rounded bodies too.
    use cdb_linalg::{AffineMap, Matrix};
    let original =
        ConvexBody::from_polytope(&HPolytope::axis_box(&[0.0, 0.0], &[4.0, 1.0])).unwrap();
    // View the box through y ↦ x = 2y + (1, 0): the preimage is
    // [-0.5, 1.5] × [0, 0.5].
    let map = AffineMap::new(Matrix::diagonal(&[2.0, 2.0]), Vector::from(vec![1.0, 0.0])).unwrap();
    let body = original.with_transformed_oracle(map, Vector::from(vec![0.5, 0.25]), 0.2, 1.2);
    assert!(body.oracle().walk_state_len().is_some());
    let mut rng = StdRng::seed_from_u64(6);
    let mut scratch = WalkScratch::new();
    scratch.begin(&body, body.center());
    let mut accepted = 0usize;
    for _ in 0..10_000 {
        if hit_and_run_step(&body, &mut scratch, &mut rng) {
            accepted += 1;
        }
    }
    assert!(accepted > 5_000, "walk barely moved: {accepted}");
    let drift = scratch
        .residual_drift(&body)
        .expect("affine preimage path is incremental");
    assert!(drift <= 1e-9, "preimage state drifted to {drift:.3e}");
    assert!(body.contains_vec(scratch.point()));
}

#[test]
fn incremental_and_fallback_paths_sample_the_same_distribution() {
    // The square has both an incremental oracle (polytope) and a generic
    // fallback (wrapping the same polytope behind an oracle without the
    // protocol); long walks from both must land in each quadrant with the
    // same frequencies under the same seeds.
    struct Opaque(HPolytope);
    impl MembershipOracle for Opaque {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn contains(&self, x: &[f64]) -> bool {
            MembershipOracle::contains(&self.0, x)
        }
        fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
            self.0.chord_interval(point, dir)
        }
        // No walk_state_* overrides: forces the fallback path.
    }

    let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
    let fast = ConvexBody::from_polytope(&square).unwrap();
    let slow = ConvexBody::from_oracle(
        Arc::new(Opaque(square)),
        fast.center().clone(),
        fast.r_inf(),
        fast.r_sup(),
    );
    assert!(fast.oracle().walk_state_len().is_some());
    assert!(slow.oracle().walk_state_len().is_none());

    let mut scratch = WalkScratch::new();
    let mut quadrants = [[0usize; 4]; 2];
    for (k, body) in [&fast, &slow].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..600 {
            let p = walk(
                body,
                body.center(),
                WalkKind::HitAndRun,
                25,
                &mut rng,
                &mut scratch,
            );
            let q = (p[0] > 0.5) as usize + 2 * ((p[1] > 0.5) as usize);
            quadrants[k][q] += 1;
        }
    }
    // Identical seeds and identical chord geometry: the two paths draw the
    // same RNG stream, so the chains are bitwise identical.
    assert_eq!(
        quadrants[0], quadrants[1],
        "incremental and fallback paths diverged: {quadrants:?}"
    );
}
