//! Parallel batched execution of samplers and volume estimators.
//!
//! The paper's generators are embarrassingly parallel — every sample is an
//! independent random-walk chain and every volume-estimate repeat is an
//! independent telescoping product — but the sequential API (`&mut self` plus
//! one shared [`rand::Rng`]) serializes them. This module supplies the
//! missing piece: a [`SeedSequence`]-driven fan-out over `std::thread::scope`
//! workers in which work item `i` always consumes the child stream
//! [`SeedSequence::item_stream`]`(i)`, no matter which worker runs it.
//!
//! **Determinism contract.** For a fixed seed the output of every function in
//! this module is bitwise identical for any thread count (1, 2, 8, or
//! [`auto_threads`]), because the randomness of an item is a pure function of
//! the seed tree and the item index, and because results are written into
//! per-index slots rather than collected in completion order. The
//! `tests/determinism.rs` suite pins this contract.
//!
//! No new dependencies are involved: workers are plain scoped threads, and
//! worker-local generator state is obtained by cloning the prepared generator
//! inside each worker.

use crate::params::{RelationGenerator, RelationVolumeEstimator, SeedSequence};

/// Number of worker threads to use when the caller passes `threads == 0`:
/// one per available core (and `1` when parallelism cannot be queried).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-supplied thread count: `0` means [`auto_threads`], and
/// the count is capped by the number of work items.
fn resolve_threads(threads: usize, items: usize) -> usize {
    let t = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    t.clamp(1, items.max(1))
}

/// Runs `task(state, i)` for every `i in 0..n` across up to `threads` scoped
/// worker threads and returns the results in index order.
///
/// Each worker builds its own state once via `init` (typically a clone of a
/// prepared generator) and processes a contiguous chunk of indices. Provided
/// `task`'s output depends only on the index (and immutable parts of the
/// state), the result vector is independent of the thread count.
pub fn fan_out<T, S, I, F>(n: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = resolve_threads(threads, n);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if threads == 1 {
        let mut state = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(task(&mut state, i));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, piece) in slots.chunks_mut(chunk).enumerate() {
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    let mut state = init();
                    for (k, slot) in piece.iter_mut().enumerate() {
                        *slot = Some(task(&mut state, w * chunk + k));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Parallel counterpart of [`RelationGenerator::sample_batch`] for a
/// generator whose setup has already run ([`RelationGenerator::prepare`]):
/// each worker samples from its own clone, item `i` from child stream
/// `i + 1`. Used by the generators to override the sequential trait default
/// with an identical-output parallel fan-out.
///
/// Because the workers mutate clones, *diagnostic* state accumulated during
/// sampling (the `acceptance_rate()` attempt/accept counters of the
/// rejection-based generators) is not folded back into `generator` — batch
/// entry points never update the sequential acceptance statistics. The
/// poly-relatedness signal itself is unaffected: each repeat still reports
/// failure through its own `None`.
pub fn sample_batch_prepared<G>(
    generator: &G,
    n: usize,
    seq: &SeedSequence,
    threads: usize,
) -> Vec<Option<Vec<f64>>>
where
    G: RelationGenerator + Clone + Send + Sync,
{
    fan_out(
        n,
        threads,
        || generator.clone(),
        |g, i| g.sample(&mut seq.item_stream(i).rng()),
    )
}

/// Parallel counterpart of [`RelationVolumeEstimator::estimate_volume_batch`]
/// for a prepared generator: repeat `i` runs on a worker-local clone with
/// child stream `i + 1`.
pub fn estimate_volume_batch_prepared<G>(
    generator: &G,
    repeats: usize,
    seq: &SeedSequence,
    threads: usize,
) -> Vec<Option<f64>>
where
    G: RelationVolumeEstimator + Clone + Send + Sync,
{
    fan_out(
        repeats,
        threads,
        || generator.clone(),
        |g, i| g.estimate_volume(&mut seq.item_stream(i).rng()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_index_order() {
        for threads in [1usize, 2, 3, 8, 0] {
            let out = fan_out(17, threads, || (), |_, i| 2 * i);
            assert_eq!(out, (0..17).map(|i| 2 * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_worker_state_is_initialized_per_worker() {
        // Each worker counts the items it processed; the total is n for any
        // thread count even though the per-worker split differs.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 5] {
            let total = AtomicUsize::new(0);
            let _ = fan_out(
                11,
                threads,
                || 0usize,
                |state, _| {
                    *state += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(total.into_inner(), 11);
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_item_batches() {
        assert!(fan_out(0, 4, || (), |_, i| i).is_empty());
        assert_eq!(fan_out(1, 8, || (), |_, i| i), vec![0]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }
}
