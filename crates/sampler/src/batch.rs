//! Parallel batched execution of samplers and volume estimators.
//!
//! The paper's generators are embarrassingly parallel — every sample is an
//! independent random-walk chain and every volume-estimate repeat is an
//! independent telescoping product — but the sequential API (`&mut self` plus
//! one shared [`rand::Rng`]) serializes them. This module supplies the
//! missing piece: a [`SeedSequence`]-driven fan-out over `std::thread::scope`
//! workers in which work item `i` always consumes the child stream
//! [`SeedSequence::item_stream`]`(i)`, no matter which worker runs it.
//!
//! **Determinism contract.** For a fixed seed the output of every function in
//! this module is bitwise identical for any thread count (1, 2, 8, or
//! [`auto_threads`]), because the randomness of an item is a pure function of
//! the seed tree and the item index, and because results are written into
//! per-index slots rather than collected in completion order. The
//! `tests/determinism.rs` suite pins this contract.
//!
//! No new dependencies are involved: workers are plain scoped threads, and
//! worker-local generator state is obtained by cloning the prepared generator
//! inside each worker.

use crate::params::{RelationGenerator, RelationVolumeEstimator, SeedSequence};

/// Number of worker threads to use when the caller passes `threads == 0`:
/// one per available core (and `1` when parallelism cannot be queried).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-supplied thread count: `0` means [`auto_threads`], and
/// the count is capped by the number of work items.
fn resolve_threads(threads: usize, items: usize) -> usize {
    let t = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    t.clamp(1, items.max(1))
}

/// A worker panic contained by [`fan_out_contained`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker thread that panicked.
    pub worker: usize,
    /// The panic payload, rendered as a string (`"non-string panic payload"`
    /// when the payload was neither `&str` nor `String`).
    pub payload: String,
}

/// The outcome of a contained fan-out: per-index result slots (a slot is
/// `None` when its worker panicked before reaching it) and the contained
/// panics in worker order.
#[derive(Debug)]
pub struct FanOutReport<T> {
    /// Result of item `i`, or `None` when worker panic aborted the item.
    pub slots: Vec<Option<T>>,
    /// The panics contained during the fan-out, ordered by worker index.
    pub panics: Vec<WorkerPanic>,
}

impl<T> FanOutReport<T> {
    /// Number of items that completed.
    pub fn completed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `task(state, i)` for every `i in 0..n` across up to `threads` scoped
/// worker threads, containing per-worker panics.
///
/// Each worker builds its own state once via `init` (typically a clone of a
/// prepared generator) and processes a contiguous chunk of indices. A panic
/// inside `init` or `task` is caught at the worker boundary
/// (`catch_unwind` + `AssertUnwindSafe`): the panicking worker's remaining
/// items stay `None`, **every surviving worker runs to completion**, and the
/// panic surfaces as a structured [`WorkerPanic`] instead of unwinding the
/// scope. Provided `task`'s output depends only on the index (and immutable
/// parts of the state), the filled slots are independent of the thread count.
pub fn fan_out_contained<T, S, I, F>(n: usize, threads: usize, init: I, task: F) -> FanOutReport<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let threads = resolve_threads(threads, n);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut panics: Vec<WorkerPanic> = Vec::new();
    if threads == 1 {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut state = init();
            for (i, slot) in slots.iter_mut().enumerate() {
                crate::faults::before_item(i);
                *slot = Some(task(&mut state, i));
            }
        }));
        if let Err(payload) = outcome {
            panics.push(WorkerPanic {
                worker: 0,
                payload: payload_string(payload),
            });
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, piece) in slots.chunks_mut(chunk).enumerate() {
                let init = &init;
                let task = &task;
                handles.push((
                    w,
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut state = init();
                            for (k, slot) in piece.iter_mut().enumerate() {
                                let i = w * chunk + k;
                                crate::faults::before_item(i);
                                *slot = Some(task(&mut state, i));
                            }
                        }))
                        .err()
                        .map(payload_string)
                    }),
                ));
            }
            for (w, handle) in handles {
                match handle.join() {
                    Ok(Some(payload)) => panics.push(WorkerPanic { worker: w, payload }),
                    Ok(None) => {}
                    // The worker itself cannot unwind past catch_unwind, so
                    // a join error only happens on a non-unwinding abort path;
                    // record it defensively.
                    Err(payload) => panics.push(WorkerPanic {
                        worker: w,
                        payload: payload_string(payload),
                    }),
                }
            }
        });
    }
    FanOutReport { slots, panics }
}

/// One completed item of a [`fan_out_contained_timed`] run: the task's value
/// plus monotonic start/finish offsets measured from the caller's epoch.
#[derive(Clone, Debug)]
pub struct TimedItem<T> {
    /// The task's return value.
    pub value: T,
    /// Offset from `epoch` at which the task closure began executing.
    pub started: std::time::Duration,
    /// Offset from `epoch` at which the task closure returned.
    pub finished: std::time::Duration,
}

/// [`fan_out_contained`] with per-item completion timestamps.
///
/// Every slot records when its task started and finished, as offsets from the
/// caller-supplied `epoch` — passing the epoch in (rather than capturing one
/// internally) lets callers align the offsets with an externally computed
/// schedule, which is how the load harness measures latency from the
/// *scheduled* arrival rather than from dispatch. Timestamps are measurement
/// metadata only: the task values keep the same determinism contract as
/// [`fan_out_contained`], and the fault-injection `before_item` hook fires
/// exactly as it does there.
pub fn fan_out_contained_timed<T, S, I, F>(
    n: usize,
    threads: usize,
    epoch: std::time::Instant,
    init: I,
    task: F,
) -> FanOutReport<TimedItem<T>>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    fan_out_contained(n, threads, init, move |state, i| {
        let started = epoch.elapsed();
        let value = task(state, i);
        TimedItem {
            value,
            started,
            finished: epoch.elapsed(),
        }
    })
}

/// [`fan_out_contained`] for infallible tasks: returns the results in index
/// order, or the first contained [`WorkerPanic`] if any worker panicked
/// (surviving workers still run to completion first).
pub fn try_fan_out<T, S, I, F>(
    n: usize,
    threads: usize,
    init: I,
    task: F,
) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let report = fan_out_contained(n, threads, init, task);
    if let Some(panic) = report.panics.into_iter().next() {
        return Err(panic);
    }
    Ok(report
        .slots
        .into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect())
}

/// Runs `task(state, i)` for every `i in 0..n` across up to `threads` scoped
/// worker threads and returns the results in index order.
///
/// Infallible convenience wrapper over [`fan_out_contained`]: a worker panic
/// is re-raised on the calling thread (with the worker index and payload in
/// the message) after the surviving workers have completed. Callers that
/// need partial results instead of a propagated panic use
/// [`fan_out_contained`] or [`try_fan_out`].
pub fn fan_out<T, S, I, F>(n: usize, threads: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    try_fan_out(n, threads, init, task)
        .unwrap_or_else(|p| panic!("batch worker {} panicked: {}", p.worker, p.payload))
}

/// Parallel counterpart of [`RelationGenerator::sample_batch`] for a
/// generator whose setup has already run ([`RelationGenerator::prepare`]):
/// each worker samples from its own clone, item `i` from child stream
/// `i + 1`. Used by the generators to override the sequential trait default
/// with an identical-output parallel fan-out.
///
/// Because the workers mutate clones, *diagnostic* state accumulated during
/// sampling (the `acceptance_rate()` attempt/accept counters of the
/// rejection-based generators) is not folded back into `generator` — batch
/// entry points never update the sequential acceptance statistics. The
/// poly-relatedness signal itself is unaffected: each repeat still reports
/// failure through its own `None`.
pub fn sample_batch_prepared<G>(
    generator: &G,
    n: usize,
    seq: &SeedSequence,
    threads: usize,
) -> Vec<Option<Vec<f64>>>
where
    G: RelationGenerator + Clone + Send + Sync,
{
    fan_out(
        n,
        threads,
        || generator.clone(),
        |g, i| g.sample(&mut seq.item_stream(i).rng()),
    )
}

/// Parallel counterpart of [`RelationVolumeEstimator::estimate_volume_batch`]
/// for a prepared generator: repeat `i` runs on a worker-local clone with
/// child stream `i + 1`.
pub fn estimate_volume_batch_prepared<G>(
    generator: &G,
    repeats: usize,
    seq: &SeedSequence,
    threads: usize,
) -> Vec<Option<f64>>
where
    G: RelationVolumeEstimator + Clone + Send + Sync,
{
    fan_out(
        repeats,
        threads,
        || generator.clone(),
        |g, i| g.estimate_volume(&mut seq.item_stream(i).rng()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_index_order() {
        for threads in [1usize, 2, 3, 8, 0] {
            let out = fan_out(17, threads, || (), |_, i| 2 * i);
            assert_eq!(out, (0..17).map(|i| 2 * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_worker_state_is_initialized_per_worker() {
        // Each worker counts the items it processed; the total is n for any
        // thread count even though the per-worker split differs.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 5] {
            let total = AtomicUsize::new(0);
            let _ = fan_out(
                11,
                threads,
                || 0usize,
                |state, _| {
                    *state += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(total.into_inner(), 11);
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_item_batches() {
        assert!(fan_out(0, 4, || (), |_, i| i).is_empty());
        assert_eq!(fan_out(1, 8, || (), |_, i| i), vec![0]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn contained_fan_out_completes_surviving_workers() {
        // The empty-plan guard serializes fault tests and silences the
        // deliberate "injected…" panic messages in the test logs.
        let _quiet = crate::faults::FaultPlan::new(0).install();
        // Worker 0 (items 0..4) panics at item 1; the other workers must
        // still fill every one of their slots.
        let report = fan_out_contained(
            16,
            4,
            || (),
            |_, i| {
                if i == 1 {
                    panic!("injected: boom at {i}");
                }
                i * 3
            },
        );
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].worker, 0);
        assert!(report.panics[0].payload.contains("boom at 1"));
        assert_eq!(report.slots[0], Some(0));
        assert_eq!(report.slots[1], None);
        for i in 4..16 {
            assert_eq!(report.slots[i], Some(i * 3), "slot {i}");
        }
        assert_eq!(report.completed(), 13);
    }

    #[test]
    fn contained_fan_out_single_thread_contains_too() {
        let _quiet = crate::faults::FaultPlan::new(0).install();
        let report = fan_out_contained(
            4,
            1,
            || (),
            |_, i| {
                assert!(i != 2, "injected: dead item");
                i
            },
        );
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.slots, vec![Some(0), Some(1), None, None]);
    }

    #[test]
    fn timed_fan_out_records_monotonic_offsets_and_contains_panics() {
        let _quiet = crate::faults::FaultPlan::new(0).install();
        let epoch = std::time::Instant::now();
        let report = fan_out_contained_timed(
            12,
            3,
            epoch,
            || (),
            |_, i| {
                assert!(i != 5, "injected: timed casualty");
                i + 100
            },
        );
        assert_eq!(report.panics.len(), 1);
        for (i, slot) in report.slots.iter().enumerate() {
            match slot {
                Some(item) => {
                    assert_eq!(item.value, i + 100);
                    assert!(item.finished >= item.started, "slot {i} went backwards");
                }
                // Worker 1 owns items 4..8 and dies at 5.
                None => assert!((5..8).contains(&i), "unexpected lost slot {i}"),
            }
        }
    }

    #[test]
    fn try_fan_out_surfaces_the_first_panic() {
        let _quiet = crate::faults::FaultPlan::new(0).install();
        let err = try_fan_out(
            8,
            2,
            || (),
            |_, i| {
                assert!(i != 6, "injected: item six");
                i
            },
        )
        .unwrap_err();
        assert_eq!(err.worker, 1);
        assert!(err.payload.contains("item six"));
        assert_eq!(try_fan_out(3, 2, || (), |_, i| i).unwrap(), vec![0, 1, 2]);
    }
}
