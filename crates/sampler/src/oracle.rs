//! Membership oracles and well-bounded convex bodies.
//!
//! The Dyer–Frieze–Kannan generator only interacts with a convex set through
//! a *membership oracle* — precisely the observation the paper uses in
//! Section 5 to extend the results from linear to polynomial constraints. The
//! oracle for a finitely representable relation is evaluated in time linear
//! in its description size (one pass over the constraints).

use std::sync::Arc;

use cdb_constraint::poly::PolyBody;
use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};
use cdb_geometry::{Ellipsoid, HPolytope};
use cdb_linalg::{kernels, Vector};

/// A membership oracle for a subset of `R^d`.
///
/// # Incremental walk state
///
/// The `walk_state_*` family is the zero-allocation fast path used by the
/// hit-and-run engine ([`crate::walk`]). An oracle that supports it announces
/// a state size through [`MembershipOracle::walk_state_len`]; the walk keeps
/// that many `f64` slots alive across steps in its
/// [`crate::walk::WalkScratch`] and drives them through a four-call protocol:
///
/// 1. [`walk_state_init`](MembershipOracle::walk_state_init) fills the state
///    from the current point (also used for the periodic drift-bounding
///    recompute);
/// 2. [`walk_state_chord`](MembershipOracle::walk_state_chord) derives the
///    exact chord through the current point along `dir`, writing the
///    direction image (`A·dir` for a polytope; quadratic-form partials for
///    ellipsoids and balls) into a caller buffer of the same size;
/// 3. [`walk_state_contains`](MembershipOracle::walk_state_contains) decides
///    membership of `point + t·dir` with an O(state) sign check — no matvec;
/// 4. [`walk_state_advance`](MembershipOracle::walk_state_advance) commits an
///    accepted step, updating the state with one `axpy`-style pass.
///
/// For an H-polytope the state is the residual vector `s = b − A·x`: one
/// `A·dir` product per step replaces the two `A·x` products of the
/// closed-form chord plus the `A·x` product of the membership test, and no
/// intermediate vectors are allocated. The `A·dir` product itself dispatches
/// on the polytope's [`cdb_geometry::ConstraintMatrix`] — axis-aligned and
/// CSR systems run their structured kernels, which are bitwise identical to
/// the dense path. Every implementation must keep all four calls
/// allocation-free; initialization may be called at any time to refresh the
/// state from scratch.
///
/// # Worked example: one incremental chord/advance cycle
///
/// Drive the protocol by hand on the unit square `[0, 1]²` (the walk engine
/// does exactly this, millions of times per second):
///
/// ```
/// use cdb_geometry::HPolytope;
/// use cdb_sampler::MembershipOracle;
///
/// let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
///
/// // 1. Announce + initialize: one state slot per constraint, holding the
/// //    residuals s = b − A·x of the current point.
/// let len = square.walk_state_len().expect("polytopes are incremental");
/// assert_eq!(len, 4);
/// let mut state = vec![0.0; len];
/// let mut dir_image = vec![0.0; len];
/// let point = [0.25, 0.5];
/// square.walk_state_init(&point, &mut state);
///
/// // 2. Chord along +x: A·dir lands in `dir_image`, and the ratio test
/// //    over the residuals yields the exact chord — the segment from the
/// //    left edge (t = −0.25) to the right edge (t = +0.75).
/// let dir = [1.0, 0.0];
/// let (lo, hi) = square.walk_state_chord(&state, &dir, &mut dir_image);
/// assert!((lo + 0.25).abs() < 1e-6 && (hi - 0.75).abs() < 1e-6);
///
/// // 3. Membership of point + t·dir is an O(state) sign check — no matvec.
/// assert!(square.walk_state_contains(&state, &dir_image, 0.5));
/// assert!(!square.walk_state_contains(&state, &dir_image, 0.8));
///
/// // 4. Commit t = 0.5: one axpy pass updates the residuals in place, and
/// //    the state now matches a fresh recompute at the new point (0.75, 0.5).
/// square.walk_state_advance(&mut state, &dir_image, 0.5);
/// let mut fresh = vec![0.0; len];
/// square.walk_state_init(&[0.75, 0.5], &mut fresh);
/// for (live, expected) in state.iter().zip(&fresh) {
///     assert!((live - expected).abs() < 1e-12);
/// }
/// ```
pub trait MembershipOracle: Send + Sync {
    /// Ambient dimension.
    fn dim(&self) -> usize;
    /// Does the point belong to the set?
    fn contains(&self, x: &[f64]) -> bool;
    /// The chord of the set along the line `point + t·dir`, as an interval
    /// `(t_min, t_max)`, when the oracle's geometry admits a closed form.
    ///
    /// `None` means "no closed form — bisect against [`Self::contains`]".
    /// An empty interval is reported as `(0.0, 0.0)`. The interval may be
    /// unbounded (`±∞`) for unbounded geometries; callers clamp it with
    /// their well-boundedness certificate.
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        let _ = (point, dir);
        None
    }

    /// Number of `f64` slots of incremental walk state this oracle maintains,
    /// or `None` when the incremental protocol is unsupported (the walk then
    /// falls back to [`MembershipOracle::chord_interval`] /
    /// [`MembershipOracle::contains`]).
    fn walk_state_len(&self) -> Option<usize> {
        None
    }

    /// Initializes (or refreshes) the incremental state for `point`.
    /// `state.len() == self.walk_state_len().unwrap()`. Must not allocate.
    fn walk_state_init(&self, point: &[f64], state: &mut [f64]) {
        let _ = (point, state);
        unimplemented!("oracle does not support incremental walk state");
    }

    /// The exact chord `(t_min, t_max)` of the set along `dir` through the
    /// point the state was built for, computed from the cached state. Writes
    /// the direction image into `dir_image` (same length as the state) for
    /// use by the subsequent contains/advance calls. Must not allocate.
    fn walk_state_chord(&self, state: &[f64], dir: &[f64], dir_image: &mut [f64]) -> (f64, f64) {
        let _ = (state, dir, dir_image);
        unimplemented!("oracle does not support incremental walk state");
    }

    /// Membership of `point + t·dir` (for the `dir` passed to the preceding
    /// [`MembershipOracle::walk_state_chord`]) as a sign check on the cached
    /// state — no matrix–vector product. Must not allocate.
    fn walk_state_contains(&self, state: &[f64], dir_image: &[f64], t: f64) -> bool {
        let _ = (state, dir_image, t);
        unimplemented!("oracle does not support incremental walk state");
    }

    /// Commits the accepted step `t` along the cached direction, updating the
    /// state in place. Must not allocate.
    fn walk_state_advance(&self, state: &mut [f64], dir_image: &[f64], t: f64) {
        let _ = (state, dir_image, t);
        unimplemented!("oracle does not support incremental walk state");
    }
}

/// Membership tolerance used when converting symbolic objects to oracles.
const ORACLE_TOL: f64 = 1e-9;

/// Intersects the ratio-test constraint `growth·t ≤ slack` into `(lo, hi)`.
/// Returns `false` when the constraint makes the chord empty.
#[inline]
fn ratio_test(growth: f64, slack: f64, lo: &mut f64, hi: &mut f64) -> bool {
    if growth.abs() <= 1e-14 {
        if slack < 0.0 {
            return false;
        }
    } else if growth > 0.0 {
        *hi = hi.min(slack / growth);
    } else {
        *lo = lo.max(slack / growth);
    }
    true
}

impl MembershipOracle for HPolytope {
    fn dim(&self) -> usize {
        HPolytope::dim(self)
    }
    fn contains(&self, x: &[f64]) -> bool {
        self.contains_slice(x, ORACLE_TOL)
    }
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        // Ratio test over the cached constraint rows (through the
        // structure-aware kernel): each halfspace a·x ≤ b constrains t by
        // (a·dir)·t ≤ b − a·point.
        let m = self.matrix();
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for (i, &bi) in self.dense_b().iter().enumerate() {
            let growth = m.row_dot(i, dir);
            let slack = bi - m.row_dot(i, point) + ORACLE_TOL;
            if !ratio_test(growth, slack, &mut lo, &mut hi) {
                return Some((0.0, 0.0));
            }
        }
        if lo > hi {
            return Some((0.0, 0.0));
        }
        Some((lo, hi))
    }

    // Incremental protocol: the state is the residual vector `s = b − A·x`.
    fn walk_state_len(&self) -> Option<usize> {
        Some(self.n_constraints())
    }
    fn walk_state_init(&self, point: &[f64], state: &mut [f64]) {
        self.matrix().residuals_into(point, self.dense_b(), state);
    }
    fn walk_state_chord(&self, state: &[f64], dir: &[f64], dir_image: &mut [f64]) -> (f64, f64) {
        // One structured matvec per step: dir_image = A·dir (O(nnz) for CSR,
        // O(m) for axis-aligned rows); the chord then falls out of the
        // residuals in O(m).
        self.matrix().mat_vec_into(dir, dir_image);
        kernels::chord_from_residuals(dir_image, state, ORACLE_TOL)
    }
    fn walk_state_contains(&self, state: &[f64], dir_image: &[f64], t: f64) -> bool {
        state
            .iter()
            .zip(dir_image)
            .all(|(&s, &g)| s - t * g >= -ORACLE_TOL)
    }
    fn walk_state_advance(&self, state: &mut [f64], dir_image: &[f64], t: f64) {
        kernels::axpy(state, -t, dir_image);
    }
}

impl MembershipOracle for GeneralizedTuple {
    fn dim(&self) -> usize {
        self.arity()
    }
    fn contains(&self, x: &[f64]) -> bool {
        self.satisfied_f64(x, ORACLE_TOL)
    }
}

impl MembershipOracle for GeneralizedRelation {
    fn dim(&self) -> usize {
        self.arity()
    }
    fn contains(&self, x: &[f64]) -> bool {
        self.contains_f64(x)
    }
}

impl MembershipOracle for PolyBody {
    fn dim(&self) -> usize {
        self.arity()
    }
    fn contains(&self, x: &[f64]) -> bool {
        PolyBody::contains(self, x, ORACLE_TOL)
    }
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        // Each degree-≤2 constraint restricted to the line is a quadratic
        // a·t² + b·t + c ≤ tol in t; intersect the solution intervals. Any
        // constraint of higher degree — or a concave quadratic, whose
        // solution set along the line is two rays rather than an interval —
        // sends the walk back to bisection.
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for constraint in self.constraints() {
            let (a, b, c) = constraint.line_quadratic(point, dir)?;
            let c = c - ORACLE_TOL;
            if a.abs() <= 1e-14 {
                // Linear in t: the halfspace ratio test.
                if b.abs() <= 1e-14 {
                    if c > 0.0 {
                        return Some((0.0, 0.0));
                    }
                } else if b > 0.0 {
                    hi = hi.min(-c / b);
                } else {
                    lo = lo.max(-c / b);
                }
            } else if a > 0.0 {
                let disc = b * b - 4.0 * a * c;
                if disc <= 0.0 {
                    return Some((0.0, 0.0));
                }
                let root = disc.sqrt();
                lo = lo.max((-b - root) / (2.0 * a));
                hi = hi.min((-b + root) / (2.0 * a));
            } else {
                return None;
            }
        }
        if lo > hi {
            return Some((0.0, 0.0));
        }
        Some((lo, hi))
    }
}

impl MembershipOracle for Ellipsoid {
    fn dim(&self) -> usize {
        Ellipsoid::dim(self)
    }
    fn contains(&self, x: &[f64]) -> bool {
        Ellipsoid::contains(self, &Vector::from(x), ORACLE_TOL)
    }
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        // Solve the quadratic (p − c + t·d)ᵀ A (p − c + t·d) ≤ 1 in t.
        let p = Vector::from(point);
        let d = Vector::from(dir);
        let pc = &p - self.center();
        let a_d = self.shape().mul_vector(&d);
        let quad = d.dot(&a_d);
        if quad <= 0.0 {
            return Some((0.0, 0.0));
        }
        let lin = pc.dot(&a_d);
        let constant = self.quadratic(&p) - (1.0 + ORACLE_TOL);
        let disc = lin * lin - quad * constant;
        if disc <= 0.0 {
            return Some((0.0, 0.0));
        }
        let root = disc.sqrt();
        Some(((-lin - root) / quad, (-lin + root) / quad))
    }

    // Incremental protocol: the state caches the quadratic-form partials
    // `[A(x − c) ; q(x) ; spare]` with `q(x) = (x − c)ᵀA(x − c)`; the
    // direction image carries `[A·dir ; lin ; quad]` so membership along the
    // cached chord is the scalar check `q + 2t·lin + t²·quad ≤ 1`.
    fn walk_state_len(&self) -> Option<usize> {
        Some(Ellipsoid::dim(self) + 2)
    }
    fn walk_state_init(&self, point: &[f64], state: &mut [f64]) {
        let n = Ellipsoid::dim(self);
        let c = self.center().as_slice();
        let shape = self.shape();
        for i in 0..n {
            let row = shape.row(i);
            let mut acc = 0.0;
            for j in 0..n {
                acc += row[j] * (point[j] - c[j]);
            }
            state[i] = acc;
        }
        let mut q = 0.0;
        for i in 0..n {
            q += state[i] * (point[i] - c[i]);
        }
        state[n] = q;
        state[n + 1] = 0.0;
    }
    fn walk_state_chord(&self, state: &[f64], dir: &[f64], dir_image: &mut [f64]) -> (f64, f64) {
        let n = Ellipsoid::dim(self);
        let shape = self.shape();
        for i in 0..n {
            dir_image[i] = kernels::dot(shape.row(i), dir);
        }
        let quad = kernels::dot(&dir_image[..n], dir);
        let lin = kernels::dot(&state[..n], dir);
        dir_image[n] = lin;
        dir_image[n + 1] = quad;
        if quad <= 0.0 {
            return (0.0, 0.0);
        }
        let constant = state[n] - (1.0 + ORACLE_TOL);
        let disc = lin * lin - quad * constant;
        if disc <= 0.0 {
            return (0.0, 0.0);
        }
        let root = disc.sqrt();
        ((-lin - root) / quad, (-lin + root) / quad)
    }
    fn walk_state_contains(&self, state: &[f64], dir_image: &[f64], t: f64) -> bool {
        let n = Ellipsoid::dim(self);
        let (lin, quad) = (dir_image[n], dir_image[n + 1]);
        state[n] + 2.0 * t * lin + t * t * quad <= 1.0 + ORACLE_TOL
    }
    fn walk_state_advance(&self, state: &mut [f64], dir_image: &[f64], t: f64) {
        let n = Ellipsoid::dim(self);
        let (lin, quad) = (dir_image[n], dir_image[n + 1]);
        state[n] += 2.0 * t * lin + t * t * quad;
        kernels::axpy(&mut state[..n], t, &dir_image[..n]);
    }
}

/// A well-bounded convex body: a membership oracle together with the
/// certificate required by the paper (a center, an inscribed radius `r_inf`
/// and an enclosing radius `r_sup`).
#[derive(Clone)]
pub struct ConvexBody {
    oracle: Arc<dyn MembershipOracle>,
    center: Vector,
    r_inf: f64,
    r_sup: f64,
}

impl std::fmt::Debug for ConvexBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvexBody")
            .field("dim", &self.dim())
            .field("center", &self.center)
            .field("r_inf", &self.r_inf)
            .field("r_sup", &self.r_sup)
            .finish()
    }
}

impl ConvexBody {
    /// Wraps an oracle with an explicit well-boundedness certificate.
    pub fn from_oracle(
        oracle: Arc<dyn MembershipOracle>,
        center: Vector,
        r_inf: f64,
        r_sup: f64,
    ) -> Self {
        assert!(r_inf > 0.0 && r_sup >= r_inf, "invalid certificate radii");
        assert_eq!(center.dim(), oracle.dim(), "certificate dimension mismatch");
        ConvexBody {
            oracle,
            center,
            r_inf,
            r_sup,
        }
    }

    /// Builds a body from a bounded full-dimensional H-polytope; the
    /// certificate is computed with the Chebyshev-center LP. Returns `None`
    /// for empty, unbounded or lower-dimensional polytopes.
    pub fn from_polytope(p: &HPolytope) -> Option<Self> {
        let wb = p.well_bounded()?;
        Some(Self::from_polytope_cert(p.clone(), wb))
    }

    /// Builds a body from a polytope whose well-boundedness certificate the
    /// caller has already computed — the certificate-caching entry point used
    /// by the composed generators, which solve the Chebyshev/bounding-box
    /// LPs once per component and reuse the result here.
    pub fn from_polytope_cert(p: HPolytope, cert: cdb_geometry::WellBounded) -> Self {
        ConvexBody {
            oracle: Arc::new(p),
            center: cert.center,
            r_inf: cert.r_inf,
            r_sup: cert.r_sup,
        }
    }

    /// Builds a body from a generalized tuple (its closure).
    ///
    /// The oracle is the closure H-polytope rather than the tuple itself:
    /// the boundary difference has measure zero (see
    /// `GeneralizedTuple::to_hpolytope`), membership becomes pure `f64`
    /// arithmetic instead of per-query rational conversion, and the polytope
    /// supports closed-form chords for hit-and-run.
    pub fn from_tuple(t: &GeneralizedTuple) -> Option<Self> {
        let p = t.to_hpolytope();
        let wb = p.well_bounded()?;
        Some(ConvexBody {
            oracle: Arc::new(p),
            center: wb.center,
            r_inf: wb.r_inf,
            r_sup: wb.r_sup,
        })
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.oracle.dim()
    }

    /// The certificate center.
    pub fn center(&self) -> &Vector {
        &self.center
    }

    /// Radius of the certified inscribed ball.
    pub fn r_inf(&self) -> f64 {
        self.r_inf
    }

    /// Radius of the certified enclosing ball.
    pub fn r_sup(&self) -> f64 {
        self.r_sup
    }

    /// The roundness ratio `r_sup / r_inf`.
    pub fn aspect_ratio(&self) -> f64 {
        self.r_sup / self.r_inf
    }

    /// Membership test.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.oracle.contains(x)
    }

    /// Membership test for a vector.
    pub fn contains_vec(&self, x: &Vector) -> bool {
        self.oracle.contains(x.as_slice())
    }

    /// Closed-form chord through `point` along `dir`, when the oracle
    /// supports one (see [`MembershipOracle::chord_interval`]).
    pub fn chord_interval(&self, point: &Vector, dir: &Vector) -> Option<(f64, f64)> {
        self.oracle.chord_interval(point.as_slice(), dir.as_slice())
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &Arc<dyn MembershipOracle> {
        &self.oracle
    }

    /// The body intersected with the ball `B(center, radius)` — used by the
    /// telescoping volume estimator. The certificate shrinks accordingly.
    pub fn intersect_ball(&self, radius: f64) -> ConvexBody {
        assert!(radius > 0.0, "ball radius must be positive");
        ConvexBody {
            oracle: Arc::new(BallIntersectionOracle {
                inner: Arc::clone(&self.oracle),
                center: self.center.clone(),
                radius,
            }),
            center: self.center.clone(),
            r_inf: self.r_inf.min(radius),
            r_sup: self.r_sup.min(radius),
        }
    }

    /// The image of the body under an affine change of coordinates described
    /// by `to_original` (mapping new coordinates back to original ones); the
    /// certificate is supplied by the caller (the rounding step knows it).
    pub fn with_transformed_oracle(
        &self,
        to_original: cdb_linalg::AffineMap,
        center: Vector,
        r_inf: f64,
        r_sup: f64,
    ) -> ConvexBody {
        ConvexBody {
            oracle: Arc::new(AffinePreimageOracle {
                inner: Arc::clone(&self.oracle),
                to_original,
            }),
            center,
            r_inf,
            r_sup,
        }
    }
}

/// Oracle for `K ∩ B(center, radius)`.
struct BallIntersectionOracle {
    inner: Arc<dyn MembershipOracle>,
    center: Vector,
    radius: f64,
}

impl MembershipOracle for BallIntersectionOracle {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn contains(&self, x: &[f64]) -> bool {
        let v = Vector::from(x);
        v.distance(&self.center) <= self.radius + 1e-12 && self.inner.contains(x)
    }
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        // Intersect the inner chord with the ball chord |p − c + t·d|² ≤ r².
        let (inner_lo, inner_hi) = self.inner.chord_interval(point, dir)?;
        let p = Vector::from(point);
        let d = Vector::from(dir);
        let pc = &p - &self.center;
        let quad = d.dot(&d);
        if quad <= 0.0 {
            return Some((0.0, 0.0));
        }
        let lin = pc.dot(&d);
        let constant = pc.dot(&pc) - (self.radius + 1e-12) * (self.radius + 1e-12);
        let disc = lin * lin - quad * constant;
        if disc <= 0.0 {
            return Some((0.0, 0.0));
        }
        let root = disc.sqrt();
        let lo = inner_lo.max((-lin - root) / quad);
        let hi = inner_hi.min((-lin + root) / quad);
        if lo > hi {
            return Some((0.0, 0.0));
        }
        Some((lo, hi))
    }

    // Incremental protocol: the inner oracle's state is extended with the
    // offset `p − c` from the ball center and its squared norm, so the ball
    // side of the intersection is the scalar check
    // `|p − c|² + 2t·lin + t²·quad ≤ r²`. Layout (len = inner + dim + 2):
    // state = [inner ; p − c ; |p − c|² ; spare],
    // dir_image = [inner ; dir copy ; lin ; quad].
    fn walk_state_len(&self) -> Option<usize> {
        let inner = self.inner.walk_state_len()?;
        Some(inner + self.center.dim() + 2)
    }
    fn walk_state_init(&self, point: &[f64], state: &mut [f64]) {
        let n = self.center.dim();
        let li = state.len() - n - 2;
        self.inner.walk_state_init(point, &mut state[..li]);
        let c = self.center.as_slice();
        let mut norm2 = 0.0;
        for i in 0..n {
            let pc = point[i] - c[i];
            state[li + i] = pc;
            norm2 += pc * pc;
        }
        state[li + n] = norm2;
        state[li + n + 1] = 0.0;
    }
    fn walk_state_chord(&self, state: &[f64], dir: &[f64], dir_image: &mut [f64]) -> (f64, f64) {
        let n = self.center.dim();
        let li = state.len() - n - 2;
        let (inner_lo, inner_hi) =
            self.inner
                .walk_state_chord(&state[..li], dir, &mut dir_image[..li]);
        let pc = &state[li..li + n];
        let quad = kernels::dot(dir, dir);
        let lin = kernels::dot(pc, dir);
        dir_image[li..li + n].copy_from_slice(dir);
        dir_image[li + n] = lin;
        dir_image[li + n + 1] = quad;
        if quad <= 0.0 {
            return (0.0, 0.0);
        }
        let r = self.radius + 1e-12;
        let constant = state[li + n] - r * r;
        let disc = lin * lin - quad * constant;
        if disc <= 0.0 {
            return (0.0, 0.0);
        }
        let root = disc.sqrt();
        let lo = inner_lo.max((-lin - root) / quad);
        let hi = inner_hi.min((-lin + root) / quad);
        if lo > hi {
            return (0.0, 0.0);
        }
        (lo, hi)
    }
    fn walk_state_contains(&self, state: &[f64], dir_image: &[f64], t: f64) -> bool {
        let n = self.center.dim();
        let li = state.len() - n - 2;
        let (lin, quad) = (dir_image[li + n], dir_image[li + n + 1]);
        let r = self.radius + 1e-12;
        state[li + n] + 2.0 * t * lin + t * t * quad <= r * r
            && self
                .inner
                .walk_state_contains(&state[..li], &dir_image[..li], t)
    }
    fn walk_state_advance(&self, state: &mut [f64], dir_image: &[f64], t: f64) {
        let n = self.center.dim();
        let li = state.len() - n - 2;
        let (lin, quad) = (dir_image[li + n], dir_image[li + n + 1]);
        state[li + n] += 2.0 * t * lin + t * t * quad;
        let (inner, rest) = state.split_at_mut(li);
        kernels::axpy(&mut rest[..n], t, &dir_image[li..li + n]);
        self.inner.walk_state_advance(inner, &dir_image[..li], t);
    }
}

/// Oracle for the preimage coordinates: a point `y` belongs iff
/// `to_original(y)` belongs to the inner set.
struct AffinePreimageOracle {
    inner: Arc<dyn MembershipOracle>,
    to_original: cdb_linalg::AffineMap,
}

impl MembershipOracle for AffinePreimageOracle {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn contains(&self, x: &[f64]) -> bool {
        let original = self.to_original.apply(&Vector::from(x));
        self.inner.contains(original.as_slice())
    }
    fn chord_interval(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64)> {
        // The map is affine, so the chord parameter t carries over unchanged:
        // the line x(t) = p + t·d maps to A·p + b + t·(A·d).
        let p = self.to_original.apply(&Vector::from(point));
        let d = self.to_original.linear().mul_vector(&Vector::from(dir));
        self.inner.chord_interval(p.as_slice(), d.as_slice())
    }

    // Incremental protocol: because the map is affine the chord parameter `t`
    // carries over unchanged, so the inner oracle's state *is* the state —
    // extended with a scratch block used to hold the mapped point during
    // initialization and the mapped direction during chords. Layout
    // (len = inner + inner dim): state = [inner ; mapped-point scratch],
    // dir_image = [inner ; mapped dir].
    fn walk_state_len(&self) -> Option<usize> {
        let inner = self.inner.walk_state_len()?;
        Some(inner + self.to_original.dim())
    }
    fn walk_state_init(&self, point: &[f64], state: &mut [f64]) {
        let n = self.to_original.dim();
        let li = state.len() - n;
        let (inner, mapped) = state.split_at_mut(li);
        let m = self.to_original.linear();
        let t = self.to_original.translation_part().as_slice();
        for i in 0..n {
            mapped[i] = kernels::dot(m.row(i), point) + t[i];
        }
        self.inner.walk_state_init(mapped, inner);
    }
    fn walk_state_chord(&self, state: &[f64], dir: &[f64], dir_image: &mut [f64]) -> (f64, f64) {
        let n = self.to_original.dim();
        let li = state.len() - n;
        let (inner_image, mapped_dir) = dir_image.split_at_mut(li);
        let m = self.to_original.linear();
        for i in 0..n {
            mapped_dir[i] = kernels::dot(m.row(i), dir);
        }
        self.inner
            .walk_state_chord(&state[..li], mapped_dir, inner_image)
    }
    fn walk_state_contains(&self, state: &[f64], dir_image: &[f64], t: f64) -> bool {
        let li = state.len() - self.to_original.dim();
        self.inner
            .walk_state_contains(&state[..li], &dir_image[..li], t)
    }
    fn walk_state_advance(&self, state: &mut [f64], dir_image: &[f64], t: f64) {
        let li = state.len() - self.to_original.dim();
        let (inner, mapped_point) = state.split_at_mut(li);
        self.inner.walk_state_advance(inner, &dir_image[..li], t);
        // Keep the mapped point current too (the mapped direction is still in
        // the dir_image tail), so the whole state stays comparable against a
        // fresh recompute — `WalkScratch::residual_drift` relies on this.
        kernels::axpy(mapped_point, t, &dir_image[li..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polytope_body_certificate() {
        let p = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 4.0]);
        let b = ConvexBody::from_polytope(&p).unwrap();
        assert_eq!(b.dim(), 2);
        assert!((b.r_inf() - 1.0).abs() < 1e-6);
        assert!(b.r_sup() >= b.r_inf());
        assert!(b.contains(&[1.0, 2.0]));
        assert!(!b.contains(&[3.0, 2.0]));
        assert!(b.aspect_ratio() >= 1.0);
        // The certificate balls really are certificates.
        let c = b.center();
        assert!(b.contains(&[c[0] + 0.99 * b.r_inf(), c[1]]));
    }

    #[test]
    fn degenerate_polytopes_are_rejected() {
        let flat = HPolytope::axis_box(&[0.0, 1.0], &[2.0, 1.0]);
        assert!(ConvexBody::from_polytope(&flat).is_none());
        let unbounded = HPolytope::new(
            2,
            vec![cdb_geometry::Halfspace::from_slice(&[1.0, 0.0], 0.0)],
        );
        assert!(ConvexBody::from_polytope(&unbounded).is_none());
    }

    #[test]
    fn tuple_and_relation_oracles() {
        let t = GeneralizedTuple::from_box_f64(&[0.0], &[1.0]);
        let b = ConvexBody::from_tuple(&t).unwrap();
        assert!(b.contains(&[0.5]));
        assert!(!b.contains(&[1.5]));
        let r = GeneralizedRelation::from_box_f64(&[0.0], &[1.0])
            .union(&GeneralizedRelation::from_box_f64(&[2.0], &[3.0]));
        assert!(MembershipOracle::contains(&r, &[2.5]));
        assert!(!MembershipOracle::contains(&r, &[1.5]));
        assert_eq!(MembershipOracle::dim(&r), 1);
    }

    #[test]
    fn ball_intersection_oracle() {
        let p = HPolytope::axis_box(&[-10.0, -10.0], &[10.0, 10.0]);
        let b = ConvexBody::from_polytope(&p).unwrap();
        let small = b.intersect_ball(1.0);
        assert!(small.contains(&[0.5, 0.0]));
        assert!(!small.contains(&[5.0, 0.0]));
        assert!(small.r_sup() <= 1.0 + 1e-9);
        // Intersecting with a huge ball is a no-op on membership.
        let big = b.intersect_ball(100.0);
        assert!(big.contains(&[9.0, 9.0]));
    }

    #[test]
    fn polynomial_oracles() {
        let ball = PolyBody::ball(&[0.0, 0.0], 1.0);
        assert!(MembershipOracle::contains(&ball, &[0.5, 0.5]));
        assert!(!MembershipOracle::contains(&ball, &[1.0, 1.0]));
        let ell = Ellipsoid::axis_aligned(Vector::zeros(2), &[2.0, 1.0]).unwrap();
        assert!(MembershipOracle::contains(&ell, &[1.5, 0.0]));
        assert!(!MembershipOracle::contains(&ell, &[0.0, 1.5]));
    }

    #[test]
    fn transformed_oracle_roundtrip() {
        // A body in original coordinates, viewed through a scaling by 2.
        let p = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 2.0]);
        let b = ConvexBody::from_polytope(&p).unwrap();
        let to_original = cdb_linalg::AffineMap::scaling(2, 2.0);
        // New coordinates y map to x = 2y, so the box becomes [0,1]^2 in y.
        let t = b.with_transformed_oracle(to_original, Vector::from(vec![0.5, 0.5]), 0.5, 0.8);
        assert!(t.contains(&[0.5, 0.5]));
        assert!(!t.contains(&[1.5, 0.5]));
    }
}
