//! The prepared-relation store: a keyed, concurrency-safe cache of fully
//! prepared generator bodies.
//!
//! Almost all per-query cost in the engine is re-derivable state —
//! certificates, constraint-matrix detection, rounding transforms, pilot
//! volume estimates, warm fiber-weight tables and stratified alias tables.
//! The store maps a canonical formula key to an [`Arc`]-shared, *immutable*
//! prepared body so overlapping queries pay preprocessing once; callers that
//! need mutable scratch clone the body on attach (`(*arc).clone()`), which
//! is cheap relative to re-preparing and never blocks other users.
//!
//! # Invisibility contract
//!
//! A cache is only shippable here if it cannot change results. The store
//! guarantees this structurally:
//!
//! * bodies are built by a caller-supplied closure that must be a **pure
//!   function of the key** — in particular, any randomness used during
//!   preparation must be derived from the key (see
//!   `SpatialDatabase::prepared_generator` in `cdb-core`), never from a
//!   caller's stream. Two racing builders therefore construct bitwise
//!   identical bodies and it does not matter whose insert wins;
//! * eviction only drops the store's own [`Arc`] reference: a body attached
//!   to an in-flight query stays alive until that query drops it;
//! * a store with capacity `0` is *disabled*: every lookup misses and builds
//!   fresh, which is the baseline the determinism suite compares against.
//!
//! # Locking model
//!
//! The table is split into shards, each behind its own [`RwLock`]. Lookups
//! take a shard read lock and bump the entry's LRU stamp with a relaxed
//! atomic, so concurrent hits never contend on a write lock. Misses build
//! the body **outside** any lock, then take the shard write lock, re-check
//! for a racing insert (first writer wins; both bodies are identical by the
//! purity contract) and evict the least-recently-used entry if the shard is
//! over its share of the capacity.
//!
//! # Poison recovery
//!
//! A panic inside a lock-holding critical section poisons that shard's
//! [`RwLock`]. Because every resident body is re-derivable from its key by
//! the purity contract, the store never needs to propagate that poison: the
//! next lookup discards the poisoned shard's contents, clears the poison
//! flag and rebuilds on demand, bumping
//! [`PreparedStoreStats::shards_rebuilt`]. A poisoned shard therefore costs
//! re-preparation, never correctness — cross-query state cannot be
//! corrupted by a contained worker panic.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default total capacity (prepared bodies, across all shards) of a
/// [`PreparedStore`]. Prepared bodies are per-relation, so this comfortably
/// covers a working set of dozens of distinct relations.
pub const DEFAULT_PREPARED_STORE_CAPACITY: usize = 64;

/// Number of independent lock shards used once the capacity is large enough
/// for sharding to make sense.
const SHARDS: usize = 8;

/// Snapshot of a store's counters, exposed for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreparedStoreStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the body (includes every lookup on a
    /// disabled store).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Prepared bodies currently resident.
    pub len: usize,
    /// Lock shards whose contents were discarded and rebuilt after a panic
    /// poisoned them (see the module docs on poison recovery).
    pub shards_rebuilt: u64,
    /// Worker panics contained by the owning database's batch layer. The
    /// store itself never increments this; `cdb-core` merges its own
    /// containment counter into the snapshot it exposes.
    pub panics_recovered: u64,
}

struct StoreEntry<T> {
    body: Arc<T>,
    /// LRU stamp: the global clock value at the last touch. Relaxed atomics
    /// suffice — the stamp only orders evictions, never data.
    stamp: AtomicU64,
}

/// A keyed, sharded, concurrency-safe cache of prepared bodies. See the
/// module docs for the invisibility and locking contracts.
#[derive(Debug)]
pub struct PreparedStore<K, T> {
    shards: Vec<RwLock<HashMap<K, StoreEntry<T>>>>,
    /// Per-shard entry budget (total capacity divided over the shards).
    shard_capacity: usize,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Poisoned shards discarded and rebuilt (see the module docs).
    rebuilt: AtomicU64,
}

impl<T> std::fmt::Debug for StoreEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreEntry")
            .field("stamp", &self.stamp.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<K: Hash + Eq + Clone, T> PreparedStore<K, T> {
    /// Creates a store holding at most `capacity` prepared bodies in total.
    /// Capacity `0` disables caching: every lookup misses and builds fresh.
    pub fn new(capacity: usize) -> Self {
        let nshards = if capacity >= SHARDS { SHARDS } else { 1 };
        PreparedStore {
            shards: (0..nshards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(nshards),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rebuilt: AtomicU64::new(0),
        }
    }

    /// Creates a store with [`DEFAULT_PREPARED_STORE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        PreparedStore::new(DEFAULT_PREPARED_STORE_CAPACITY)
    }

    /// Total capacity in prepared bodies; `0` means the store is disabled.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether lookups can ever be answered from the cache.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Takes a shard's write lock, recovering from poison by discarding the
    /// shard's contents: every body is re-derivable from its key, so an
    /// empty shard is always a correct (if cold) state, while a shard whose
    /// mutation was interrupted mid-panic is not trustworthy.
    fn write_shard<'a>(
        &self,
        shard: &'a RwLock<HashMap<K, StoreEntry<T>>>,
    ) -> RwLockWriteGuard<'a, HashMap<K, StoreEntry<T>>> {
        match shard.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                shard.clear_poison();
                self.rebuilt.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Takes a shard's read lock, recovering from poison by first rebuilding
    /// the shard under the write lock (see [`PreparedStore::write_shard`]).
    fn read_shard<'a>(
        &self,
        shard: &'a RwLock<HashMap<K, StoreEntry<T>>>,
    ) -> RwLockReadGuard<'a, HashMap<K, StoreEntry<T>>> {
        if let Ok(guard) = shard.read() {
            return guard;
        }
        drop(self.write_shard(shard));
        // A racer could re-poison in the re-acquire window; the shard was
        // just cleared, so its (empty) contents are safe to read either way.
        shard
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Number of prepared bodies currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether the store currently holds no bodies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> PreparedStoreStats {
        PreparedStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            shards_rebuilt: self.rebuilt.load(Ordering::Relaxed),
            panics_recovered: 0,
        }
    }

    /// Drops every resident body (in-flight [`Arc`] handles stay alive) and
    /// leaves the counters untouched.
    pub fn clear(&self) {
        for shard in &self.shards {
            self.write_shard(shard).clear();
        }
    }

    /// Whether a body for `key` is resident (test hook; does not touch the
    /// LRU stamp or the counters).
    pub fn contains(&self, key: &K) -> bool {
        self.read_shard(self.shard_of(key)).contains_key(key)
    }

    /// Deliberately poisons the shard holding `key` by panicking while its
    /// write lock is held (the panic is caught here). Fault-injection hook
    /// for the resilience suite: the next operation touching the shard must
    /// discard it, clear the poison and carry on.
    pub fn poison_shard(&self, key: &K) {
        let shard = self.shard_of(key);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.write().expect("prepared-store lock");
            panic!("injected fault: prepared-store shard poison");
        }));
        debug_assert!(result.is_err());
    }

    /// Returns the shared body for `key`, building it with `build` on a
    /// miss. `build` runs outside every lock and **must be a pure function
    /// of the key** (derive any preparation randomness from the key); a
    /// racing insert keeps the first writer's body, which is bitwise
    /// identical by that contract. Errors from `build` are propagated and
    /// nothing is inserted.
    pub fn get_or_try_prepare<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if self.is_enabled() {
            let shard = self.shard_of(key);
            if let Some(entry) = self.read_shard(shard).get(key) {
                entry.stamp.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.body));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let body = Arc::new(build()?);
        if !self.is_enabled() {
            return Ok(body);
        }
        let shard = self.shard_of(key);
        let mut table = self.write_shard(shard);
        if let Some(entry) = table.get(key) {
            // A racer inserted while we were building: keep theirs so every
            // current and future caller shares one allocation.
            entry.stamp.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return Ok(Arc::clone(&entry.body));
        }
        while table.len() >= self.shard_capacity {
            let coldest = table
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match coldest {
                Some(k) => {
                    table.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        table.insert(
            key.clone(),
            StoreEntry {
                body: Arc::clone(&body),
                stamp: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            },
        );
        Ok(body)
    }

    /// Infallible variant of [`PreparedStore::get_or_try_prepare`].
    pub fn get_or_prepare(&self, key: &K, build: impl FnOnce() -> T) -> Arc<T> {
        match self.get_or_try_prepare::<std::convert::Infallible>(key, || Ok(build())) {
            Ok(body) => body,
        }
    }

    fn shard_of(&self, key: &K) -> &RwLock<HashMap<K, StoreEntry<T>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }
}

impl<K: Hash + Eq + Clone, T> Default for PreparedStore<K, T> {
    fn default() -> Self {
        PreparedStore::with_default_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_shares_the_body() {
        let store: PreparedStore<u64, Vec<u32>> = PreparedStore::new(16);
        let a = store.get_or_prepare(&7, || vec![1, 2, 3]);
        let b = store.get_or_prepare(&7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn disabled_store_always_builds_fresh() {
        let store: PreparedStore<u64, u32> = PreparedStore::new(0);
        assert!(!store.is_enabled());
        let a = store.get_or_prepare(&1, || 10);
        let b = store.get_or_prepare(&1, || 10);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().hits, 0);
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        // Capacity below the shard threshold: one shard, LRU is exact.
        let store: PreparedStore<u64, u64> = PreparedStore::new(2);
        store.get_or_prepare(&1, || 100);
        store.get_or_prepare(&2, || 200);
        store.get_or_prepare(&1, || unreachable!("must hit")); // touch 1
        store.get_or_prepare(&3, || 300); // evicts 2
        assert!(store.contains(&1));
        assert!(!store.contains(&2));
        assert!(store.contains(&3));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn eviction_never_poisons_a_held_body() {
        let store: PreparedStore<u64, Vec<u8>> = PreparedStore::new(1);
        let held = store.get_or_prepare(&1, || vec![42; 64]);
        store.get_or_prepare(&2, || vec![7; 64]); // evicts key 1
        assert!(!store.contains(&1));
        assert_eq!(held[0], 42); // the held Arc is untouched
    }

    #[test]
    fn build_errors_propagate_and_insert_nothing() {
        let store: PreparedStore<u64, u32> = PreparedStore::new(4);
        let r: Result<Arc<u32>, &str> = store.get_or_try_prepare(&9, || Err("nope"));
        assert_eq!(r.unwrap_err(), "nope");
        assert!(!store.contains(&9));
        let ok = store.get_or_try_prepare::<&str>(&9, || Ok(5)).unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn poisoned_shard_is_discarded_and_rebuilt() {
        let _quiet = crate::faults::FaultPlan::new(0).install();
        let store: PreparedStore<u64, u64> = PreparedStore::new(4);
        store.get_or_prepare(&1, || 100);
        assert!(store.contains(&1));
        store.poison_shard(&1);
        // The next lookup recovers: the shard is discarded (cold miss) and
        // the store keeps serving.
        let body = store.get_or_prepare(&1, || 100);
        assert_eq!(*body, 100);
        let stats = store.stats();
        assert!(stats.shards_rebuilt >= 1, "no shard rebuild recorded");
        assert_eq!(stats.panics_recovered, 0);
        // Steady state afterwards: hits work again.
        let again = store.get_or_prepare(&1, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&body, &again));
    }

    #[test]
    fn concurrent_mixed_traffic_is_consistent() {
        let store: Arc<PreparedStore<u64, u64>> = Arc::new(PreparedStore::new(8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = (t + i) % 12;
                        let body = store.get_or_prepare(&key, || key * 1000);
                        assert_eq!(*body, key * 1000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.hits + stats.misses, 1600);
        assert!(stats.len <= 8 + SHARDS); // per-shard rounding slack
    }
}
