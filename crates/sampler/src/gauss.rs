//! Ziggurat sampler for the standard normal distribution.
//!
//! Profiling the walk engine showed that direction generation dominated the
//! per-step cost: every Box–Muller Gaussian costs an `ln`, a `sqrt` and a
//! `sin`/`cos` (~50 ns each on this hardware), and hit-and-run needs `d` of
//! them per step. The classical Marsaglia–Tsang ziggurat (128 layers, the
//! ZIGNOR construction) replaces that with one 64-bit draw, one table lookup
//! and one multiply on ≈ 98.8% of calls; the transcendental slow path only
//! runs for the layer edges and the tail.
//!
//! The tables are built once per process from the published constants
//! `R = 3.442619855899` and `V = 9.91256303526217e-3` (Marsaglia & Tsang,
//! *The ziggurat method for generating random variables*, 2000), so no long
//! hard-coded arrays need to be audited. The `moments` test below pins mean,
//! variance, symmetry and tail mass; the statistical acceptance suite
//! (`tests/statistical.rs`) gates the downstream uniformity of the walks.

use std::sync::OnceLock;

use rand::{Rng, RngCore};

/// Number of ziggurat layers.
const LAYERS: usize = 128;
/// Rightmost layer coordinate `R` for 128 layers.
const R: f64 = 3.442619855899;
/// Common layer area `V` for 128 layers.
const V: f64 = 9.91256303526217e-3;
/// Scale of the signed 31-bit integers drawn on the fast path.
const M1: f64 = 2147483648.0; // 2^31

/// Precomputed tables: `kn[i]` is the fast-path acceptance threshold for
/// layer `i`, `wn[i]` the scale from the raw integer to `x`, and `fx[i]` the
/// density `exp(-x_i²/2)` at the layer boundary.
struct Tables {
    kn: [u32; LAYERS],
    wn: [f64; LAYERS],
    fx: [f64; LAYERS],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut kn = [0u32; LAYERS];
        let mut wn = [0.0f64; LAYERS];
        let mut fx = [0.0f64; LAYERS];
        let mut dn = R;
        let mut tn = R;
        let q = V / (-0.5 * dn * dn).exp();
        kn[0] = ((dn / q) * M1) as u32;
        kn[1] = 0;
        wn[0] = q / M1;
        wn[LAYERS - 1] = dn / M1;
        fx[0] = 1.0;
        fx[LAYERS - 1] = (-0.5 * dn * dn).exp();
        for i in (1..=LAYERS - 2).rev() {
            dn = (-2.0 * (V / dn + (-0.5 * dn * dn).exp()).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * M1) as u32;
            tn = dn;
            fx[i] = (-0.5 * dn * dn).exp();
            wn[i] = dn / M1;
        }
        Tables { kn, wn, fx }
    })
}

/// Uniform in `(0, 1)` (both endpoints excluded, as the slow path takes
/// logarithms).
#[inline]
fn uni<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// Draws one standard normal variate.
#[inline]
pub fn standard_normal<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    let t = tables();
    loop {
        // A signed 32-bit draw: the low 7 bits pick the layer, the value
        // doubles as the fast-path candidate.
        let hz = rng.next_u64() as u32 as i32;
        let iz = (hz & (LAYERS as i32 - 1)) as usize;
        if (hz.unsigned_abs()) < t.kn[iz] {
            return hz as f64 * t.wn[iz];
        }
        // Slow path: layer edges and the tail.
        if iz == 0 {
            // Tail beyond R: Marsaglia's exponential-majorant rejection.
            loop {
                let x = -uni(rng).ln() / R;
                let y = -uni(rng).ln();
                if y + y > x * x {
                    return if hz > 0 { R + x } else { -(R + x) };
                }
            }
        }
        let x = hz as f64 * t.wn[iz];
        if t.fx[iz] + uni(rng) * (t.fx[iz - 1] - t.fx[iz]) < (-0.5 * x * x).exp() {
            return x;
        }
        // Otherwise reject and redraw from scratch.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_the_standard_normal() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000usize;
        let (mut sum, mut sum2, mut sum3, mut tail, mut negative) = (0.0, 0.0, 0.0, 0usize, 0usize);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
            if z.abs() > 1.959964 {
                tail += 1;
            }
            if z < 0.0 {
                negative += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!(skew.abs() < 0.03, "third moment {skew}");
        // P(|Z| > 1.96) = 5%, P(Z < 0) = 50%.
        let tail_frac = tail as f64 / n as f64;
        assert!((tail_frac - 0.05).abs() < 0.005, "tail mass {tail_frac}");
        let neg_frac = negative as f64 / n as f64;
        assert!((neg_frac - 0.5).abs() < 0.01, "negative mass {neg_frac}");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn tail_values_are_reachable_and_finite() {
        // Drive enough draws that the |z| > R tail path executes.
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_tail = false;
        for _ in 0..1_000_000 {
            let z = standard_normal(&mut rng);
            assert!(z.is_finite());
            if z.abs() > R {
                seen_tail = true;
            }
        }
        assert!(seen_tail, "tail path never exercised");
    }
}
