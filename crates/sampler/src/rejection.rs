//! The naive bounding-box rejection baseline.
//!
//! Sampling the bounding box uniformly and keeping the points that fall in
//! the body is exact — but the paper's introductory example (a ball inscribed
//! in a cube) shows the acceptance probability collapses like `1/d^{Θ(d)}`,
//! which is why the Dyer–Frieze–Kannan machinery exists. The baseline is kept
//! as a first-class citizen for experiment E2.

use rand::Rng;

use cdb_linalg::Vector;

use crate::budget::{
    BudgetMeter, BudgetTrip, QueryBudget, DEFAULT_REJECTION_ATTEMPT_CAP,
    DEFAULT_REJECTION_VOLUME_TRIALS,
};
use crate::oracle::ConvexBody;
use crate::params::{RelationGenerator, RelationVolumeEstimator};

/// Uniform rejection sampling from an axis-aligned bounding box.
#[derive(Debug, Clone)]
pub struct RejectionSampler {
    body: ConvexBody,
    lo: Vector,
    hi: Vector,
    max_attempts_per_sample: usize,
    volume_trials: usize,
    attempts: u64,
    accepted: u64,
    /// Work limits installed by [`RelationGenerator::set_budget`]; this
    /// sampler runs no walks, so only the attempt counter and the advisory
    /// limits apply (each box draw charges one attempt).
    budget: QueryBudget,
    /// Per-call attempt meter of the rejection loop.
    meter: BudgetMeter,
}

impl RejectionSampler {
    /// Builds the sampler from a body and its bounding box.
    pub fn new(body: ConvexBody, lo: Vector, hi: Vector) -> Self {
        assert_eq!(lo.dim(), body.dim());
        assert_eq!(hi.dim(), body.dim());
        RejectionSampler {
            body,
            lo,
            hi,
            max_attempts_per_sample: DEFAULT_REJECTION_ATTEMPT_CAP,
            volume_trials: DEFAULT_REJECTION_VOLUME_TRIALS,
            attempts: 0,
            accepted: 0,
            budget: QueryBudget::unlimited(),
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Builds the sampler using the enclosing-ball certificate of the body as
    /// the bounding box.
    pub fn from_body(body: ConvexBody) -> Self {
        let d = body.dim();
        let c = body.center().clone();
        let r = body.r_sup();
        let lo = Vector::from((0..d).map(|i| c[i] - r).collect::<Vec<_>>());
        let hi = Vector::from((0..d).map(|i| c[i] + r).collect::<Vec<_>>());
        RejectionSampler::new(body, lo, hi)
    }

    /// Caps the number of box draws per generated sample.
    pub fn set_max_attempts(&mut self, cap: usize) {
        self.max_attempts_per_sample = cap;
    }

    /// Sets the number of box draws used by the volume estimator.
    pub fn set_volume_trials(&mut self, trials: usize) {
        self.volume_trials = trials;
    }

    /// Volume of the bounding box.
    pub fn box_volume(&self) -> f64 {
        (0..self.lo.dim())
            .map(|i| (self.hi[i] - self.lo[i]).max(0.0))
            .product()
    }

    /// Total number of box draws so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Observed acceptance rate (accepted / attempted box draws).
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    /// Expected number of box draws per accepted sample (∞ when nothing has
    /// been accepted yet).
    pub fn expected_trials_per_sample(&self) -> f64 {
        let rate = self.acceptance_rate();
        if rate == 0.0 {
            f64::INFINITY
        } else {
            1.0 / rate
        }
    }

    fn draw_box_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.lo.dim())
            .map(|i| {
                if self.hi[i] > self.lo[i] {
                    rng.gen_range(self.lo[i]..self.hi[i])
                } else {
                    self.lo[i]
                }
            })
            .collect()
    }
}

impl RelationGenerator for RejectionSampler {
    fn dim(&self) -> usize {
        self.body.dim()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.meter = BudgetMeter::new(&self.budget);
        for _ in 0..self.max_attempts_per_sample {
            if !self.meter.charge_attempt() {
                return None;
            }
            let p = self.draw_box_point(rng);
            self.attempts += 1;
            if self.body.contains(&p) {
                self.accepted += 1;
                return Some(p);
            }
        }
        None
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    fn budget_trip(&self) -> Option<BudgetTrip> {
        self.meter.trip()
    }
}

impl RelationVolumeEstimator for RejectionSampler {
    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        self.meter = BudgetMeter::new(&self.budget);
        let mut hits = 0usize;
        for _ in 0..self.volume_trials {
            if !self.meter.charge_attempt() {
                return None;
            }
            let p = self.draw_box_point(rng);
            self.attempts += 1;
            if self.body.contains(&p) {
                hits += 1;
                self.accepted += 1;
            }
        }
        Some(self.box_volume() * hits as f64 / self.volume_trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::ball::{ball_to_cube_ratio, unit_ball_volume};
    use cdb_geometry::{Ellipsoid, HPolytope};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn triangle_volume_estimate() {
        let tri = HPolytope::standard_simplex(2);
        let body = ConvexBody::from_polytope(&tri).unwrap();
        let mut s = RejectionSampler::new(body, Vector::zeros(2), Vector::filled(2, 1.0));
        let mut rng = StdRng::seed_from_u64(71);
        let v = s.estimate_volume(&mut rng).unwrap();
        assert!((v - 0.5).abs() < 0.06, "volume {v}");
        assert!((s.acceptance_rate() - 0.5).abs() < 0.06);
    }

    #[test]
    fn samples_are_inside() {
        let sq = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        let body = ConvexBody::from_polytope(&sq).unwrap();
        let mut s = RejectionSampler::from_body(body);
        let mut rng = StdRng::seed_from_u64(72);
        for p in s.sample_many(100, &mut rng) {
            assert!(sq.contains_slice(&p, 1e-9));
        }
        assert!(s.attempts() >= 100);
    }

    #[test]
    fn acceptance_decays_with_dimension_for_the_ball() {
        // The paper's motivating example: the ball-in-cube acceptance rate
        // drops exponentially with the dimension.
        let mut rates = Vec::new();
        for d in [2usize, 5, 8] {
            let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).unwrap();
            let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 1.0, 1.0);
            let mut s =
                RejectionSampler::new(body, Vector::filled(d, -1.0), Vector::filled(d, 1.0));
            s.set_volume_trials(8_000);
            let mut rng = StdRng::seed_from_u64(73 + d as u64);
            let v = s.estimate_volume(&mut rng).unwrap();
            // The estimate still tracks the true ball volume...
            assert!(
                (v - unit_ball_volume(d)).abs() < 0.3 * unit_ball_volume(d).max(0.1) + 0.05,
                "d={d}: {v}"
            );
            // ...and the acceptance rate tracks the theoretical ratio.
            let expected = ball_to_cube_ratio(d);
            assert!((s.acceptance_rate() - expected).abs() < 0.05, "d={d}");
            rates.push(s.acceptance_rate());
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2]);
    }

    #[test]
    fn sample_gives_up_when_acceptance_is_hopeless() {
        // A tiny body inside a huge box with a very low attempt cap.
        let tiny = HPolytope::axis_box(&[0.0, 0.0], &[1e-4, 1e-4]);
        let body = ConvexBody::from_polytope(&tiny).unwrap();
        let mut s = RejectionSampler::new(body, Vector::zeros(2), Vector::filled(2, 100.0));
        s.set_max_attempts(10);
        let mut rng = StdRng::seed_from_u64(74);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.expected_trials_per_sample().is_infinite());
    }
}
