//! The Dyer–Frieze–Kannan generator and volume estimator for a well-bounded
//! convex body.
//!
//! Structure of the original algorithm (Section 2 of the paper) and of this
//! implementation:
//!
//! 1. **Rounding** — an affine transformation puts the body in well-rounded
//!    position. The paper cites the Grötschel–Lovász–Schrijver transform; we
//!    use the practical equivalent: translate the Chebyshev center to the
//!    origin and whiten with the Cholesky factor of an estimated covariance
//!    matrix (see DESIGN.md, substitutions).
//! 2. **Random walk** — almost-uniform points are produced by a rapidly
//!    mixing walk ([`crate::walk`]); the walk length is a parameter instead
//!    of the theoretical `O(d^19)` bound.
//! 3. **Telescoping volume estimation** — a chain of bodies
//!    `B(c, r_0) = K_0 ⊆ K_1 ⊆ … ⊆ K_q = K` with `K_i = K ∩ B(c, r_inf·2^{i/d})`
//!    keeps consecutive volume ratios bounded by 2; each ratio is estimated
//!    with a Chernoff-style sampling estimator and the product gives the
//!    volume of `K`.

use rand::Rng;

use cdb_linalg::{AffineMap, Matrix};

use cdb_geometry::ball::ball_volume;

use crate::batch;
use crate::oracle::ConvexBody;
use crate::params::{GeneratorParams, SeedSequence};
use crate::walk::{walk, WalkKind, WalkScratch};

thread_local! {
    /// Fallback workspace for the scratch-less convenience entry points
    /// ([`DfkSampler::sample`], [`DfkSampler::estimate_volume`]): one lazily
    /// grown [`WalkScratch`] per thread, so even ad-hoc callers hit the
    /// zero-allocation walk path in steady state.
    static THREAD_SCRATCH: std::cell::RefCell<WalkScratch> =
        std::cell::RefCell::new(WalkScratch::new());
}

/// Almost-uniform generator and volume estimator for one well-bounded convex
/// body (the building block every composed generator of Section 4 rests on).
#[derive(Clone, Debug)]
pub struct DfkSampler {
    /// The body in its original coordinates.
    original: ConvexBody,
    /// The body in rounded coordinates (equal to `original` when rounding is
    /// disabled or unnecessary).
    rounded: ConvexBody,
    /// Map from rounded coordinates back to original coordinates.
    to_original: AffineMap,
    params: GeneratorParams,
}

impl DfkSampler {
    /// Builds a sampler for the body, performing the rounding step when
    /// enabled and useful.
    pub fn new<R: Rng + ?Sized>(body: ConvexBody, params: GeneratorParams, rng: &mut R) -> Self {
        params.validate().expect("invalid generator parameters");
        let d = body.dim();
        let identity = AffineMap::identity(d);
        if !params.rounding || body.aspect_ratio() < 3.0 || d < 2 {
            return DfkSampler {
                rounded: body.clone(),
                original: body,
                to_original: identity,
                params,
            };
        }
        match Self::round(&body, &params, rng) {
            Some((rounded, to_original)) => DfkSampler {
                original: body,
                rounded,
                to_original,
                params,
            },
            None => DfkSampler {
                rounded: body.clone(),
                original: body,
                to_original: identity,
                params,
            },
        }
    }

    /// Estimates a whitening transform from walk samples and re-expresses the
    /// body in the whitened coordinates.
    fn round<R: Rng + ?Sized>(
        body: &ConvexBody,
        params: &GeneratorParams,
        rng: &mut R,
    ) -> Option<(ConvexBody, AffineMap)> {
        let d = body.dim();
        let n = (3 * d * d).max(48);
        let steps = params.walk_steps(d);
        let mut points = Vec::with_capacity(n);
        let mut current = body.center().clone();
        let mut scratch = WalkScratch::new();
        for _ in 0..n {
            current = walk(
                body,
                &current,
                WalkKind::HitAndRun,
                steps,
                rng,
                &mut scratch,
            );
            points.push(current.clone());
        }
        let mean = Matrix::mean(&points)?;
        let cov = Matrix::covariance(&points)?;
        // Regularize slightly so nearly-degenerate directions stay invertible.
        let reg =
            &cov + &Matrix::identity(d).scale(1e-9 * (body.r_sup() * body.r_sup()).max(1e-12));
        let chol = reg.cholesky().ok()?;
        let to_original = AffineMap::new(chol.factor().clone(), mean.clone()).ok()?;
        // Certificates in the rounded coordinates.
        let center_y = to_original.apply_inverse(body.center());
        let l_norm = chol.factor().frobenius_norm().max(1e-12);
        let r_inf_y = (body.r_inf() / l_norm).max(1e-9);
        let r_sup_y = points
            .iter()
            .map(|p| to_original.apply_inverse(p).distance(&center_y))
            .fold(0.0f64, f64::max)
            .max(r_inf_y)
            * 2.0
            + 1.0;
        let rounded = body.with_transformed_oracle(to_original.clone(), center_y, r_inf_y, r_sup_y);
        Some((rounded, to_original))
    }

    /// Dimension of the body.
    pub fn dim(&self) -> usize {
        self.original.dim()
    }

    /// The body being sampled (original coordinates).
    pub fn body(&self) -> &ConvexBody {
        &self.original
    }

    /// The parameters used.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Returns `true` when a non-trivial rounding transform is in place.
    pub fn is_rounded(&self) -> bool {
        self.to_original.det_abs() != 1.0 || self.to_original.translation_part().norm() != 0.0
    }

    /// Draws one almost-uniform point from the body (original coordinates),
    /// running the chain in the caller's [`WalkScratch`] — the allocation-free
    /// entry point used by the composed generators and the batch workers.
    pub fn sample_with<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut WalkScratch) -> Vec<f64> {
        let steps = self.params.walk_steps(self.dim());
        let y = walk(
            &self.rounded,
            self.rounded.center(),
            self.params.walk,
            steps,
            rng,
            scratch,
        );
        self.to_original.apply(&y).into_vec()
    }

    /// Draws one almost-uniform point from the body (original coordinates).
    ///
    /// Convenience wrapper around [`DfkSampler::sample_with`] that reuses a
    /// thread-local scratch, so repeated calls stay on the zero-allocation
    /// walk path without the caller managing a workspace.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        THREAD_SCRATCH.with(|cell| self.sample_with(rng, &mut cell.borrow_mut()))
    }

    /// Draws `n` points. One draw from `rng` seeds a [`SeedSequence`] whose
    /// child streams fund the chains, fanned out over all available cores by
    /// the [`batch`] module — deterministic given the state of `rng`.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        self.sample_batch(n, &SeedSequence::new(rng.next_u64()), 0)
    }

    /// Draws `n` points, chain `i` funded by child stream `i + 1` of `seq`
    /// and the chains split across up to `threads` workers (`0` = one per
    /// core). Bitwise identical output for any thread count.
    pub fn sample_batch(&self, n: usize, seq: &SeedSequence, threads: usize) -> Vec<Vec<f64>> {
        batch::fan_out(n, threads, WalkScratch::new, |scratch, i| {
            self.sample_with(&mut seq.item_stream(i).rng(), scratch)
        })
    }

    /// Estimates the volume of the body with the telescoping scheme; the
    /// result approximates the true volume with ratio `1 + ε` with
    /// probability at least `1 − δ` for sufficiently long walks.
    ///
    /// **Exact-certificate shortcut.** When the certificate is tight
    /// (`r_inf == r_sup`), the body *is* the ball `B(center, r_inf)` —
    /// sandwiched between two identical balls — so the telescoping chain is
    /// empty and the closed-form [`ball_volume`] is returned without
    /// consuming any randomness. This is the "suspiciously exact" 110 ns
    /// path observed in experiment E2, which used to hand the estimator a
    /// tight unit-ball certificate; the estimator is only exercised when the
    /// certificate leaves a gap (see `telescoping_path_is_exercised_by_a_
    /// loose_certificate` below, and the loose certificates now used by the
    /// E2 bench).
    pub fn estimate_volume<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        THREAD_SCRATCH.with(|cell| self.estimate_volume_with(rng, &mut cell.borrow_mut()))
    }

    /// [`DfkSampler::estimate_volume`] running its telescoping chains in the
    /// caller's [`WalkScratch`] (one buffer resize per telescoping phase, no
    /// per-step allocations).
    pub fn estimate_volume_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut WalkScratch,
    ) -> f64 {
        let d = self.rounded.dim();
        let r0 = self.rounded.r_inf();
        let r_sup = self.rounded.r_sup();
        let growth = 2f64.powf(1.0 / d as f64);
        // Radii r_0 < r_1 < … capped at r_sup.
        let mut radii = vec![r0];
        let mut r = r0;
        while r < r_sup {
            r *= growth;
            radii.push(r.min(r_sup));
        }
        let n = self.params.samples_per_phase();
        let steps = self.params.walk_steps(d);
        let mut volume = ball_volume(d, r0);
        let center = self.rounded.center().clone();
        for i in 1..radii.len() {
            // Budget check at the phase boundary: once the scratch meter has
            // tripped, every further walk would be a zero-step no-op, so bail
            // out of the telescoping product immediately. The caller detects
            // the truncation (and discards the garbage value) through
            // [`WalkScratch::budget_trip`]; without an armed budget this
            // check never fires and the loop is unchanged.
            if scratch.budget_trip().is_some() {
                return volume * self.to_original.det_abs();
            }
            let outer = self.rounded.intersect_ball(radii[i]);
            let inner_radius = radii[i - 1];
            let mut inside = 0usize;
            let mut current = center.clone();
            for _ in 0..n {
                current = walk(&outer, &current, self.params.walk, steps, rng, scratch);
                if scratch.budget_trip().is_some() {
                    return volume * self.to_original.det_abs();
                }
                if current.distance(&center) <= inner_radius {
                    inside += 1;
                }
            }
            // By convexity vol(K_{i-1}) ≥ vol(K_i)/2; clamp the estimate away
            // from zero so one unlucky phase cannot zero out the product.
            let fraction = (inside as f64 / n as f64).max(0.25);
            volume /= fraction;
        }
        volume * self.to_original.det_abs()
    }

    /// Median of `repeats` volume estimates — the classical trick to turn an
    /// `(ε, 1/4)`-estimator into an `(ε, δ)`-estimator with `O(ln 1/δ)`
    /// repetitions. One draw from `rng` seeds a [`SeedSequence`] and the
    /// repeats run in parallel through [`DfkSampler::estimate_volume_batch`].
    pub fn estimate_volume_median<R: Rng + ?Sized>(&self, repeats: usize, rng: &mut R) -> f64 {
        self.estimate_volume_median_batch(repeats, &SeedSequence::new(rng.next_u64()), 0)
    }

    /// Runs `repeats` independent telescoping estimates, repeat `i` funded by
    /// child stream `i + 1` of `seq`, split across up to `threads` workers
    /// (`0` = one per core). Bitwise identical output for any thread count.
    pub fn estimate_volume_batch(
        &self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<f64> {
        batch::fan_out(repeats, threads, WalkScratch::new, |scratch, i| {
            self.estimate_volume_with(&mut seq.item_stream(i).rng(), scratch)
        })
    }

    /// Median of [`DfkSampler::estimate_volume_batch`].
    pub fn estimate_volume_median_batch(
        &self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> f64 {
        let mut estimates = self.estimate_volume_batch(repeats.max(1), seq, threads);
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("volume estimates are finite"));
        estimates[estimates.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::HPolytope;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn sampler_for(p: &HPolytope, seed: u64) -> DfkSampler {
        let body = ConvexBody::from_polytope(p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        DfkSampler::new(body, GeneratorParams::fast(), &mut rng)
    }

    #[test]
    fn samples_stay_inside() {
        let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        let s = sampler_for(&square, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for p in s.sample_many(100, &mut rng) {
            assert!(square.contains_slice(&p, 1e-9), "escaped: {p:?}");
        }
    }

    #[test]
    fn square_volume_estimate() {
        let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        let s = sampler_for(&square, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let v = s.estimate_volume_median(3, &mut rng);
        assert!((v - 1.0).abs() < 0.35, "estimated {v}");
    }

    #[test]
    fn triangle_volume_estimate() {
        let tri = HPolytope::standard_simplex(2);
        let s = sampler_for(&tri, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let v = s.estimate_volume_median(3, &mut rng);
        assert!((v - 0.5).abs() < 0.2, "estimated {v}");
    }

    #[test]
    fn three_dimensional_box_volume() {
        let b = HPolytope::axis_box(&[0.0, 0.0, 0.0], &[1.0, 2.0, 0.5]);
        let s = sampler_for(&b, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let v = s.estimate_volume_median(3, &mut rng);
        assert!((v - 1.0).abs() < 0.45, "estimated {v}");
    }

    #[test]
    fn rounding_kicks_in_for_elongated_bodies() {
        // A 100:1 box triggers the rounding transform.
        let long = HPolytope::axis_box(&[0.0, 0.0], &[100.0, 1.0]);
        let body = ConvexBody::from_polytope(&long).unwrap();
        assert!(body.aspect_ratio() > 3.0);
        let mut rng = StdRng::seed_from_u64(9);
        let params = GeneratorParams {
            rounding: true,
            ..GeneratorParams::fast()
        };
        let s = DfkSampler::new(body, params, &mut rng);
        assert!(s.is_rounded());
        // Samples are still inside, and the volume estimate accounts for the
        // determinant of the rounding map.
        let mut rng2 = StdRng::seed_from_u64(10);
        for p in s.sample_many(50, &mut rng2) {
            assert!(long.contains_slice(&p, 1e-6));
        }
        let v = s.estimate_volume_median(5, &mut rng2);
        // The elongated case is the hardest for short walks; require the
        // right order of magnitude (the determinant of the rounding map is
        // accounted for) rather than a tight relative error.
        assert!(v > 30.0 && v < 300.0, "estimated {v}");
    }

    #[test]
    fn tight_certificate_takes_the_exact_shortcut() {
        // E2 audit: with r_inf == r_sup the certificate pins the body to a
        // ball, the telescoping chain is empty and the estimator returns the
        // closed-form ball volume without touching the RNG — the
        // "suspiciously exact" 110 ns path of bench E2.
        use cdb_geometry::ball::unit_ball_volume;
        use cdb_geometry::Ellipsoid;
        use cdb_linalg::Vector;
        use std::sync::Arc;
        let d = 4;
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).unwrap();
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let s = DfkSampler::new(
            body,
            GeneratorParams {
                rounding: false,
                ..GeneratorParams::fast()
            },
            &mut rng,
        );
        let before = rng.clone().next_u64();
        let v = s.estimate_volume(&mut rng);
        assert_eq!(v, unit_ball_volume(d), "shortcut must be exact");
        assert_eq!(rng.next_u64(), before, "shortcut must not consume the rng");
    }

    #[test]
    fn telescoping_path_is_exercised_by_a_loose_certificate() {
        // E2 audit regression: a loose certificate (r_inf < r_sup) pins the
        // estimator to the telescoping-product code — it consumes
        // randomness, varies across seeds, and still tracks the exact ball
        // volume.
        use cdb_geometry::ball::unit_ball_volume;
        use cdb_geometry::Ellipsoid;
        use cdb_linalg::Vector;
        use std::sync::Arc;
        let d = 4;
        let exact = unit_ball_volume(d);
        let ball = Ellipsoid::ball(Vector::zeros(d), 1.0).unwrap();
        let body = ConvexBody::from_oracle(Arc::new(ball), Vector::zeros(d), 0.8, 1.25);
        let mut rng = StdRng::seed_from_u64(14);
        let s = DfkSampler::new(
            body,
            GeneratorParams {
                rounding: false,
                ..GeneratorParams::fast()
            },
            &mut rng,
        );
        let a = s.estimate_volume(&mut StdRng::seed_from_u64(15));
        let b = s.estimate_volume(&mut StdRng::seed_from_u64(16));
        assert_ne!(a, exact, "telescoping estimates are not closed-form");
        assert_ne!(a, b, "telescoping estimates vary across seeds");
        let v = s.estimate_volume_median_batch(5, &SeedSequence::new(17), 0);
        assert!(
            (v - exact).abs() / exact < 0.35,
            "estimated {v} vs exact {exact}"
        );
    }

    #[test]
    fn samples_cover_both_halves() {
        let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        let s = sampler_for(&square, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let pts = s.sample_many(300, &mut rng);
        let left = pts.iter().filter(|p| p[0] < 0.5).count();
        let frac = left as f64 / pts.len() as f64;
        assert!((frac - 0.5).abs() < 0.12, "left fraction {frac}");
    }
}
