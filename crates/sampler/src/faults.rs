//! Deterministic fault injection for the resilience test-suite.
//!
//! A [`FaultPlan`] describes a reproducible failure scenario — worker panics
//! at chosen batch item indices, a countdown of forced draw failures
//! (standing in for oracle/LP breakage), and optional artificial budget
//! pressure. Installing a plan with [`FaultPlan::install`] arms two hooks
//! inside the production code:
//!
//! * the batch fan-out workers call the crate-private `before_item` hook
//!   before each work item and panic when the plan injects a panic there;
//! * `UnionGenerator::sample` calls the crate-private `forced_draw_failure`
//!   hook at its head and fails the draw while the countdown is positive.
//!
//! With no plan installed both hooks are a single relaxed atomic load — they
//! consume no randomness and touch no query state, so the hook-free path is
//! bitwise identical to a build without this module (gated by
//! `tests/resilience.rs`).
//!
//! Installation is serialized by a global lock: [`FaultGuard`] holds it until
//! dropped, so concurrent `#[test]`s that inject faults run one at a time and
//! a plan can never leak into an unrelated query. While a guard is alive the
//! process panic hook suppresses backtraces for payloads beginning with
//! `"injected"`, keeping deliberate panics out of the test logs; the previous
//! hook behavior is restored on drop.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

use crate::budget::QueryBudget;

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static RwLock<Option<FaultPlan>> {
    static SLOT: OnceLock<RwLock<Option<FaultPlan>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// SplitMix64 mix, for deriving deterministic injection points from a seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic description of the faults to inject.
///
/// The plan is immutable once installed; the only interior state is the
/// forced-failure countdown, which is shared across clones so concurrent
/// batch workers drain a single counter.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_items: BTreeSet<usize>,
    forced_draw_failures: Arc<AtomicU64>,
    pressure: Option<QueryBudget>,
}

impl FaultPlan {
    /// Creates an empty plan. The seed only matters for the `*_seeded`
    /// builders; two plans built the same way from the same seed inject at
    /// the same points.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Injects a worker panic when batch item `item` is about to run.
    pub fn with_worker_panic_at(mut self, item: usize) -> Self {
        self.panic_items.insert(item);
        self
    }

    /// Injects a worker panic at a seed-derived item index below `n_items`.
    pub fn with_worker_panic_seeded(mut self, n_items: usize) -> Self {
        assert!(n_items > 0, "cannot seed a panic into an empty batch");
        let item = (mix(self.seed ^ self.panic_items.len() as u64) % n_items as u64) as usize;
        self.panic_items.insert(item);
        self
    }

    /// Forces the next `count` generator draws to fail (a stand-in for
    /// oracle/LP failures deep in the sampler).
    pub fn with_forced_draw_failures(self, count: u64) -> Self {
        self.forced_draw_failures.store(count, Ordering::SeqCst);
        self
    }

    /// Records artificial budget pressure for the harness to apply to its
    /// queries; retrieved with [`FaultPlan::pressure_budget`]. The production
    /// code never reads this — budgets always flow through the explicit
    /// [`QueryBudget`] APIs — but keeping it on the plan lets one value
    /// describe a complete scenario.
    pub fn with_budget_pressure(mut self, budget: QueryBudget) -> Self {
        self.pressure = Some(budget);
        self
    }

    /// The artificial budget pressure of this plan, unlimited when none.
    pub fn pressure_budget(&self) -> QueryBudget {
        self.pressure.clone().unwrap_or_default()
    }

    /// The batch item indices where this plan injects worker panics.
    pub fn panic_items(&self) -> impl Iterator<Item = usize> + '_ {
        self.panic_items.iter().copied()
    }

    /// Installs the plan process-wide, returning a guard that removes it when
    /// dropped. Blocks until any previously installed plan is dropped, so
    /// fault-injecting tests serialize instead of contaminating each other.
    pub fn install(self) -> FaultGuard {
        let lock = install_lock()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous_hook(info);
            }
        }));
        *plan_slot()
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(self);
        ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard { _lock: lock }
    }
}

/// Keeps an installed [`FaultPlan`] armed; dropping it disarms the hooks and
/// restores the default panic hook.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *plan_slot()
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        // take_hook leaves the default hook installed, which is what every
        // non-injecting test in the process expects.
        let _ = std::panic::take_hook();
    }
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> T) -> Option<T> {
    plan_slot()
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .as_ref()
        .map(f)
}

/// Batch-worker hook: panics if the installed plan injects a worker panic at
/// this item. One relaxed atomic load when no plan is installed.
#[inline]
pub(crate) fn before_item(item: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let hit = with_plan(|plan| plan.panic_items.contains(&item)).unwrap_or(false);
    if hit {
        panic!("injected fault: worker panic at item {item}");
    }
}

/// Draw hook: returns `true` (and consumes one countdown tick) while the
/// installed plan still forces draw failures. One relaxed atomic load when no
/// plan is installed.
#[inline]
pub(crate) fn forced_draw_failure() -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    with_plan(|plan| {
        let counter = &plan.forced_draw_failures;
        loop {
            let current = counter.load(Ordering::SeqCst);
            if current == 0 {
                return false;
            }
            if counter
                .compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    })
    .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_plan() {
        before_item(0);
        assert!(!forced_draw_failure());
    }

    #[test]
    fn plan_arms_and_disarms_with_the_guard() {
        {
            let _guard = FaultPlan::new(1).with_forced_draw_failures(2).install();
            assert!(forced_draw_failure());
            assert!(forced_draw_failure());
            assert!(!forced_draw_failure());
        }
        assert!(!forced_draw_failure());
    }

    #[test]
    fn seeded_panic_items_are_reproducible() {
        let a: Vec<usize> = FaultPlan::new(9)
            .with_worker_panic_seeded(64)
            .panic_items()
            .collect();
        let b: Vec<usize> = FaultPlan::new(9)
            .with_worker_panic_seeded(64)
            .panic_items()
            .collect();
        assert_eq!(a, b);
        assert!(a[0] < 64);
    }
}
