//! Query budgets and cooperative cancellation.
//!
//! A [`QueryBudget`] bounds the work a single draw or volume estimate may
//! perform. It separates two kinds of limits explicitly:
//!
//! * **Deterministic counters** — [`QueryBudget::max_steps`] (walk steps) and
//!   [`QueryBudget::max_attempts`] (retry-loop iterations). These are counted
//!   per query call, never consult the clock, and never consume randomness,
//!   so a budgeted run either finishes identically to an unbudgeted one or
//!   trips at exactly the same step for every thread count. They are the
//!   limits to use when reproducibility matters (tests, replayable traces).
//! * **Advisory limits** — a wall-clock [`QueryBudget::deadline`] and a
//!   shareable [`CancelToken`]. These depend on real time and on when another
//!   thread flips the token, so *where* they trip is not reproducible; they
//!   exist for operational control (request timeouts, client disconnects).
//!
//! All four are checked cooperatively at the same coarse boundaries: walk
//! loops check once per granted chunk (at most
//! [`crate::WalkScratch::REFRESH_PERIOD`] steps) and retry loops check once
//! per attempt. There are **zero** budget checks on the hot path between
//! those boundaries, and with no budget installed the checks reduce to one
//! branch per boundary — the unbudgeted path is bitwise identical to a build
//! without this module (gated by `tests/determinism.rs`).
//!
//! The module also owns the documented attempt-ceiling defaults that were
//! previously scattered across `rejection.rs`, `projection.rs`,
//! `intersection.rs` and `difference.rs`, so there is one place to tune them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default cap on rejection attempts per sample for the bounding-box
/// baseline ([`crate::RejectionSampler`]): generous enough for the benchmark
/// workloads whose acceptance rate the experiments measure, small enough that
/// a pathological body fails in milliseconds instead of spinning.
pub const DEFAULT_REJECTION_ATTEMPT_CAP: usize = 100_000;

/// Default number of bounding-box Monte-Carlo trials per rejection volume
/// estimate (the [`crate::RejectionSampler`] volume path).
pub const DEFAULT_REJECTION_VOLUME_TRIALS: usize = 4_000;

/// Hard clamp on the projection rejection budget `d³/(ε·γ)·ln(1/δ)`
/// (Algorithm 2's retry bound grows cubically with the fiber dimension; past
/// this many attempts the acceptance rate is hopeless and the query should
/// fail rather than spin).
pub const PROJECTION_RETRY_CAP: usize = 500_000;

/// Multiplier applied to `GeneratorParams::retry_rounds()` by the
/// intersection and difference generators, whose acceptance rate is the
/// volume *ratio* of the operands rather than a per-component constant.
pub const COMPOSE_ATTEMPT_FACTOR: usize = 32;

/// A shareable cancellation flag.
///
/// Clone the token, hand one clone to the query (via
/// [`QueryBudget::with_cancel`]) and keep the other; calling
/// [`CancelToken::cancel`] from any thread makes the query trip with
/// [`BudgetTrip::Cancelled`] at its next cooperative check point.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budgeted query stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetTrip {
    /// The deterministic walk-step counter ran out.
    Steps,
    /// The deterministic attempt counter ran out.
    Attempts,
    /// The advisory wall-clock deadline passed.
    Deadline,
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetTrip::Steps => write!(f, "walk-step budget exhausted"),
            BudgetTrip::Attempts => write!(f, "attempt budget exhausted"),
            BudgetTrip::Deadline => write!(f, "deadline passed"),
            BudgetTrip::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Work limits for one query (one draw, or one volume estimate).
///
/// The default budget is unlimited. Limits compose: the query trips on
/// whichever limit is reached first. In a batch, the budget applies **per
/// item** — each item's draw re-arms the counters, so an item's outcome is a
/// pure function of its seed stream and the budget, independent of thread
/// count.
#[derive(Clone, Debug, Default)]
pub struct QueryBudget {
    /// Deterministic cap on walk steps per query call (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Deterministic cap on retry-loop attempts per query call.
    pub max_attempts: Option<u64>,
    /// Advisory wall-clock deadline, checked at the cooperative boundaries.
    pub deadline: Option<Instant>,
    /// Advisory cancellation token, checked at the cooperative boundaries.
    pub cancel: Option<CancelToken>,
}

impl QueryBudget {
    /// A budget with no limits: bitwise identical to running without one.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Whether no limit of any kind is installed.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.max_attempts.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Sets the deterministic walk-step cap.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the deterministic attempt cap.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = Some(attempts);
        self
    }

    /// Sets the advisory wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the advisory deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Per-call runtime state of a [`QueryBudget`]: remaining counters, usage
/// tallies and the first trip. Re-armed at the head of every query call;
/// the default meter is unlimited and its checks are a single branch.
#[derive(Clone, Debug, Default)]
pub struct BudgetMeter {
    limited: bool,
    steps_left: u64,
    attempts_left: u64,
    steps_used: u64,
    attempts_used: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    trip: Option<BudgetTrip>,
}

impl BudgetMeter {
    /// Arms a meter for one query call under `budget`.
    pub fn new(budget: &QueryBudget) -> Self {
        BudgetMeter {
            limited: !budget.is_unlimited(),
            steps_left: budget.max_steps.unwrap_or(u64::MAX),
            attempts_left: budget.max_attempts.unwrap_or(u64::MAX),
            steps_used: 0,
            attempts_used: 0,
            deadline: budget.deadline,
            cancel: budget.cancel.clone(),
            trip: None,
        }
    }

    /// An unlimited meter (the no-budget fast path).
    pub fn unlimited() -> Self {
        BudgetMeter::default()
    }

    /// Whether any limit is installed.
    pub fn is_limited(&self) -> bool {
        self.limited
    }

    /// The first limit that tripped, if any.
    pub fn trip(&self) -> Option<BudgetTrip> {
        self.trip
    }

    /// Walk steps granted so far this call.
    pub fn steps_used(&self) -> u64 {
        self.steps_used
    }

    /// Attempts charged so far this call.
    pub fn attempts_used(&self) -> u64 {
        self.attempts_used
    }

    fn check_advisory(&mut self) {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.trip = Some(BudgetTrip::Cancelled);
                return;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip = Some(BudgetTrip::Deadline);
            }
        }
    }

    /// Grants up to `want` walk steps, returning how many the caller may run
    /// before checking in again. Returns `0` once any limit has tripped; on
    /// the unlimited path this is a single branch and grants `want` whole.
    pub fn grant_steps(&mut self, want: usize) -> usize {
        if !self.limited {
            return want;
        }
        if self.trip.is_some() {
            return 0;
        }
        self.check_advisory();
        if self.trip.is_some() {
            return 0;
        }
        let granted = (want as u64).min(self.steps_left);
        if granted == 0 && want > 0 {
            self.trip = Some(BudgetTrip::Steps);
            return 0;
        }
        self.steps_left -= granted;
        self.steps_used += granted;
        granted as usize
    }

    /// Charges one retry-loop attempt, returning `false` once any limit has
    /// tripped (the caller must abandon the loop).
    pub fn charge_attempt(&mut self) -> bool {
        if self.limited {
            if self.trip.is_some() {
                return false;
            }
            self.check_advisory();
            if self.trip.is_some() {
                return false;
            }
            if self.attempts_left == 0 {
                self.trip = Some(BudgetTrip::Attempts);
                return false;
            }
            self.attempts_left -= 1;
        }
        self.attempts_used += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_grants_everything() {
        let mut m = BudgetMeter::unlimited();
        assert!(!m.is_limited());
        assert_eq!(m.grant_steps(1024), 1024);
        assert!(m.charge_attempt());
        assert_eq!(m.trip(), None);
        assert_eq!(m.attempts_used(), 1);
    }

    #[test]
    fn step_budget_trips_at_the_exact_step() {
        let budget = QueryBudget::unlimited().with_max_steps(1500);
        let mut m = BudgetMeter::new(&budget);
        assert_eq!(m.grant_steps(1024), 1024);
        assert_eq!(m.grant_steps(1024), 476);
        assert_eq!(m.trip(), None);
        assert_eq!(m.grant_steps(1024), 0);
        assert_eq!(m.trip(), Some(BudgetTrip::Steps));
        assert_eq!(m.steps_used(), 1500);
    }

    #[test]
    fn attempt_budget_trips_after_the_cap() {
        let budget = QueryBudget::unlimited().with_max_attempts(2);
        let mut m = BudgetMeter::new(&budget);
        assert!(m.charge_attempt());
        assert!(m.charge_attempt());
        assert!(!m.charge_attempt());
        assert_eq!(m.trip(), Some(BudgetTrip::Attempts));
        assert_eq!(m.attempts_used(), 2);
    }

    #[test]
    fn cancel_token_trips_every_clone() {
        let token = CancelToken::new();
        let budget = QueryBudget::unlimited().with_cancel(token.clone());
        let mut m = BudgetMeter::new(&budget);
        assert_eq!(m.grant_steps(64), 64);
        token.cancel();
        assert_eq!(m.grant_steps(64), 0);
        assert_eq!(m.trip(), Some(BudgetTrip::Cancelled));
    }

    #[test]
    fn past_deadline_trips_immediately() {
        let budget =
            QueryBudget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let mut m = BudgetMeter::new(&budget);
        assert!(!m.charge_attempt());
        assert_eq!(m.trip(), Some(BudgetTrip::Deadline));
    }

    #[test]
    fn trips_are_sticky() {
        let budget = QueryBudget::unlimited().with_max_steps(10);
        let mut m = BudgetMeter::new(&budget);
        assert_eq!(m.grant_steps(10), 10);
        assert_eq!(m.grant_steps(1), 0);
        assert_eq!(m.grant_steps(1), 0);
        assert!(!m.charge_attempt());
        assert_eq!(m.trip(), Some(BudgetTrip::Steps));
    }
}
