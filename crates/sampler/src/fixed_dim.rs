//! The fixed-dimension algorithms of Section 3 of the paper.
//!
//! When the dimension is a constant, everything is easy: the bounding box can
//! be cut into `(R/γ)^d` cubes (a polynomial number for fixed `d`), the cubes
//! inside the relation can be enumerated one membership test each, and both
//! exact volume computation (Lemma 3.1) and uniform sampling (Lemma 3.2)
//! follow. The same enumeration is exponential in `d`, which is exactly what
//! experiment E3 measures.

use rand::Rng;

use cdb_constraint::GeneralizedRelation;
use cdb_geometry::{volume::union_volume, GammaGrid};
use cdb_linalg::Vector;

use crate::params::{RelationGenerator, RelationVolumeEstimator};

/// Cube-decomposition sampler and volume estimator for a generalized relation
/// in fixed dimension (Theorem 3.1).
#[derive(Debug, Clone)]
pub struct FixedDimSampler {
    relation: GeneralizedRelation,
    grid: GammaGrid,
    /// Integer grid coordinates of the cells whose center lies in the relation.
    cells: Vec<Vec<i64>>,
}

impl FixedDimSampler {
    /// Hard cap on the number of enumerated cells (the construction is only
    /// meant for fixed, small dimension).
    pub const MAX_CELLS: usize = 4_000_000;

    /// Builds the sampler with cube side `gamma`. Returns `None` when the
    /// relation is empty/unbounded or the decomposition would exceed
    /// [`FixedDimSampler::MAX_CELLS`] cells.
    pub fn new(relation: &GeneralizedRelation, gamma: f64) -> Option<Self> {
        let d = relation.arity();
        let polytopes = relation.to_polytopes();
        if polytopes.is_empty() {
            return None;
        }
        // Bounding box of the union.
        let mut lo = Vector::filled(d, f64::INFINITY);
        let mut hi = Vector::filled(d, f64::NEG_INFINITY);
        for p in &polytopes {
            let (plo, phi) = p.bounding_box()?;
            for i in 0..d {
                lo[i] = lo[i].min(plo[i]);
                hi[i] = hi[i].max(phi[i]);
            }
        }
        let grid = GammaGrid::new(d, gamma);
        let candidates = grid.enumerate_in_box(&lo, &hi, Self::MAX_CELLS)?;
        let cells: Vec<Vec<i64>> = candidates
            .into_iter()
            .filter(|idx| {
                let center = grid.point_at(idx);
                relation.contains_f64(center.as_slice())
            })
            .collect();
        Some(FixedDimSampler {
            relation: relation.clone(),
            grid,
            cells,
        })
    }

    /// Number of cubes whose center lies in the relation.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The grid used for the decomposition.
    pub fn grid(&self) -> &GammaGrid {
        &self.grid
    }

    /// Volume estimate from the cube decomposition: `#cells · γ^d`. This is
    /// the discretized volume `|V| p^d` of Definition 2.2.
    pub fn grid_volume(&self) -> f64 {
        self.cells.len() as f64 * self.grid.cell_volume()
    }

    /// Exact volume via inclusion–exclusion over the convex pieces — the
    /// substitute for the Bieri–Nef sweep-plane algorithm of Lemma 3.1 (see
    /// DESIGN.md). Exponential in the number of pieces and in the dimension.
    pub fn exact_volume(&self) -> f64 {
        union_volume(&self.relation.to_polytopes())
    }
}

impl RelationGenerator for FixedDimSampler {
    fn dim(&self) -> usize {
        self.relation.arity()
    }

    /// Uniform sampling (Lemma 3.2): pick a cube uniformly, then a uniform
    /// point inside the cube.
    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        if self.cells.is_empty() {
            return None;
        }
        let idx = &self.cells[rng.gen_range(0..self.cells.len())];
        let center = self.grid.point_at(idx);
        let half = self.grid.step() / 2.0;
        Some(
            center
                .iter()
                .map(|c| c + rng.gen_range(-half..half))
                .collect(),
        )
    }
}

impl RelationVolumeEstimator for FixedDimSampler {
    fn estimate_volume<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> Option<f64> {
        Some(self.grid_volume())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_volume_approximates_box_volume() {
        let rel = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]);
        let s = FixedDimSampler::new(&rel, 0.05).unwrap();
        assert!(
            (s.grid_volume() - 2.0).abs() / 2.0 < 0.1,
            "grid volume {}",
            s.grid_volume()
        );
        assert!((s.exact_volume() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn union_volume_is_not_double_counted() {
        let rel = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0])
            .union(&GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[3.0, 1.0]));
        let s = FixedDimSampler::new(&rel, 0.05).unwrap();
        assert!(
            (s.grid_volume() - 3.0).abs() / 3.0 < 0.1,
            "grid volume {}",
            s.grid_volume()
        );
        assert!((s.exact_volume() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn samples_are_inside_and_balanced() {
        let rel = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
            .union(&GeneralizedRelation::from_box_f64(&[4.0, 0.0], &[5.0, 1.0]));
        let mut s = FixedDimSampler::new(&rel, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let pts = s.sample_many(600, &mut rng);
        assert_eq!(pts.len(), 600);
        let mut left = 0usize;
        for p in &pts {
            // The jittered point may stick out of the relation by at most
            // one grid cell; its cell center is always inside.
            let snapped = s.grid().snap(&cdb_linalg::Vector::from(p.clone()));
            assert!(
                rel.contains_f64(snapped.as_slice()),
                "cell center escaped: {p:?}"
            );
            if p[0] < 2.0 {
                left += 1;
            }
        }
        let frac = left as f64 / pts.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "left fraction {frac}");
    }

    #[test]
    fn triangle_volume() {
        use cdb_constraint::{Atom, GeneralizedTuple};
        let tri = GeneralizedTuple::new(
            2,
            vec![
                Atom::le_from_ints(&[-1, 0], 0),
                Atom::le_from_ints(&[0, -1], 0),
                Atom::le_from_ints(&[1, 1], -1),
            ],
        );
        let rel = GeneralizedRelation::from_tuple(tri);
        let s = FixedDimSampler::new(&rel, 0.02).unwrap();
        assert!(
            (s.grid_volume() - 0.5).abs() < 0.05,
            "grid volume {}",
            s.grid_volume()
        );
        assert!((s.exact_volume() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn unbounded_or_empty_relations_are_rejected() {
        use cdb_constraint::{Atom, GeneralizedTuple};
        let empty = GeneralizedRelation::empty(2);
        assert!(FixedDimSampler::new(&empty, 0.1).is_none());
        let halfplane = GeneralizedRelation::from_tuple(GeneralizedTuple::new(
            2,
            vec![Atom::le_from_ints(&[1, 0], 0)],
        ));
        assert!(FixedDimSampler::new(&halfplane, 0.1).is_none());
    }

    #[test]
    fn too_fine_a_grid_is_refused() {
        let rel = GeneralizedRelation::from_box_f64(&[0.0, 0.0, 0.0], &[10.0, 10.0, 10.0]);
        assert!(FixedDimSampler::new(&rel, 1e-4).is_none());
    }
}
