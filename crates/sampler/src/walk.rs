//! Random walks on convex bodies.
//!
//! The paper uses the lazy random walk on the graph induced by a γ-grid
//! (Definition 2.2); practical successors of the Dyer–Frieze–Kannan scheme
//! use the ball walk or hit-and-run, which need no grid and mix faster in
//! practice. All three are provided; the composed generators default to
//! hit-and-run, and the grid walk is kept for fidelity to the paper and for
//! the grid-based experiments.
//!
//! # The zero-allocation engine
//!
//! Every step of every walk runs against a [`WalkScratch`] workspace that is
//! created once per chain (or once per batch worker) and reused across steps:
//! the current point, the direction buffer and — when the body's oracle
//! supports the incremental protocol of
//! [`MembershipOracle::walk_state_len`](crate::MembershipOracle::walk_state_len)
//! — the cached chord state (`s = b − A·x` residuals for polytopes,
//! quadratic-form partials for ellipsoids and balls). On that fast path an
//! accepted hit-and-run step costs **one** `A·dir` matrix–vector product plus
//! O(m) scalar work and performs **zero heap allocations** (pinned by the
//! `alloc_counting` integration test). The cached state is refreshed from a
//! full recompute every [`WalkScratch::REFRESH_PERIOD`] accepted steps to
//! bound floating-point drift (pinned by the `walk_incremental` test).

use rand::Rng;

use cdb_linalg::Vector;

use crate::budget::{BudgetMeter, BudgetTrip, QueryBudget};
use crate::oracle::ConvexBody;

/// The random walk used to generate almost-uniform points in a convex body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WalkKind {
    /// Hit-and-run: pick a random direction, then a uniform point on the
    /// chord through the current point.
    HitAndRun,
    /// Metropolis ball walk with step radius `r_inf / √d`.
    Ball,
    /// Lazy walk on the γ-grid (the walk analysed in the paper).
    Grid {
        /// Grid step `p`.
        step_ratio: f64,
    },
}

impl Default for WalkKind {
    fn default() -> Self {
        WalkKind::HitAndRun
    }
}

/// Reusable per-chain workspace of the walk engine.
///
/// Holds the current point, the direction and candidate buffers, and the
/// incremental oracle state (residuals / quadratic partials) together with
/// the direction-image buffer. Create one per chain or per batch worker with
/// [`WalkScratch::new`]; [`WalkScratch::begin`] (called by [`walk`]) sizes the
/// buffers for a body and start point, so a single scratch serves bodies of
/// different dimensions and oracle sizes across its lifetime — resizing
/// allocates, the steps themselves never do.
#[derive(Clone, Debug, Default)]
pub struct WalkScratch {
    point: Vector,
    dir: Vector,
    candidate: Vector,
    state: Vec<f64>,
    dir_image: Vec<f64>,
    incremental: bool,
    accepted_since_refresh: usize,
    meter: BudgetMeter,
}

impl WalkScratch {
    /// Accepted steps between two full recomputes of the incremental oracle
    /// state, bounding the accumulated floating-point drift of the `axpy`
    /// updates. The recompute is one `A·x`-sized pass and does not allocate.
    pub const REFRESH_PERIOD: usize = 1024;

    /// Creates an empty scratch; buffers are sized lazily by
    /// [`WalkScratch::begin`].
    pub fn new() -> Self {
        WalkScratch::default()
    }

    /// Binds the scratch to a body and start point: sizes every buffer for
    /// the body's dimension and oracle state length, copies the start point
    /// in, and initializes the incremental chord state when the oracle
    /// supports it.
    pub fn begin(&mut self, body: &ConvexBody, start: &Vector) {
        self.bind(body, start, true);
    }

    /// [`WalkScratch::begin`] with the incremental chord state disabled —
    /// used by walks that only ever probe membership (the grid walk), for
    /// which maintaining residuals would be pure overhead.
    fn bind(&mut self, body: &ConvexBody, start: &Vector, want_incremental: bool) {
        let d = body.dim();
        assert_eq!(start.dim(), d, "walk start dimension mismatch");
        self.point.copy_from(start);
        self.dir.resize(d, 0.0);
        self.candidate.resize(d, 0.0);
        self.incremental = false;
        if want_incremental {
            if let Some(len) = body.oracle().walk_state_len() {
                self.state.resize(len, 0.0);
                self.dir_image.resize(len, 0.0);
                body.oracle()
                    .walk_state_init(self.point.as_slice(), &mut self.state);
                self.incremental = true;
            }
        }
        self.accepted_since_refresh = 0;
    }

    /// The current point of the chain.
    pub fn point(&self) -> &Vector {
        &self.point
    }

    /// Maximum absolute deviation between the live incremental oracle state
    /// and a fresh recompute at the current point, or `None` when the body's
    /// oracle has no incremental state. Diagnostic (used by the drift tests);
    /// allocates a temporary buffer.
    pub fn residual_drift(&self, body: &ConvexBody) -> Option<f64> {
        if !self.incremental {
            return None;
        }
        let mut fresh = vec![0.0; self.state.len()];
        body.oracle()
            .walk_state_init(self.point.as_slice(), &mut fresh);
        Some(
            self.state
                .iter()
                .zip(&fresh)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Commits an accepted move of `t` along the cached direction on the
    /// incremental path, with the periodic anti-drift refresh.
    fn advance_incremental(&mut self, body: &ConvexBody, t: f64) {
        body.oracle()
            .walk_state_advance(&mut self.state, &self.dir_image, t);
        self.point.axpy(t, &self.dir);
        self.accepted_since_refresh += 1;
        if self.accepted_since_refresh >= Self::REFRESH_PERIOD {
            body.oracle()
                .walk_state_init(self.point.as_slice(), &mut self.state);
            self.accepted_since_refresh = 0;
        }
    }

    /// Fail-fast guard for the public per-step entry points: the scratch must
    /// have been bound to a body of this dimension with [`WalkScratch::begin`]
    /// (a never-bound scratch would otherwise spin forever on a 0-dimensional
    /// direction draw).
    fn assert_bound(&self, body: &ConvexBody) {
        assert_eq!(
            self.point.dim(),
            body.dim(),
            "WalkScratch is not bound to this body: call begin() first"
        );
    }

    /// Arms the budget meter for one query call. The meter deliberately
    /// survives [`WalkScratch::begin`]/`bind` — a single query (one draw or
    /// one volume estimate) runs many walks through the same scratch, and the
    /// deterministic counters must span all of them. Arming with an unlimited
    /// budget is the no-budget fast path: every walk chunk then costs one
    /// extra branch per [`WalkScratch::REFRESH_PERIOD`] steps and nothing
    /// else.
    pub fn arm_budget(&mut self, budget: &QueryBudget) {
        self.meter = BudgetMeter::new(budget);
    }

    /// Removes any armed budget (the meter becomes unlimited).
    pub fn disarm_budget(&mut self) {
        self.meter = BudgetMeter::unlimited();
    }

    /// Why the armed budget tripped, if it did.
    pub fn budget_trip(&self) -> Option<BudgetTrip> {
        self.meter.trip()
    }

    /// Read access to the armed meter (usage tallies for diagnostics).
    pub fn budget_meter(&self) -> &BudgetMeter {
        &self.meter
    }

    /// Mutable access to the armed meter, for charging retry attempts from
    /// the composed generators' loop heads.
    pub fn budget_meter_mut(&mut self) -> &mut BudgetMeter {
        &mut self.meter
    }

    /// Detaches the armed meter, leaving the scratch unlimited. Paired with
    /// [`WalkScratch::restore_meter`] around work that must not be charged to
    /// the query (memoized fiber-weight fills, whose cached values have to be
    /// pure functions of the cell).
    pub fn take_meter(&mut self) -> BudgetMeter {
        std::mem::take(&mut self.meter)
    }

    /// Re-attaches a meter detached by [`WalkScratch::take_meter`].
    pub fn restore_meter(&mut self, meter: BudgetMeter) {
        self.meter = meter;
    }

    /// Re-initializes the incremental state after the point moved outside the
    /// chord protocol (grid steps, snapping).
    fn refresh(&mut self, body: &ConvexBody) {
        if self.incremental {
            body.oracle()
                .walk_state_init(self.point.as_slice(), &mut self.state);
            self.accepted_since_refresh = 0;
        }
    }
}

/// Fills `dir` with a uniform direction on the unit sphere: one ziggurat
/// Gaussian per coordinate ([`crate::gauss::standard_normal`]), normalized in
/// place. No allocation, and — unlike the Box–Muller generator this replaces,
/// which burned an `ln` and a `sin`/`cos` per coordinate and threw away half
/// of every pair — no transcendental functions on the fast path at all.
pub fn random_direction_into<R: Rng + ?Sized>(dir: &mut Vector, rng: &mut R) {
    assert!(!dir.is_empty(), "direction buffer has dimension 0");
    loop {
        for slot in dir.as_mut_slice() {
            *slot = crate::gauss::standard_normal(rng);
        }
        if dir.normalize_in_place() {
            return;
        }
    }
}

/// Samples a uniform direction on the unit sphere (allocating convenience
/// wrapper around [`random_direction_into`]).
pub fn random_direction<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vector {
    let mut v = Vector::zeros(dim);
    random_direction_into(&mut v, rng);
    v
}

/// Finds the chord of the body through `point` in direction `dir` on the
/// non-incremental fallback path, returning `(t_min, t_max)` such that
/// `point + t·dir` stays inside for `t ∈ [t_min, t_max]`. Uses the oracle's
/// closed-form chord when it has one and bisects against the membership
/// oracle otherwise, using `candidate` as the probe buffer.
fn chord_fallback(
    body: &ConvexBody,
    point: &Vector,
    dir: &Vector,
    candidate: &mut Vector,
) -> (f64, f64) {
    let max_extent = 2.0 * body.r_sup() + 1.0;
    if let Some((lo, hi)) = body.chord_interval(point, dir) {
        let lo = lo.max(-max_extent);
        let hi = hi.min(max_extent);
        return if lo > hi { (0.0, 0.0) } else { (lo, hi) };
    }
    let mut boundary = |sign: f64| -> f64 {
        // Invariant: point + lo·sign·dir inside, point + hi·sign·dir outside.
        let mut lo = 0.0f64;
        let mut hi = max_extent;
        let probe = |candidate: &mut Vector, t: f64| {
            candidate.copy_from(point);
            candidate.axpy(sign * t, dir);
        };
        probe(candidate, hi);
        if body.contains_vec(candidate) {
            return hi; // certificate radius was loose; accept the cap
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            probe(candidate, mid);
            if body.contains_vec(candidate) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let t_plus = boundary(1.0);
    let t_minus = boundary(-1.0);
    (-t_minus, t_plus)
}

/// One hit-and-run step from the scratch's current point. Returns `true` when
/// the step was accepted (the point moved). The scratch must have been bound
/// to this body with [`WalkScratch::begin`].
pub fn hit_and_run_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    scratch: &mut WalkScratch,
    rng: &mut R,
) -> bool {
    scratch.assert_bound(body);
    random_direction_into(&mut scratch.dir, rng);
    if scratch.incremental {
        let max_extent = 2.0 * body.r_sup() + 1.0;
        let (lo, hi) = body.oracle().walk_state_chord(
            &scratch.state,
            scratch.dir.as_slice(),
            &mut scratch.dir_image,
        );
        let lo = lo.max(-max_extent);
        let hi = hi.min(max_extent);
        if hi - lo <= 0.0 {
            return false;
        }
        let t = rng.gen_range(lo..=hi);
        if body
            .oracle()
            .walk_state_contains(&scratch.state, &scratch.dir_image, t)
        {
            scratch.advance_incremental(body, t);
            true
        } else {
            false
        }
    } else {
        let (t_min, t_max) =
            chord_fallback(body, &scratch.point, &scratch.dir, &mut scratch.candidate);
        if t_max - t_min <= 0.0 {
            return false;
        }
        let t = rng.gen_range(t_min..=t_max);
        scratch.candidate.copy_from(&scratch.point);
        scratch.candidate.axpy(t, &scratch.dir);
        if body.contains_vec(&scratch.candidate) {
            scratch.point.copy_from(&scratch.candidate);
            true
        } else {
            false
        }
    }
}

/// One Metropolis ball-walk step with radius `delta` from the scratch's
/// current point. Returns `true` when the step was accepted.
pub fn ball_walk_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    scratch: &mut WalkScratch,
    delta: f64,
    rng: &mut R,
) -> bool {
    scratch.assert_bound(body);
    random_direction_into(&mut scratch.dir, rng);
    let r: f64 = rng.gen_range(0.0f64..1.0).powf(1.0 / body.dim() as f64) * delta;
    if scratch.incremental {
        // The chord along `dir` doubles as the membership test: the candidate
        // point + r·dir is inside iff r lies on the chord.
        let (lo, hi) = body.oracle().walk_state_chord(
            &scratch.state,
            scratch.dir.as_slice(),
            &mut scratch.dir_image,
        );
        if r < lo || r > hi {
            return false;
        }
        scratch.advance_incremental(body, r);
        true
    } else {
        scratch.candidate.copy_from(&scratch.point);
        scratch.candidate.axpy(r, &scratch.dir);
        if body.contains_vec(&scratch.candidate) {
            scratch.point.copy_from(&scratch.candidate);
            true
        } else {
            false
        }
    }
}

/// One lazy grid-walk step with grid step `p` from the scratch's current
/// point: with probability 1/2 stay, otherwise move to a uniformly chosen
/// axis neighbor if it stays inside. Returns `true` when the point moved.
pub fn grid_walk_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    scratch: &mut WalkScratch,
    p: f64,
    rng: &mut R,
) -> bool {
    scratch.assert_bound(body);
    if rng.gen_bool(0.5) {
        return false;
    }
    let d = body.dim();
    let axis = rng.gen_range(0..d);
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    scratch.candidate.copy_from(&scratch.point);
    scratch.candidate[axis] += sign * p;
    if body.contains_vec(&scratch.candidate) {
        scratch.point.copy_from(&scratch.candidate);
        // Axis moves bypass the chord protocol, so resynchronize the state.
        scratch.refresh(body);
        true
    } else {
        false
    }
}

/// Runs `steps` steps of the chosen walk from `start` using (and re-binding)
/// the given scratch, returning the final point.
///
/// The step loops consult the scratch's armed [`BudgetMeter`] once per chunk
/// of at most [`WalkScratch::REFRESH_PERIOD`] steps: each chunk is granted up
/// front and runs unchecked, so an unarmed (unlimited) meter adds one branch
/// per chunk and the walk is bitwise identical to an uncheckered loop. When
/// the deterministic step budget runs out mid-walk the remaining steps are
/// skipped and the current point is returned; callers observe the truncation
/// through [`WalkScratch::budget_trip`].
pub fn walk<R: Rng + ?Sized>(
    body: &ConvexBody,
    start: &Vector,
    kind: WalkKind,
    steps: usize,
    rng: &mut R,
    scratch: &mut WalkScratch,
) -> Vector {
    // Grid walks only probe membership, so skip the incremental chord state
    // (initializing and resynchronizing it would cost an extra O(m·d) pass
    // per accepted axis move for nothing).
    scratch.bind(body, start, !matches!(kind, WalkKind::Grid { .. }));
    match kind {
        WalkKind::HitAndRun => {
            let mut left = steps;
            while left > 0 {
                let run = scratch
                    .meter
                    .grant_steps(left.min(WalkScratch::REFRESH_PERIOD));
                if run == 0 {
                    break;
                }
                for _ in 0..run {
                    hit_and_run_step(body, scratch, rng);
                }
                left -= run;
            }
        }
        WalkKind::Ball => {
            let delta = body.r_inf() / (body.dim() as f64).sqrt();
            let mut left = steps;
            while left > 0 {
                let run = scratch
                    .meter
                    .grant_steps(left.min(WalkScratch::REFRESH_PERIOD));
                if run == 0 {
                    break;
                }
                for _ in 0..run {
                    ball_walk_step(body, scratch, delta, rng);
                }
                left -= run;
            }
        }
        WalkKind::Grid { step_ratio } => {
            let p = (body.r_inf() * step_ratio).max(1e-9);
            // Start from the grid point nearest to the start that is inside.
            scratch.candidate.copy_from(&scratch.point);
            for i in 0..body.dim() {
                scratch.candidate[i] = (scratch.candidate[i] / p).round() * p;
            }
            if body.contains_vec(&scratch.candidate) {
                scratch.point.copy_from(&scratch.candidate);
            }
            let mut left = steps;
            while left > 0 {
                let run = scratch
                    .meter
                    .grant_steps(left.min(WalkScratch::REFRESH_PERIOD));
                if run == 0 {
                    break;
                }
                for _ in 0..run {
                    grid_walk_step(body, scratch, p, rng);
                }
                left -= run;
            }
        }
    }
    scratch.point.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::HPolytope;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_body() -> ConvexBody {
        ConvexBody::from_polytope(&HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0])).unwrap()
    }

    #[test]
    fn random_direction_is_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [1usize, 2, 5, 10] {
            let v = random_direction(d, &mut rng);
            assert!((v.norm() - 1.0).abs() < 1e-9);
            assert_eq!(v.dim(), d);
        }
    }

    #[test]
    fn directions_are_isotropic_on_average() {
        // The mean of many unit directions must vanish and no coordinate may
        // carry more than its share of the squared mass.
        let mut rng = StdRng::seed_from_u64(7);
        let d = 4;
        let n = 4000;
        let mut mean = vec![0.0f64; d];
        let mut mass = vec![0.0f64; d];
        for _ in 0..n {
            let v = random_direction(d, &mut rng);
            for i in 0..d {
                mean[i] += v[i];
                mass[i] += v[i] * v[i];
            }
        }
        for i in 0..d {
            assert!((mean[i] / n as f64).abs() < 0.05, "mean[{i}]");
            assert!(
                (mass[i] / n as f64 - 1.0 / d as f64).abs() < 0.03,
                "mass[{i}]"
            );
        }
    }

    #[test]
    fn walks_stay_inside_the_body() {
        let body = square_body();
        let start = body.center().clone();
        let mut scratch = WalkScratch::new();
        for kind in [
            WalkKind::HitAndRun,
            WalkKind::Ball,
            WalkKind::Grid { step_ratio: 0.25 },
        ] {
            for seed in 0..5u64 {
                let mut local = StdRng::seed_from_u64(seed);
                let p = walk(&body, &start, kind, 30, &mut local, &mut scratch);
                assert!(body.contains_vec(&p), "{kind:?} escaped to {p:?}");
            }
        }
    }

    #[test]
    fn hit_and_run_moves_away_from_the_start() {
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = WalkScratch::new();
        let p = walk(
            &body,
            &start,
            WalkKind::HitAndRun,
            20,
            &mut rng,
            &mut scratch,
        );
        assert!(p.distance(&start) > 1e-6);
    }

    #[test]
    fn hit_and_run_covers_the_square_roughly_uniformly() {
        // Count samples in the four quadrants of the unit square; each should
        // receive roughly a quarter of the mass.
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = WalkScratch::new();
        let n = 800;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let p = walk(
                &body,
                &start,
                WalkKind::HitAndRun,
                25,
                &mut rng,
                &mut scratch,
            );
            let q = (p[0] > 0.5) as usize + 2 * ((p[1] > 0.5) as usize);
            counts[q] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.08, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn fallback_chord_respects_an_asymmetric_position() {
        // From a point near the left edge, the chord along +x is much longer
        // than along -x; exercised through the bisection-capable fallback.
        let body = square_body();
        let point = Vector::from(vec![0.1, 0.5]);
        let dir = Vector::from(vec![1.0, 0.0]);
        let mut candidate = Vector::zeros(2);
        let (t_min, t_max) = super::chord_fallback(&body, &point, &dir, &mut candidate);
        assert!((t_max - 0.9).abs() < 1e-6);
        assert!((t_min + 0.1).abs() < 1e-6);
    }

    #[test]
    fn incremental_chord_matches_the_closed_form() {
        let body = square_body();
        let mut scratch = WalkScratch::new();
        let point = Vector::from(vec![0.1, 0.5]);
        scratch.begin(&body, &point);
        assert!(scratch.incremental);
        let dir = Vector::from(vec![1.0, 0.0]);
        let mut dir_image = vec![0.0; scratch.state.len()];
        let (lo, hi) =
            body.oracle()
                .walk_state_chord(&scratch.state, dir.as_slice(), &mut dir_image);
        assert!((hi - 0.9).abs() < 1e-6);
        assert!((lo + 0.1).abs() < 1e-6);
    }

    #[test]
    fn grid_walk_visits_grid_points() {
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = WalkScratch::new();
        let p = walk(
            &body,
            &start,
            WalkKind::Grid { step_ratio: 0.5 },
            40,
            &mut rng,
            &mut scratch,
        );
        // r_inf of the unit square is 0.5, so the grid step is 0.25.
        for coord in p.iter() {
            let snapped = (coord / 0.25).round() * 0.25;
            assert!((coord - snapped).abs() < 1e-9, "not a grid point: {coord}");
        }
    }

    #[test]
    fn scratch_rebinds_across_bodies_of_different_sizes() {
        let small = square_body();
        let big = ConvexBody::from_polytope(&HPolytope::hypercube(5, 1.0)).unwrap();
        let mut scratch = WalkScratch::new();
        let mut rng = StdRng::seed_from_u64(6);
        let a = walk(
            &small,
            small.center(),
            WalkKind::HitAndRun,
            10,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(a.dim(), 2);
        let b = walk(
            &big,
            big.center(),
            WalkKind::HitAndRun,
            10,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(b.dim(), 5);
        assert!(big.contains_vec(&b));
        let c = walk(
            &small,
            small.center(),
            WalkKind::HitAndRun,
            10,
            &mut rng,
            &mut scratch,
        );
        assert!(small.contains_vec(&c));
    }
}
