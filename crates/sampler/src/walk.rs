//! Random walks on convex bodies.
//!
//! The paper uses the lazy random walk on the graph induced by a γ-grid
//! (Definition 2.2); practical successors of the Dyer–Frieze–Kannan scheme
//! use the ball walk or hit-and-run, which need no grid and mix faster in
//! practice. All three are provided; the composed generators default to
//! hit-and-run, and the grid walk is kept for fidelity to the paper and for
//! the grid-based experiments.

use rand::Rng;

use cdb_linalg::Vector;

use crate::oracle::ConvexBody;

/// The random walk used to generate almost-uniform points in a convex body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WalkKind {
    /// Hit-and-run: pick a random direction, then a uniform point on the
    /// chord through the current point.
    HitAndRun,
    /// Metropolis ball walk with step radius `r_inf / √d`.
    Ball,
    /// Lazy walk on the γ-grid (the walk analysed in the paper).
    Grid {
        /// Grid step `p`.
        step_ratio: f64,
    },
}

impl Default for WalkKind {
    fn default() -> Self {
        WalkKind::HitAndRun
    }
}

/// Samples a uniform direction on the unit sphere.
pub fn random_direction<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vector {
    loop {
        // Box–Muller style Gaussian direction.
        let mut v = Vector::zeros(dim);
        for i in 0..dim {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            v[i] = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        if let Some(unit) = v.normalized() {
            return unit;
        }
    }
}

/// Finds the chord of the body through `point` in direction `dir`, returning
/// `(t_min, t_max)` such that `point + t·dir` stays inside for
/// `t ∈ [t_min, t_max]`. Uses the oracle's closed-form chord when it has one
/// (polytopes, ellipsoids, their ball intersections and affine preimages),
/// and falls back to bisection against the membership oracle otherwise.
fn chord(body: &ConvexBody, point: &Vector, dir: &Vector) -> (f64, f64) {
    let max_extent = 2.0 * body.r_sup() + 1.0;
    if let Some((lo, hi)) = body.chord_interval(point, dir) {
        let lo = lo.max(-max_extent);
        let hi = hi.min(max_extent);
        return if lo > hi { (0.0, 0.0) } else { (lo, hi) };
    }
    let boundary = |sign: f64| -> f64 {
        // Invariant: point + lo·sign·dir inside, point + hi·sign·dir outside.
        let mut lo = 0.0f64;
        let mut hi = max_extent;
        if body.contains_vec(&point.add_scaled(dir, sign * hi)) {
            return hi; // certificate radius was loose; accept the cap
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if body.contains_vec(&point.add_scaled(dir, sign * mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let t_plus = boundary(1.0);
    let t_minus = boundary(-1.0);
    (-t_minus, t_plus)
}

/// One hit-and-run step.
pub fn hit_and_run_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    current: &Vector,
    rng: &mut R,
) -> Vector {
    let dir = random_direction(body.dim(), rng);
    let (t_min, t_max) = chord(body, current, &dir);
    if t_max - t_min <= 0.0 {
        return current.clone();
    }
    let t = rng.gen_range(t_min..=t_max);
    let candidate = current.add_scaled(&dir, t);
    if body.contains_vec(&candidate) {
        candidate
    } else {
        current.clone()
    }
}

/// One Metropolis ball-walk step with radius `delta`.
pub fn ball_walk_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    current: &Vector,
    delta: f64,
    rng: &mut R,
) -> Vector {
    let dir = random_direction(body.dim(), rng);
    let r: f64 = rng.gen_range(0.0f64..1.0).powf(1.0 / body.dim() as f64) * delta;
    let candidate = current.add_scaled(&dir, r);
    if body.contains_vec(&candidate) {
        candidate
    } else {
        current.clone()
    }
}

/// One lazy grid-walk step with grid step `p`: with probability 1/2 stay,
/// otherwise move to a uniformly chosen axis neighbor if it stays inside.
pub fn grid_walk_step<R: Rng + ?Sized>(
    body: &ConvexBody,
    current: &Vector,
    p: f64,
    rng: &mut R,
) -> Vector {
    if rng.gen_bool(0.5) {
        return current.clone();
    }
    let d = body.dim();
    let axis = rng.gen_range(0..d);
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let mut candidate = current.clone();
    candidate[axis] += sign * p;
    if body.contains_vec(&candidate) {
        candidate
    } else {
        current.clone()
    }
}

/// Runs `steps` steps of the chosen walk from `start`.
pub fn walk<R: Rng + ?Sized>(
    body: &ConvexBody,
    start: &Vector,
    kind: WalkKind,
    steps: usize,
    rng: &mut R,
) -> Vector {
    let mut current = start.clone();
    match kind {
        WalkKind::HitAndRun => {
            for _ in 0..steps {
                current = hit_and_run_step(body, &current, rng);
            }
        }
        WalkKind::Ball => {
            let delta = body.r_inf() / (body.dim() as f64).sqrt();
            for _ in 0..steps {
                current = ball_walk_step(body, &current, delta, rng);
            }
        }
        WalkKind::Grid { step_ratio } => {
            let p = (body.r_inf() * step_ratio).max(1e-9);
            // Start from the grid point nearest to the start that is inside.
            let snapped: Vector = Vector::from(
                current
                    .iter()
                    .map(|v| (v / p).round() * p)
                    .collect::<Vec<_>>(),
            );
            if body.contains_vec(&snapped) {
                current = snapped;
            }
            for _ in 0..steps {
                current = grid_walk_step(body, &current, p, rng);
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::HPolytope;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_body() -> ConvexBody {
        ConvexBody::from_polytope(&HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0])).unwrap()
    }

    #[test]
    fn random_direction_is_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [1usize, 2, 5, 10] {
            let v = random_direction(d, &mut rng);
            assert!((v.norm() - 1.0).abs() < 1e-9);
            assert_eq!(v.dim(), d);
        }
    }

    #[test]
    fn walks_stay_inside_the_body() {
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(2);
        for kind in [
            WalkKind::HitAndRun,
            WalkKind::Ball,
            WalkKind::Grid { step_ratio: 0.25 },
        ] {
            for seed in 0..5u64 {
                let mut local = StdRng::seed_from_u64(seed);
                let p = walk(&body, &start, kind, 30, &mut local);
                assert!(body.contains_vec(&p), "{kind:?} escaped to {p:?}");
            }
        }
        let _ = &mut rng;
    }

    #[test]
    fn hit_and_run_moves_away_from_the_start() {
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(3);
        let p = walk(&body, &start, WalkKind::HitAndRun, 20, &mut rng);
        assert!(p.distance(&start) > 1e-6);
    }

    #[test]
    fn hit_and_run_covers_the_square_roughly_uniformly() {
        // Count samples in the four quadrants of the unit square; each should
        // receive roughly a quarter of the mass.
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 800;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let p = walk(&body, &start, WalkKind::HitAndRun, 25, &mut rng);
            let q = (p[0] > 0.5) as usize + 2 * ((p[1] > 0.5) as usize);
            counts[q] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.08, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn chord_respects_an_asymmetric_position() {
        // From a point near the left edge, the chord along +x is much longer
        // than along -x.
        let body = square_body();
        let point = Vector::from(vec![0.1, 0.5]);
        let dir = Vector::from(vec![1.0, 0.0]);
        let (t_min, t_max) = super::chord(&body, &point, &dir);
        assert!((t_max - 0.9).abs() < 1e-6);
        assert!((t_min + 0.1).abs() < 1e-6);
    }

    #[test]
    fn grid_walk_visits_grid_points() {
        let body = square_body();
        let start = body.center().clone();
        let mut rng = StdRng::seed_from_u64(5);
        let p = walk(
            &body,
            &start,
            WalkKind::Grid { step_ratio: 0.5 },
            40,
            &mut rng,
        );
        // r_inf of the unit square is 0.5, so the grid step is 0.25.
        for coord in p.iter() {
            let snapped = (coord / 0.25).round() * 0.25;
            assert!((coord - snapped).abs() < 1e-9, "not a grid point: {coord}");
        }
    }
}
