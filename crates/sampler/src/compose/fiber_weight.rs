//! The compensation-weight subsystem of Algorithm 2: strategy selection and
//! memoization for the cylinder weight `ĥ`.
//!
//! Algorithm 2 accepts a projected point `y` with probability `1/ĥ`, where
//! `ĥ = vol(H_S(y)) / cell` counts the γ-grid points in the fiber above `y`.
//! PR 4 measured that over half of every projection attempt went to
//! recomputing that fiber volume from scratch — a fresh fiber polytope plus
//! a vertex enumeration per candidate. Two observations make the cost
//! almost entirely removable:
//!
//! * `ĥ` is by construction a *grid* quantity (the paper defines it as the
//!   number of γ-grid points in the fiber), so the weight is evaluated **per
//!   grid cell**: `y` snaps to its cell and the cell's weight is an exact,
//!   finite-domain memo value. Relative to evaluating the fiber volume at
//!   the exact (continuous) `y`, the per-cell weight quantizes the
//!   compensation at grid resolution — the same O(step) granularity the
//!   γ-discretization already imposes on the output distribution, and
//!   pinned by the seeded chi-square/volume gates in `tests/statistical.rs`;
//! * the weight of a cell is a **pure function** of the cell — `Exact`
//!   consumes no randomness at all, and `Estimated` derives its RNG stream
//!   from the cell key and a per-generator seed — so a warm cache, a cold
//!   cache and no cache at all produce bitwise identical trajectories, and
//!   batch workers agree regardless of which worker filled which cell first.
//!
//! [`FiberWeightCache`] is the memo: a fixed-capacity open-addressing table
//! over the integer grid coordinates of the projected cell with LRU-ish
//! eviction inside each probe window. One cache lives in each generator (and
//! therefore in each batch worker's clone), preserving the batch layer's
//! thread-count-invariance contract bit for bit.
//!
//! [`FiberVolume`] picks how a cache miss is filled: exact vertex
//! enumeration (exponential in the fiber dimension, unbeatable below it) or
//! the in-crate Dyer–Frieze–Kannan telescoping estimator under an `(ε, δ)`
//! budget (polynomial, the only option once the fiber dimension grows).

use crate::compose::stratified::CellSelection;
use crate::params::GeneratorParams;

/// Fiber dimensions up to this bound default to exact vertex enumeration;
/// above it [`FiberVolume::Auto`] switches to the telescoping estimator
/// (vertex enumeration visits `C(m, e)` bases — hopeless for deep fibers).
pub const AUTO_EXACT_MAX_FIBER_DIM: usize = 6;

/// Default capacity of the per-generator [`FiberWeightCache`].
pub const DEFAULT_WEIGHT_CACHE_CAPACITY: usize = 4096;

/// Default budget of [`ProjectionParams::max_enumerated_cells`]: the largest
/// occupied-cell enumeration [`CellSelection::Auto`] resolves to full
/// stratified enumeration; finer grids fall back to the coarse-to-fine
/// cascade (and its lazy per-coarse-cell tables honor the same bound).
pub const DEFAULT_MAX_ENUMERATED_CELLS: usize = 1 << 16;

/// Linear-probe window of the open-addressing table: a lookup inspects at
/// most this many slots, and an insert evicts the least-recently-used entry
/// within the window when all of them are occupied.
const PROBE_WINDOW: usize = 8;

/// Upper bound on the slot count of a [`FiberWeightCache`]. Requests above
/// it (e.g. `usize::MAX` meaning "effectively unbounded") are clamped here
/// instead of overflowing `next_power_of_two`; 2²⁴ slots is already far
/// beyond any projection's cell working set.
const MAX_CACHE_SLOTS: usize = 1 << 24;

/// How the cylinder weight `ĥ` of a cache-missed cell is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FiberVolume {
    /// Pick [`FiberVolume::Exact`] for fiber dimensions up to
    /// [`AUTO_EXACT_MAX_FIBER_DIM`], [`FiberVolume::Estimated`] above.
    Auto,
    /// Exact fiber volume by vertex enumeration
    /// ([`cdb_geometry::fiber::FiberTemplate::exact_volume`]).
    Exact,
    /// `(ε, δ)` fiber-volume estimate through the in-crate telescoping
    /// estimator, with randomness derived from the cell key so the weight
    /// stays a pure function of the cell.
    Estimated,
}

/// Parameters of the projection generator: the underlying
/// [`GeneratorParams`] plus the compensation-weight knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionParams {
    /// Parameters of the walks, grids and retry budgets (Definition 2.2).
    pub base: GeneratorParams,
    /// Fiber-volume strategy; [`FiberVolume::Auto`] resolves by fiber
    /// dimension at construction.
    pub fiber_volume: FiberVolume,
    /// Capacity of the per-generator weight cache; `0` disables memoization
    /// (every attempt recomputes its weight — the cold twin of the perf
    /// report).
    pub cache_capacity: usize,
    /// `ε` of the estimated-fiber-volume budget (only read by
    /// [`FiberVolume::Estimated`]).
    pub estimator_eps: f64,
    /// `δ` of the estimated-fiber-volume budget.
    pub estimator_delta: f64,
    /// How the generator selects the γ-grid cell of each sample;
    /// [`CellSelection::Auto`] resolves against the enumeration budget at
    /// construction.
    pub cell_selection: CellSelection,
    /// Largest cell enumeration the stratified layer may build eagerly
    /// (full enumeration under [`CellSelection::Stratified`], per-coarse-cell
    /// fine tables under [`CellSelection::CoarseToFine`]).
    pub max_enumerated_cells: usize,
}

impl ProjectionParams {
    /// Wraps base generator parameters with the default weight subsystem:
    /// auto strategy selection, a [`DEFAULT_WEIGHT_CACHE_CAPACITY`]-entry
    /// cache, and the base `(ε, δ)` as the estimator budget.
    pub fn new(base: GeneratorParams) -> Self {
        ProjectionParams {
            base,
            fiber_volume: FiberVolume::Auto,
            cache_capacity: DEFAULT_WEIGHT_CACHE_CAPACITY,
            estimator_eps: base.eps,
            estimator_delta: base.delta,
            cell_selection: CellSelection::Auto,
            max_enumerated_cells: DEFAULT_MAX_ENUMERATED_CELLS,
        }
    }

    /// Overrides the fiber-volume strategy.
    pub fn with_fiber_volume(mut self, mode: FiberVolume) -> Self {
        self.fiber_volume = mode;
        self
    }

    /// Overrides the cache capacity (`0` disables memoization).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the `(ε, δ)` budget of the estimated strategy.
    pub fn with_estimator_budget(mut self, eps: f64, delta: f64) -> Self {
        self.estimator_eps = eps;
        self.estimator_delta = delta;
        self
    }

    /// Overrides the cell-selection strategy.
    pub fn with_cell_selection(mut self, selection: CellSelection) -> Self {
        self.cell_selection = selection;
        self
    }

    /// Overrides the eager-enumeration budget of the stratified layer.
    pub fn with_max_enumerated_cells(mut self, cells: usize) -> Self {
        self.max_enumerated_cells = cells;
        self
    }

    /// Resolves [`FiberVolume::Auto`] against a concrete fiber dimension.
    pub fn resolve_fiber_volume(&self, fiber_dim: usize) -> FiberVolume {
        match self.fiber_volume {
            FiberVolume::Auto => {
                if fiber_dim <= AUTO_EXACT_MAX_FIBER_DIM {
                    FiberVolume::Exact
                } else {
                    FiberVolume::Estimated
                }
            }
            explicit => explicit,
        }
    }

    /// The generator parameters handed to the telescoping fiber-volume
    /// estimator: the base walk configuration under the estimator's own
    /// `(ε, δ)` budget, without rounding (fibers are re-estimated per cell;
    /// the rounding walks would dominate the fill cost).
    pub fn estimator_params(&self) -> GeneratorParams {
        GeneratorParams {
            eps: self.estimator_eps,
            delta: self.estimator_delta,
            rounding: false,
            ..self.base
        }
    }

    /// Validates the base parameters and the estimator budget.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        for (name, v) in [
            ("estimator_eps", self.estimator_eps),
            ("estimator_delta", self.estimator_delta),
        ] {
            if !(0.0 < v && v < 1.0) {
                return Err(format!("{name} must lie in (0, 1), got {v}"));
            }
        }
        if self.max_enumerated_cells == 0 {
            return Err("max_enumerated_cells must be positive".into());
        }
        Ok(())
    }
}

impl From<GeneratorParams> for ProjectionParams {
    fn from(base: GeneratorParams) -> Self {
        ProjectionParams::new(base)
    }
}

/// One stored cell weight.
#[derive(Clone, Debug)]
struct Entry {
    hash: u64,
    key: Vec<i64>,
    weight: f64,
    stamp: u64,
}

/// Fixed-capacity memo of cylinder weights, keyed by the integer γ-grid
/// coordinates of the projected cell.
///
/// Open addressing with linear probing over a power-of-two table; inserts
/// that find their whole probe window occupied evict the least-recently-used
/// entry *within the window* (LRU-ish: cheap, deterministic, and good enough
/// because the working set of a projection run — the cells of the projected
/// body — is tiny compared to the default capacity). All operations are
/// deterministic functions of the call sequence, so caching never perturbs
/// batch determinism.
#[derive(Clone, Debug)]
pub struct FiberWeightCache {
    slots: Vec<Option<Entry>>,
    /// `slots.len() - 1` when enabled (power-of-two table).
    mask: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl FiberWeightCache {
    /// Creates a cache with at least `capacity` slots (rounded up to a power
    /// of two, clamped to `MAX_CACHE_SLOTS` so an "unbounded" request like
    /// `usize::MAX` stays finite); `0` builds a disabled cache that never
    /// stores anything.
    pub fn new(capacity: usize) -> Self {
        if capacity == 0 {
            return FiberWeightCache {
                slots: Vec::new(),
                mask: 0,
                tick: 0,
                hits: 0,
                misses: 0,
            };
        }
        let size = capacity
            .min(MAX_CACHE_SLOTS)
            .next_power_of_two()
            .max(PROBE_WINDOW);
        FiberWeightCache {
            slots: vec![None; size],
            mask: size - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// `true` when the cache can store entries (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Deterministic hash of a cell key — also used to derive the RNG stream
    /// of the [`FiberVolume::Estimated`] strategy, so an estimated weight is
    /// a pure function of `(generator seed, cell)`.
    pub fn key_hash(key: &[i64]) -> u64 {
        // SplitMix64-style avalanche folded over the coordinates.
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (key.len() as u64);
        for &k in key {
            h ^= k as u64;
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        h
    }

    /// Looks the cell up, refreshing its recency stamp on a hit.
    pub fn get(&mut self, key: &[i64]) -> Option<f64> {
        self.get_hashed(Self::key_hash(key), key)
    }

    /// [`FiberWeightCache::get`] with the key's hash precomputed — the hot
    /// path computes the hash once and reuses it for the probe, the insert
    /// and the estimator's RNG stream.
    pub fn get_hashed(&mut self, hash: u64, key: &[i64]) -> Option<f64> {
        debug_assert_eq!(hash, Self::key_hash(key), "stale key hash");
        if self.slots.is_empty() {
            self.misses += 1;
            return None;
        }
        let base = hash as usize & self.mask;
        for i in 0..PROBE_WINDOW {
            let idx = (base + i) & self.mask;
            if let Some(entry) = &mut self.slots[idx] {
                if entry.hash == hash && entry.key == key {
                    self.tick += 1;
                    entry.stamp = self.tick;
                    self.hits += 1;
                    return Some(entry.weight);
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Stores the cell's weight, evicting the least-recently-used entry of
    /// the probe window when it is full. No-op on a disabled cache.
    pub fn insert(&mut self, key: &[i64], weight: f64) {
        self.insert_hashed(Self::key_hash(key), key, weight);
    }

    /// Iterates over the warm cells: `(integer grid key, stored weight)` for
    /// every occupied slot, in table order. Table order depends on the fill
    /// history, so callers that need the canonical deterministic order must
    /// sort by the integer key (the stratified layer enumerates cells
    /// directly in odometer order instead and only uses the cache as a
    /// memo, precisely to avoid that dependency).
    pub fn iter(&self) -> impl Iterator<Item = (&[i64], f64)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|e| (e.key.as_slice(), e.weight)))
    }

    /// Exports the warm cells in canonical order (sorted by integer grid
    /// key) for sharing through the prepared-relation store. Table order is
    /// fill-history dependent, so the export sorts: importing the result
    /// yields a table state that is a pure function of the warm *set*,
    /// independent of the insertion history that produced it.
    pub fn export_warm(&self) -> Vec<(Vec<i64>, f64)> {
        let mut cells: Vec<(Vec<i64>, f64)> = self.iter().map(|(k, w)| (k.to_vec(), w)).collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        cells
    }

    /// Replays a warm export into this cache in its canonical (sorted)
    /// order. Existing contents, stamps and hit/miss counters are kept;
    /// callers wanting a deterministic table state import into a fresh
    /// cache. No-op on a disabled cache.
    pub fn import_warm(&mut self, cells: &[(Vec<i64>, f64)]) {
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by(|&a, &b| cells[a].0.cmp(&cells[b].0));
        for i in order {
            let (key, weight) = &cells[i];
            self.insert(key, *weight);
        }
    }

    /// [`FiberWeightCache::insert`] with the key's hash precomputed.
    pub fn insert_hashed(&mut self, hash: u64, key: &[i64], weight: f64) {
        debug_assert_eq!(hash, Self::key_hash(key), "stale key hash");
        if self.slots.is_empty() {
            return;
        }
        let base = hash as usize & self.mask;
        self.tick += 1;
        let mut victim = base & self.mask;
        let mut victim_stamp = u64::MAX;
        for i in 0..PROBE_WINDOW {
            let idx = (base + i) & self.mask;
            match &mut self.slots[idx] {
                None => {
                    self.slots[idx] = Some(Entry {
                        hash,
                        key: key.to_vec(),
                        weight,
                        stamp: self.tick,
                    });
                    return;
                }
                Some(entry) => {
                    if entry.hash == hash && entry.key == key {
                        entry.weight = weight;
                        entry.stamp = self.tick;
                        return;
                    }
                    if entry.stamp < victim_stamp {
                        victim_stamp = entry.stamp;
                        victim = idx;
                    }
                }
            }
        }
        self.slots[victim] = Some(Entry {
            hash,
            key: key.to_vec(),
            weight,
            stamp: self.tick,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_roundtrip_and_stats() {
        let mut c = FiberWeightCache::new(64);
        assert!(c.is_enabled());
        assert!(c.is_empty());
        assert_eq!(c.get(&[1, 2]), None);
        c.insert(&[1, 2], 7.5);
        assert_eq!(c.get(&[1, 2]), Some(7.5));
        assert_eq!(c.get(&[2, 1]), None, "key order matters");
        assert_eq!((c.hits(), c.misses()), (1, 2));
        assert_eq!(c.len(), 1);
        // Re-inserting overwrites in place.
        c.insert(&[1, 2], 9.0);
        assert_eq!(c.get(&[1, 2]), Some(9.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_capacity_requests_are_clamped() {
        let c = FiberWeightCache::new(usize::MAX);
        assert!(c.is_enabled());
        assert_eq!(c.capacity(), MAX_CACHE_SLOTS);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut c = FiberWeightCache::new(0);
        assert!(!c.is_enabled());
        c.insert(&[3], 1.0);
        assert_eq!(c.get(&[3]), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn eviction_is_bounded_and_keeps_recent_entries() {
        // A tiny table forces evictions; recently-touched keys survive the
        // window-local LRU while the stale ones go.
        let mut c = FiberWeightCache::new(8);
        for k in 0..200i64 {
            c.insert(&[k], k as f64);
        }
        assert!(c.len() <= c.capacity());
        // The most recent insert is always retrievable.
        assert_eq!(c.get(&[199]), Some(199.0));
    }

    #[test]
    fn heavy_reuse_after_eviction_pressure() {
        let mut c = FiberWeightCache::new(32);
        // A hot key touched between single inserts always carries the
        // freshest stamp in its probe window, so the window-local LRU never
        // picks it as the victim.
        c.insert(&[-3, -3], 42.0);
        for wave in 0..10i64 {
            for k in 0..16i64 {
                c.insert(&[wave, k], (wave * k) as f64);
                assert_eq!(
                    c.get(&[-3, -3]),
                    Some(42.0),
                    "hot key evicted in wave {wave} at churn key {k}"
                );
            }
        }
    }

    #[test]
    fn key_hash_is_stable_and_spreads() {
        assert_eq!(
            FiberWeightCache::key_hash(&[1, 2, 3]),
            FiberWeightCache::key_hash(&[1, 2, 3])
        );
        assert_ne!(
            FiberWeightCache::key_hash(&[1, 2, 3]),
            FiberWeightCache::key_hash(&[3, 2, 1])
        );
        assert_ne!(
            FiberWeightCache::key_hash(&[0]),
            FiberWeightCache::key_hash(&[0, 0])
        );
    }

    #[test]
    fn auto_strategy_resolves_by_fiber_dimension() {
        let p = ProjectionParams::new(GeneratorParams::fast());
        assert_eq!(
            p.resolve_fiber_volume(AUTO_EXACT_MAX_FIBER_DIM),
            FiberVolume::Exact
        );
        assert_eq!(
            p.resolve_fiber_volume(AUTO_EXACT_MAX_FIBER_DIM + 1),
            FiberVolume::Estimated
        );
        let forced = p.with_fiber_volume(FiberVolume::Estimated);
        assert_eq!(forced.resolve_fiber_volume(1), FiberVolume::Estimated);
        let exact = p.with_fiber_volume(FiberVolume::Exact);
        assert_eq!(exact.resolve_fiber_volume(100), FiberVolume::Exact);
    }

    #[test]
    fn params_builders_and_validation() {
        let base = GeneratorParams::fast();
        let p = ProjectionParams::new(base)
            .with_cache_capacity(0)
            .with_estimator_budget(0.25, 0.15);
        assert_eq!(p.cache_capacity, 0);
        assert_eq!(p.estimator_params().eps, 0.25);
        assert_eq!(p.estimator_params().delta, 0.15);
        assert!(!p.estimator_params().rounding);
        assert!(p.validate().is_ok());
        assert!(p.with_estimator_budget(0.0, 0.1).validate().is_err());
        let from: ProjectionParams = base.into();
        assert_eq!(from.base, base);
        assert_eq!(from.fiber_volume, FiberVolume::Auto);
        assert_eq!(from.cell_selection, CellSelection::Auto);
        assert_eq!(from.max_enumerated_cells, DEFAULT_MAX_ENUMERATED_CELLS);
        let strat = p.with_cell_selection(CellSelection::Stratified);
        assert_eq!(strat.cell_selection, CellSelection::Stratified);
        assert!(strat.with_max_enumerated_cells(0).validate().is_err());
        assert!(strat.with_max_enumerated_cells(128).validate().is_ok());
    }

    #[test]
    fn cache_iteration_exposes_warm_cells() {
        let mut c = FiberWeightCache::new(64);
        c.insert(&[3, -1], 0.25);
        c.insert(&[0, 7], 1.5);
        let mut cells: Vec<(Vec<i64>, f64)> = c.iter().map(|(k, w)| (k.to_vec(), w)).collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(cells, vec![(vec![0, 7], 1.5), (vec![3, -1], 0.25)]);
        // A disabled cache iterates over nothing.
        assert_eq!(FiberWeightCache::new(0).iter().count(), 0);
    }
}
