//! Stratified cell selection for Algorithm 2: inverting the acceptance wall.
//!
//! The rejection form of Algorithm 2 draws a uniform point of `S`, projects
//! it, and accepts with probability `1/ĥ`. On deep-fiber bodies the measured
//! acceptance is ~1e-4 — about 10⁴ discarded chains per accepted sample —
//! and that cost is *inherent to the loop*, not to the weight computation
//! the cache already removed. But the loop's output distribution over grid
//! cells has a closed form: a cell `c` with unclamped cell mass
//! `raw(c) = vol(H_S(center_c)) / p^{d−e}` is selected with probability
//! proportional to
//!
//! ```text
//! P(c) ∝ raw(c) · (1 / max(raw(c), 1)) = min(raw(c), 1)
//! ```
//!
//! (the chance the projected walk lands in `c` times the chance the
//! compensation coin accepts it). Stratified selection samples that
//! distribution *directly*: enumerate the occupied cells once, build a Vose
//! alias table over `min(raw, 1)`, draw a cell in O(1), and emit a uniform
//! point of the cell — one table draw instead of ~10⁴ discarded chains.
//!
//! When the grid is too fine to enumerate outright, a **coarse-to-fine
//! cascade** keeps the same target distribution: draw a coarse cell
//! uniformly from the projected bounding box at a step `ratio` times
//! coarser, lazily build the fine alias table *inside* that coarse cell,
//! and accept the coarse cell with probability `W_c / ratio^e` where
//! `W_c ≤ ratio^e` is the total fine mass inside it. Acceptance is the
//! occupied fraction of the bounding box — bounded by geometry, not by `ĥ`.
//!
//! # Determinism contract
//!
//! Construction is a pure function of the generator: cells are enumerated in
//! odometer (lexicographic integer-key) order, weights are pure functions of
//! `(weight_seed, cell)` exactly as in the rejection path, and construction
//! consumes **no sampling randomness**. Warm, cold and disabled weight
//! caches, any thread count, and lazily-built coarse-to-fine tables all
//! produce bitwise identical output streams.

use rand::Rng;

use std::collections::HashMap;

/// How the projection generator selects the γ-grid cell of its next sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellSelection {
    /// Resolve at construction: [`CellSelection::Stratified`] when the
    /// occupied-cell enumeration fits the
    /// [`ProjectionParams::max_enumerated_cells`](crate::ProjectionParams)
    /// budget, [`CellSelection::CoarseToFine`] otherwise.
    Auto,
    /// The paper's literal Algorithm 2: walk in `S`, project, accept with
    /// probability `1/ĥ`. Kept as the reference implementation and for
    /// trajectory continuity in the perf report.
    Rejection,
    /// Full enumeration + Vose alias table over `min(raw, 1)` cell weights;
    /// every `sample()` succeeds with one O(1) table draw.
    Stratified,
    /// Coarse-to-fine cascade for grids too fine to enumerate: uniform
    /// coarse draw over the projected bounding box, lazy per-coarse-cell
    /// fine alias tables, acceptance `W_c / ratio^e`.
    CoarseToFine,
}

/// A Vose alias table: O(n) construction, O(1) sampling from a discrete
/// distribution proportional to the input weights.
///
/// Construction is deterministic: the small/large worklists are filled in
/// index order and drained from the back, so the same weights always yield
/// the same table — a requirement of the batch layer's bitwise
/// reproducibility contract.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance threshold of each slot (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Donor index taken when the slot's coin rejects.
    alias: Vec<usize>,
    /// Sum of the input weights.
    total: f64,
}

impl AliasTable {
    /// Builds the table. Returns `None` when the weights are unusable: the
    /// slice is empty, a weight is negative or non-finite, or no weight is
    /// positive.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !(total > 0.0) || !total.is_finite() {
            return None;
        }
        let n = weights.len();
        // Scale so the average weight is 1, then split into donors (>= 1)
        // and receivers (< 1); each receiver is topped up by exactly one
        // donor, whose surplus re-enters the worklist.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers on either list sit at (numerically) 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasTable { prob, alias, total })
    }

    /// Number of slots (= input weights).
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no slots (never constructed by
    /// [`AliasTable::new`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the input weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draws an index proportionally to the input weights. Consumes exactly
    /// two random values (slot, coin) regardless of the outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_range(0..self.prob.len());
        if rng.gen_range(0.0..1.0) < self.prob[slot] {
            slot
        } else {
            self.alias[slot]
        }
    }

    /// The exact probability the table assigns to index `i`:
    /// `(t_i + Σ_{j : alias(j) = i} (1 − t_j)) / n`. Exposed so the
    /// property tests can verify mass conservation without sampling.
    pub fn effective_probability(&self, i: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut mass = self.prob[i];
        for (j, &a) in self.alias.iter().enumerate() {
            if a == i && j != i {
                mass += 1.0 - self.prob[j];
            }
        }
        mass / n
    }
}

/// Inclusive integer index ranges of the γ-grid cells covering the projected
/// bounding box, one `(lo, hi)` pair per kept coordinate.
#[derive(Clone, Debug)]
pub struct CellRange {
    /// Smallest cell index per kept axis.
    pub lo: Vec<i64>,
    /// Largest cell index per kept axis.
    pub hi: Vec<i64>,
}

impl CellRange {
    /// Builds the range from the kept-coordinate bounding box `[lo, hi]` and
    /// the grid step. Cell `k` covers `[(k−½)·step, (k+½)·step)`; one extra
    /// cell of margin on each side keeps every cell whose half-open interval
    /// intersects the box (out-of-body cells get weight 0 and are dropped by
    /// the alias construction).
    pub fn from_box(lo: &[f64], hi: &[f64], step: f64) -> Self {
        let lo_idx: Vec<i64> = lo.iter().map(|&v| (v / step).floor() as i64).collect();
        let hi_idx: Vec<i64> = hi.iter().map(|&v| (v / step).ceil() as i64).collect();
        CellRange {
            lo: lo_idx,
            hi: hi_idx,
        }
    }

    /// Number of kept axes.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Number of cells in the box, saturating at `u64::MAX`.
    pub fn cell_count(&self) -> u64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&a, &b)| (b - a + 1).max(0) as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Calls `f` for every cell key in odometer (lexicographic) order — the
    /// canonical deterministic enumeration order of the stratified layer.
    pub fn for_each_key<F: FnMut(&[i64])>(&self, mut f: F) {
        let e = self.dim();
        if e == 0 || self.lo.iter().zip(&self.hi).any(|(&a, &b)| a > b) {
            return;
        }
        let mut key = self.lo.clone();
        loop {
            f(&key);
            let mut axis = e;
            loop {
                if axis == 0 {
                    return;
                }
                axis -= 1;
                if key[axis] < self.hi[axis] {
                    key[axis] += 1;
                    for later in axis + 1..e {
                        key[later] = self.lo[later];
                    }
                    break;
                }
            }
        }
    }
}

/// The fully-enumerated stratified selector: occupied cells in odometer
/// order, their `min(raw, 1)` selection weights, and the alias table over
/// them.
#[derive(Clone, Debug)]
pub struct StratifiedCells {
    /// Integer grid keys of the cells with positive selection weight, in
    /// odometer order.
    keys: Vec<Vec<i64>>,
    /// Selection weight `min(raw, 1)` of each key (aligned with `keys`).
    weights: Vec<f64>,
    /// Alias table over `weights`.
    table: AliasTable,
}

impl StratifiedCells {
    /// Builds the selector from `(key, weight)` pairs already in odometer
    /// order; pairs with non-positive weight are dropped. Returns `None`
    /// when no cell carries positive weight.
    pub fn from_weighted_keys(cells: Vec<(Vec<i64>, f64)>) -> Option<Self> {
        let mut keys = Vec::with_capacity(cells.len());
        let mut weights = Vec::with_capacity(cells.len());
        for (key, w) in cells {
            if w > 0.0 {
                keys.push(key);
                weights.push(w);
            }
        }
        let table = AliasTable::new(&weights)?;
        Some(StratifiedCells {
            keys,
            weights,
            table,
        })
    }

    /// Occupied cell keys in odometer order.
    pub fn keys(&self) -> &[Vec<i64>] {
        &self.keys
    }

    /// Selection weight `min(raw, 1)` of each occupied cell.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total selection mass `Σ min(raw, 1)`; multiplied by the projected
    /// cell volume `step^e` this is the stratified volume estimate of `T`.
    pub fn total_mass(&self) -> f64 {
        self.table.total_weight()
    }

    /// Number of occupied cells.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no cell carries positive weight (never constructed).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Draws an occupied cell key proportionally to its weight.
    pub fn sample_key<R: Rng + ?Sized>(&self, rng: &mut R) -> &[i64] {
        &self.keys[self.table.sample(rng)]
    }
}

/// One lazily-built fine-cell table inside a coarse cell of the cascade.
#[derive(Clone, Debug)]
pub struct FineCell {
    /// Fine keys with positive weight, odometer order within the coarse cell.
    pub keys: Vec<Vec<i64>>,
    /// Alias table over those keys (`None` when the coarse cell is empty).
    pub table: Option<AliasTable>,
    /// Total fine selection mass `W_c` inside the coarse cell.
    pub mass: f64,
}

/// The coarse-to-fine cascade: a coarser lattice over the projected bounding
/// box whose cells are drawn uniformly, each memoizing the alias table of
/// the `ratio^e` fine cells it contains.
#[derive(Clone, Debug)]
pub struct CoarseMap {
    /// Fine cells per coarse cell per axis (a power of two).
    ratio: i64,
    /// Fine-cell index range of the projected bounding box.
    fine: CellRange,
    /// Number of coarse cells per axis.
    coarse_counts: Vec<i64>,
    /// Memoized fine tables, keyed by coarse cell. Only keyed lookups — map
    /// iteration order never influences sampling, so the unordered map is
    /// safe under the determinism contract.
    cells: HashMap<Vec<i64>, FineCell>,
}

impl CoarseMap {
    /// Chooses the largest power-of-two ratio whose per-coarse-cell fine
    /// table has at most `max_cells` slots (and at least 2, so the cascade
    /// always coarsens). The coarse lattice itself is never enumerated —
    /// cells are drawn per axis and memoized lazily — so its size is
    /// unconstrained; a large ratio merely maximizes memo reuse, and the
    /// acceptance rate (the occupied fraction of the bounding box) does not
    /// depend on the ratio at all.
    pub fn new(fine: CellRange, max_cells: u64) -> Self {
        let e = fine.dim().max(1) as u32;
        let mut ratio: i64 = 2;
        while (ratio as u64 * 2)
            .checked_pow(e)
            .is_some_and(|per_cell| per_cell <= max_cells)
            && ratio < (1 << 40)
        {
            ratio *= 2;
        }
        let coarse_counts = fine
            .lo
            .iter()
            .zip(&fine.hi)
            .map(|(&a, &b)| (((b - a + 1).max(1) as u64).div_ceil(ratio as u64)) as i64)
            .collect();
        CoarseMap {
            ratio,
            fine,
            coarse_counts,
            cells: HashMap::new(),
        }
    }

    /// Fine cells per coarse cell per axis.
    pub fn ratio(&self) -> i64 {
        self.ratio
    }

    /// `ratio^e`: the uniform-proposal mass a coarse cell is accepted
    /// against.
    pub fn proposal_mass(&self) -> f64 {
        (self.ratio as f64).powi(self.fine.dim() as i32)
    }

    /// Number of coarse cells per axis.
    pub fn coarse_counts(&self) -> &[i64] {
        &self.coarse_counts
    }

    /// Number of memoized coarse cells so far.
    pub fn memoized(&self) -> usize {
        self.cells.len()
    }

    /// Draws a coarse cell uniformly from the lattice covering the bounding
    /// box. Consumes one random value per kept axis, in axis order.
    pub fn sample_coarse<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<i64>) {
        out.clear();
        for &n in &self.coarse_counts {
            out.push(rng.gen_range(0..n));
        }
    }

    /// The fine-cell index range covered by coarse cell `c` (clamped to the
    /// bounding-box range).
    pub fn fine_range_of(&self, coarse: &[i64]) -> CellRange {
        let lo: Vec<i64> = coarse
            .iter()
            .zip(&self.fine.lo)
            .map(|(&c, &f)| f + c * self.ratio)
            .collect();
        let hi: Vec<i64> = lo
            .iter()
            .zip(&self.fine.hi)
            .map(|(&l, &f)| (l + self.ratio - 1).min(f))
            .collect();
        CellRange { lo, hi }
    }

    /// Looks up the memoized fine table of `coarse`, building it with
    /// `mass_of` on first touch. The weights are pure functions of the fine
    /// cell, so lazy construction is invisible to the output stream.
    pub fn fine_cell<F: FnMut(&[i64]) -> f64>(
        &mut self,
        coarse: &[i64],
        mut mass_of: F,
    ) -> &FineCell {
        if !self.cells.contains_key(coarse) {
            let range = self.fine_range_of(coarse);
            let mut keys = Vec::new();
            let mut weights = Vec::new();
            range.for_each_key(|key| {
                let w = mass_of(key).min(1.0);
                if w > 0.0 {
                    keys.push(key.to_vec());
                    weights.push(w);
                }
            });
            let mass: f64 = weights.iter().sum();
            let table = AliasTable::new(&weights);
            self.cells
                .insert(coarse.to_vec(), FineCell { keys, table, mass });
        }
        &self.cells[coarse]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_rejects_unusable_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_table_single_cell_always_wins() {
        let t = AliasTable::new(&[3.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert!((t.effective_probability(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn alias_table_mass_matches_weights() {
        let weights = [1.0, 3.0, 0.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 4);
        assert!((t.total_weight() - 8.0).abs() < 1e-12);
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                (t.effective_probability(i) - w / 8.0).abs() < 1e-12,
                "index {i}"
            );
        }
        // The zero-weight slot is unreachable.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng), 2);
        }
    }

    #[test]
    fn alias_table_construction_is_deterministic() {
        let weights: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64 + 0.25).collect();
        let a = AliasTable::new(&weights).unwrap();
        let b = AliasTable::new(&weights).unwrap();
        assert_eq!(a.prob, b.prob);
        assert_eq!(a.alias, b.alias);
    }

    #[test]
    fn cell_range_counts_and_margins() {
        let r = CellRange::from_box(&[0.0, 0.0], &[1.0, 0.5], 0.25);
        assert_eq!(r.dim(), 2);
        // floor(0/0.25)=0 .. ceil(1/0.25)=4 and 0..2 -> 5 * 3 cells.
        assert_eq!(r.cell_count(), 15);
        let neg = CellRange::from_box(&[-1.0], &[-0.5], 0.25);
        assert_eq!(neg.lo, vec![-4]);
        assert_eq!(neg.hi, vec![-2]);
    }

    #[test]
    fn stratified_cells_drop_zero_weight_entries() {
        let cells = vec![
            (vec![0], 0.0),
            (vec![1], 0.5),
            (vec![2], 1.0),
            (vec![3], 0.0),
        ];
        let s = StratifiedCells::from_weighted_keys(cells).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.keys(), &[vec![1], vec![2]]);
        assert!((s.total_mass() - 1.5).abs() < 1e-12);
        assert!(StratifiedCells::from_weighted_keys(vec![(vec![0], 0.0)]).is_none());
    }

    #[test]
    fn coarse_map_covers_the_fine_range() {
        let fine = CellRange {
            lo: vec![0, 0],
            hi: vec![99, 49],
        };
        let mut map = CoarseMap::new(fine, 64);
        // The coarse lattice tiles the fine range exactly, and the per-cell
        // fine tables stay within the enumeration budget.
        let counts = map.coarse_counts().to_vec();
        let ratio = map.ratio();
        assert_eq!(ratio, 8, "largest power of two with ratio^2 <= 64");
        assert!(counts[0] * ratio >= 100 && counts[1] * ratio >= 50);
        assert!((ratio * ratio) as u64 <= 64);
        // The first coarse cell's fine range starts at the fine lo and its
        // table sees every fine key once.
        let mut seen = 0usize;
        let cell = map.fine_cell(&[0, 0], |_| {
            seen += 1;
            1.0
        });
        assert_eq!(seen, (ratio * ratio) as usize);
        assert!((cell.mass - (ratio * ratio) as f64).abs() < 1e-9);
        // Memoized: a second lookup runs no fills.
        let mut refills = 0usize;
        let _ = map.fine_cell(&[0, 0], |_| {
            refills += 1;
            1.0
        });
        assert_eq!(refills, 0);
        assert_eq!(map.memoized(), 1);
    }
}
