//! The composed generators of Section 4 of the paper: union, intersection,
//! difference and projection of observable relations.

pub mod difference;
pub mod fiber_weight;
pub mod intersection;
pub mod projection;
pub mod stratified;
pub mod union;

/// Why a relation (or a combination of relations) could not be handled by the
/// composed generators.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservabilityError {
    /// The relation has no full-dimensional tuple at all.
    Empty,
    /// Tuple `index` of the relation is not well-bounded (unbounded or
    /// lower-dimensional), so the Dyer–Frieze–Kannan generator cannot be
    /// applied to it.
    NotWellBounded {
        /// Index of the offending tuple.
        index: usize,
    },
    /// The poly-related condition of Proposition 4.1 / 4.2 appears to be
    /// violated: the acceptance rate of the rejection step fell below the
    /// given threshold, so no efficient generator exists under the paper's
    /// sufficient condition.
    NotPolyRelated {
        /// Observed acceptance rate.
        acceptance: f64,
    },
    /// The projection generator needs a convex (single-tuple) relation.
    NotConvex,
    /// Invalid generator parameters.
    InvalidParams(String),
}

impl std::fmt::Display for ObservabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObservabilityError::Empty => write!(f, "relation has no full-dimensional tuple"),
            ObservabilityError::NotWellBounded { index } => {
                write!(f, "tuple {index} is not well-bounded")
            }
            ObservabilityError::NotPolyRelated { acceptance } => write!(
                f,
                "acceptance rate {acceptance:.2e} too low: the sets do not appear to be poly-related"
            ),
            ObservabilityError::NotConvex => write!(f, "the projection generator needs a convex relation"),
            ObservabilityError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for ObservabilityError {}
