//! Proposition 4.2: the generator and estimator for the difference
//! `T = S_1 − S_2` of two observable relations, under the condition that `T`
//! and `S_1` are poly-related.

use rand::Rng;

use cdb_constraint::GeneralizedRelation;

use crate::batch;
use crate::budget::{BudgetMeter, BudgetTrip, QueryBudget, COMPOSE_ATTEMPT_FACTOR};
use crate::compose::union::UnionGenerator;
use crate::compose::ObservabilityError;
use crate::params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};

/// Generator and volume estimator for `S_1 − S_2`.
#[derive(Clone, Debug)]
pub struct DifferenceGenerator {
    minuend: UnionGenerator,
    subtrahend: GeneralizedRelation,
    params: GeneratorParams,
    attempts: u64,
    accepted: u64,
    min_acceptance: f64,
    /// Work limits installed by [`RelationGenerator::set_budget`]; forwarded
    /// to the minuend so each constituent draw is individually bounded, while
    /// this generator's own rejection loop charges `meter`.
    budget: QueryBudget,
    /// Per-call attempt meter of the rejection loop.
    meter: BudgetMeter,
}

impl DifferenceGenerator {
    /// Builds the generator; `s1` must be observable. `s2` only needs a
    /// membership test (it is never sampled from).
    pub fn new(
        s1: &GeneralizedRelation,
        s2: &GeneralizedRelation,
        params: GeneratorParams,
    ) -> Result<Self, ObservabilityError> {
        let minuend = UnionGenerator::new(s1, params)?;
        Ok(DifferenceGenerator {
            minuend,
            subtrahend: s2.clone(),
            params,
            attempts: 0,
            accepted: 0,
            min_acceptance: 1e-4,
            budget: QueryBudget::unlimited(),
            meter: BudgetMeter::unlimited(),
        })
    }

    /// Overrides the acceptance-rate floor used for the poly-related check.
    pub fn set_min_acceptance(&mut self, floor: f64) {
        self.min_acceptance = floor;
    }

    /// Observed acceptance rate of the rejection step so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }
}

impl RelationGenerator for DifferenceGenerator {
    fn dim(&self) -> usize {
        self.minuend.dim()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.meter = BudgetMeter::new(&self.budget);
        let max_attempts = self.params.retry_rounds() * COMPOSE_ATTEMPT_FACTOR;
        for _ in 0..max_attempts {
            if !self.meter.charge_attempt() {
                return None;
            }
            let x = self.minuend.sample(rng)?;
            self.attempts += 1;
            if !self.subtrahend.contains_f64(&x) {
                self.accepted += 1;
                return Some(x);
            }
        }
        None
    }

    fn prepare(&mut self, seq: &SeedSequence) {
        self.minuend.prepare(seq);
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.minuend.set_budget(budget.clone());
        self.budget = budget;
    }

    fn budget_trip(&self) -> Option<BudgetTrip> {
        self.meter.trip().or_else(|| self.minuend.budget_trip())
    }

    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        self.prepare(seq);
        batch::sample_batch_prepared(self, n, seq, threads)
    }
}

impl RelationVolumeEstimator for DifferenceGenerator {
    fn prepare_estimator(&mut self, seq: &SeedSequence) {
        RelationGenerator::prepare(self, seq);
    }

    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        self.prepare_estimator(seq);
        batch::estimate_volume_batch_prepared(self, repeats, seq, threads)
    }

    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        self.meter = BudgetMeter::new(&self.budget);
        let mu1 = self.minuend.estimate_volume(rng)?;
        let trials = self.params.samples_per_phase();
        let mut hits = 0usize;
        let mut produced = 0usize;
        for _ in 0..trials {
            if !self.meter.charge_attempt() {
                return None;
            }
            if let Some(x) = self.minuend.sample(rng) {
                produced += 1;
                self.attempts += 1;
                if !self.subtrahend.contains_f64(&x) {
                    hits += 1;
                    self.accepted += 1;
                }
            } else if self.minuend.budget_trip().is_some() {
                // Once the minuend's budget trips, every further draw would
                // re-exhaust it; give up instead of burning the trials.
                return None;
            }
        }
        if produced == 0 {
            return None;
        }
        let acceptance = hits as f64 / produced as f64;
        if acceptance < self.min_acceptance {
            return None;
        }
        Some(mu1 * acceptance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn half_of_a_square() {
        // [0,2]x[0,1] minus [1,3]x[0,1] = [0,1)x[0,1], volume 1.
        let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]);
        let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[3.0, 1.0]);
        let mut gen = DifferenceGenerator::new(&s1, &s2, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 1.0).abs() < 0.6, "volume {vol}");
        for p in gen.sample_many(100, &mut rng) {
            assert!(s1.contains_f64(&p) && !s2.contains_f64(&p));
        }
        assert!(gen.acceptance_rate() > 0.2);
    }

    #[test]
    fn difference_with_disjoint_subtrahend_is_the_original() {
        let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let s2 = GeneralizedRelation::from_box_f64(&[10.0, 10.0], &[11.0, 11.0]);
        let mut gen = DifferenceGenerator::new(&s1, &s2, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 1.0).abs() < 0.35, "volume {vol}");
        assert!(gen.acceptance_rate() > 0.95);
    }

    #[test]
    fn nearly_complete_subtraction_fails_the_condition() {
        // Remove all but a sliver: T and S1 are not poly-related.
        let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let s2 = GeneralizedRelation::from_box_f64(&[1e-7, 0.0], &[2.0, 1.0]);
        let mut gen = DifferenceGenerator::new(&s1, &s2, GeneratorParams::fast()).unwrap();
        gen.set_min_acceptance(1e-2);
        let mut rng = StdRng::seed_from_u64(43);
        assert!(gen.estimate_volume(&mut rng).is_none());
    }

    #[test]
    fn non_convex_result_is_still_sampled() {
        // Remove the middle strip of a square: the difference has two parts.
        let s1 = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[3.0, 1.0]);
        let s2 = GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[2.0, 1.0]);
        let mut gen = DifferenceGenerator::new(&s1, &s2, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let pts = gen.sample_many(300, &mut rng);
        let left = pts.iter().filter(|p| p[0] < 1.0).count();
        let right = pts.iter().filter(|p| p[0] > 2.0).count();
        assert_eq!(left + right, pts.len());
        let balance = left as f64 / pts.len() as f64;
        assert!((balance - 0.5).abs() < 0.12, "left fraction {balance}");
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 2.0).abs() < 0.7, "volume {vol}");
    }
}
