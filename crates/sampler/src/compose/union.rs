//! Algorithm 1 of the paper: the almost-uniform generator and volume
//! estimator for a union of observable (convex, well-bounded) relations.
//!
//! The construction is the geometric analogue of the Karp–Luby #DNF
//! estimator: a component is drawn with probability proportional to its
//! estimated volume, a point is drawn almost uniformly inside it, and the
//! point is kept only when the chosen component is the *first* one containing
//! it (`j(x)` in the paper), which makes every point of the overlapping union
//! count exactly once.

use rand::Rng;

use cdb_constraint::GeneralizedRelation;

use crate::batch;
use crate::budget::{BudgetTrip, QueryBudget};
use crate::compose::ObservabilityError;
use crate::dfk::DfkSampler;
use crate::oracle::ConvexBody;
use crate::params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};
use crate::walk::WalkScratch;

/// The union generator of Theorem 4.1 / Corollary 4.2 and the union volume
/// estimator of Theorem 4.2.
#[derive(Clone, Debug)]
pub struct UnionGenerator {
    relation: GeneralizedRelation,
    bodies: Vec<ConvexBody>,
    samplers: Vec<DfkSampler>,
    volumes: Vec<f64>,
    params: GeneratorParams,
    initialized: bool,
    /// Per-generator walk workspace, reused across every sample and volume
    /// estimate (each batch worker clones the generator and with it gets its
    /// own scratch).
    scratch: WalkScratch,
    /// Work limits installed by [`RelationGenerator::set_budget`]; the
    /// scratch meter is re-armed from this at the head of every query call.
    budget: QueryBudget,
}

impl UnionGenerator {
    /// Builds the generator for a generalized relation (a union of generalized
    /// tuples). Every full-dimensional tuple must be well-bounded; degenerate
    /// (measure-zero) tuples are dropped, matching the remark in the paper
    /// that exponentially smaller components can be treated as empty.
    pub fn new(
        relation: &GeneralizedRelation,
        params: GeneratorParams,
    ) -> Result<Self, ObservabilityError> {
        params
            .validate()
            .map_err(ObservabilityError::InvalidParams)?;
        // Classify every tuple: empty or measure-zero tuples are dropped (the
        // paper's remark that exponentially smaller components can be treated
        // as empty); unbounded tuples make the relation non-observable. The
        // well-boundedness certificate of each kept component is computed
        // once here — one bounding-box pass plus one Chebyshev LP — and
        // cached on the generator inside its `ConvexBody`.
        let mut kept = Vec::new();
        let mut bodies = Vec::new();
        for (i, t) in relation.tuples().iter().enumerate() {
            if t.closure_is_empty() {
                continue;
            }
            let polytope = t.to_hpolytope();
            let bb = polytope
                .bounding_box()
                .ok_or(ObservabilityError::NotWellBounded { index: i })?;
            match polytope.well_bounded_within(&bb) {
                Some(cert) => {
                    kept.push(t.clone());
                    bodies.push(ConvexBody::from_polytope_cert(polytope, cert));
                }
                // Bounded but lower-dimensional: measure zero, drop it.
                None => continue,
            }
        }
        if kept.is_empty() {
            return Err(ObservabilityError::Empty);
        }
        let pruned = GeneralizedRelation::from_tuples(relation.arity(), kept);
        Ok(UnionGenerator {
            relation: pruned,
            bodies,
            samplers: Vec::new(),
            volumes: Vec::new(),
            params,
            initialized: false,
            scratch: WalkScratch::new(),
            budget: QueryBudget::unlimited(),
        })
    }

    /// The relation being sampled (after pruning degenerate tuples).
    pub fn relation(&self) -> &GeneralizedRelation {
        &self.relation
    }

    /// Per-component volume estimates `μ̂_i` (available after the first call
    /// to [`RelationGenerator::sample`] or
    /// [`RelationVolumeEstimator::estimate_volume`]).
    pub fn component_volumes(&self) -> &[f64] {
        &self.volumes
    }

    /// Lazily builds the per-component samplers and volume estimates
    /// (step (1) of Algorithm 1).
    fn ensure_initialized<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.initialized {
            return;
        }
        self.samplers = self
            .bodies
            .iter()
            .map(|b| DfkSampler::new(b.clone(), self.params, rng))
            .collect();
        self.volumes = self
            .samplers
            .iter()
            .map(|s| s.estimate_volume_with(rng, &mut self.scratch))
            .collect();
        self.initialized = true;
    }

    /// If the armed budget tripped during lazy initialization, the pilot
    /// volumes are truncated garbage: throw the half-built setup away so the
    /// next (budgeted or not) call rebuilds it cleanly instead of sampling
    /// against corrupt component weights. Returns `true` when it rolled back.
    fn rollback_if_init_tripped(&mut self) -> bool {
        if self.scratch.budget_trip().is_some() {
            self.samplers.clear();
            self.volumes.clear();
            self.initialized = false;
            true
        } else {
            false
        }
    }

    /// Usage tallies of the most recent budgeted query call (diagnostics and
    /// the determinism suite's exhaustion-point assertions).
    pub fn budget_meter(&self) -> &crate::budget::BudgetMeter {
        self.scratch.budget_meter()
    }

    /// Chooses a component index with probability proportional to `μ̂_i`
    /// (step (3) of Algorithm 1).
    fn choose_component<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.volumes.iter().sum();
        let mut target = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, v) in self.volumes.iter().enumerate() {
            if target < *v {
                return i;
            }
            target -= v;
        }
        self.volumes.len() - 1
    }

    /// Index of the first tuple containing `x` — the paper's `j(x)`.
    fn first_index(&self, x: &[f64]) -> Option<usize> {
        self.relation.first_containing_tuple(x, 1e-9)
    }
}

impl RelationGenerator for UnionGenerator {
    fn dim(&self) -> usize {
        self.relation.arity()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        if crate::faults::forced_draw_failure() {
            return None;
        }
        self.scratch.arm_budget(&self.budget);
        self.ensure_initialized(rng);
        if self.rollback_if_init_tripped() {
            return None;
        }
        // Repeat k = 4 ln(1/δ) times (the proof of Theorem 4.1).
        for _ in 0..self.params.retry_rounds() {
            if !self.scratch.budget_meter_mut().charge_attempt() {
                return None;
            }
            let j = self.choose_component(rng);
            let x = self.samplers[j].sample_with(rng, &mut self.scratch);
            if self.scratch.budget_trip().is_some() {
                // The walk was truncated mid-chain; x is not almost-uniform.
                return None;
            }
            // Accept only when j is the first component containing x, so the
            // output distribution is uniform on the union rather than on the
            // disjoint sum of the components.
            if self.first_index(&x) == Some(j) {
                return Some(x);
            }
        }
        None
    }

    fn prepare(&mut self, seq: &SeedSequence) {
        // Setup is charged to the preparation phase, never to a query budget
        // (and a meter left tripped by a previous budgeted call must not
        // truncate it), so the meter is explicitly disarmed first.
        self.scratch.disarm_budget();
        self.ensure_initialized(&mut seq.setup_stream().rng());
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    fn budget_trip(&self) -> Option<BudgetTrip> {
        self.scratch.budget_trip()
    }

    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        self.prepare(seq);
        batch::sample_batch_prepared(self, n, seq, threads)
    }
}

impl RelationVolumeEstimator for UnionGenerator {
    fn prepare_estimator(&mut self, seq: &SeedSequence) {
        RelationGenerator::prepare(self, seq);
    }

    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        self.prepare_estimator(seq);
        batch::estimate_volume_batch_prepared(self, repeats, seq, threads)
    }

    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        if crate::faults::forced_draw_failure() {
            return None;
        }
        self.scratch.arm_budget(&self.budget);
        self.ensure_initialized(rng);
        if self.rollback_if_init_tripped() {
            return None;
        }
        let total: f64 = self.volumes.iter().sum();
        if total <= 0.0 {
            return Some(0.0);
        }
        // Karp–Luby: vol(∪ S_i) = (Σ μ_i) · Pr[j(x) = j when j ~ μ, x ~ S_j].
        let trials = self.params.samples_per_phase();
        let mut accepted = 0usize;
        for _ in 0..trials {
            if !self.scratch.budget_meter_mut().charge_attempt() {
                return None;
            }
            let j = self.choose_component(rng);
            let x = self.samplers[j].sample_with(rng, &mut self.scratch);
            if self.scratch.budget_trip().is_some() {
                return None;
            }
            if self.first_index(&x) == Some(j) {
                accepted += 1;
            }
        }
        Some(total * accepted as f64 / trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn boxes(spec: &[(f64, f64, f64, f64)]) -> GeneralizedRelation {
        let mut rel: Option<GeneralizedRelation> = None;
        for &(x0, y0, x1, y1) in spec {
            let b = GeneralizedRelation::from_box_f64(&[x0, y0], &[x1, y1]);
            rel = Some(match rel {
                None => b,
                Some(r) => r.union(&b),
            });
        }
        rel.expect("non-empty spec")
    }

    #[test]
    fn disjoint_union_volume_and_balance() {
        // Two disjoint unit squares: volume 2, samples split evenly.
        let rel = boxes(&[(0.0, 0.0, 1.0, 1.0), (5.0, 0.0, 6.0, 1.0)]);
        let mut gen = UnionGenerator::new(&rel, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 2.0).abs() < 0.6, "volume {vol}");
        let pts = gen.sample_many(300, &mut rng);
        assert!(pts.len() > 250, "too many failures");
        let left = pts.iter().filter(|p| p[0] < 2.0).count() as f64 / pts.len() as f64;
        assert!((left - 0.5).abs() < 0.12, "left fraction {left}");
        for p in &pts {
            assert!(rel.contains_f64(p));
        }
    }

    #[test]
    fn overlapping_union_counts_each_point_once() {
        // [0,2]x[0,1] ∪ [1,3]x[0,1]: volume 3 (not 4).
        let rel = boxes(&[(0.0, 0.0, 2.0, 1.0), (1.0, 0.0, 3.0, 1.0)]);
        let mut gen = UnionGenerator::new(&rel, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 3.0).abs() < 0.8, "volume {vol}");
        // The overlap region [1,2]x[0,1] should receive about 1/3 of the samples,
        // not the ~1/2 it would get if points were double counted.
        let pts = gen.sample_many(600, &mut rng);
        let overlap =
            pts.iter().filter(|p| p[0] >= 1.0 && p[0] <= 2.0).count() as f64 / pts.len() as f64;
        assert!(
            (overlap - 1.0 / 3.0).abs() < 0.12,
            "overlap fraction {overlap}"
        );
    }

    #[test]
    fn identical_components_do_not_double_count() {
        let rel = boxes(&[(0.0, 0.0, 1.0, 1.0), (0.0, 0.0, 1.0, 1.0)]);
        let mut gen = UnionGenerator::new(&rel, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 1.0).abs() < 0.35, "volume {vol}");
    }

    #[test]
    fn m_ary_union_is_supported() {
        // Corollary 4.2: an unbounded number of union operands stays polynomial.
        let spec: Vec<(f64, f64, f64, f64)> = (0..8)
            .map(|i| (2.0 * i as f64, 0.0, 2.0 * i as f64 + 1.0, 1.0))
            .collect();
        let rel = boxes(&spec);
        let mut gen = UnionGenerator::new(&rel, GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 8.0).abs() < 2.0, "volume {vol}");
        assert_eq!(gen.component_volumes().len(), 8);
    }

    #[test]
    fn degenerate_components_are_pruned() {
        use cdb_constraint::{Atom, CompOp, GeneralizedTuple, LinTerm};
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut segment = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        segment.push(Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq));
        let rel = GeneralizedRelation::from_tuples(2, vec![square, segment]);
        let gen = UnionGenerator::new(&rel, GeneratorParams::fast()).unwrap();
        assert_eq!(gen.relation().tuples().len(), 1);
    }

    #[test]
    fn empty_relation_is_rejected() {
        let rel = GeneralizedRelation::empty(2);
        assert!(matches!(
            UnionGenerator::new(&rel, GeneratorParams::fast()),
            Err(ObservabilityError::Empty)
        ));
    }

    #[test]
    fn unbounded_component_is_rejected() {
        use cdb_constraint::{Atom, GeneralizedTuple};
        // x >= 0 only: unbounded.
        let t = GeneralizedTuple::new(1, vec![Atom::le_from_ints(&[-1], 0)]);
        let rel = GeneralizedRelation::from_tuple(t);
        assert!(matches!(
            UnionGenerator::new(&rel, GeneratorParams::fast()),
            Err(ObservabilityError::NotWellBounded { .. })
        ));
    }
}
