//! Proposition 4.1 / Corollary 4.3: the generator and estimator for an
//! intersection of observable relations, under the poly-related condition.
//!
//! The generator samples from the (estimated) smallest operand and keeps the
//! points that belong to every other operand. When the intersection is
//! exponentially smaller than the smallest operand, the acceptance rate
//! collapses; the paper shows this restriction is necessary (otherwise the
//! estimator would decide SAT), and this implementation reports it as
//! [`ObservabilityError::NotPolyRelated`] through `Option`/diagnostics.

use rand::Rng;

use cdb_constraint::GeneralizedRelation;

use crate::batch;
use crate::budget::{BudgetMeter, BudgetTrip, QueryBudget, COMPOSE_ATTEMPT_FACTOR};
use crate::compose::union::UnionGenerator;
use crate::compose::ObservabilityError;
use crate::params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};

/// Generator and volume estimator for `S_1 ∩ … ∩ S_m`.
#[derive(Clone, Debug)]
pub struct IntersectionGenerator {
    operands: Vec<GeneralizedRelation>,
    generators: Vec<UnionGenerator>,
    params: GeneratorParams,
    /// Index of the smallest operand (chosen after volume estimation).
    smallest: Option<usize>,
    /// Acceptance statistics of the rejection step.
    attempts: u64,
    accepted: u64,
    /// Acceptance rate below which the operands are declared not poly-related.
    min_acceptance: f64,
    /// Work limits installed by [`RelationGenerator::set_budget`]; forwarded
    /// to every operand generator, so each constituent draw is individually
    /// bounded while this generator's own rejection loop charges `meter`.
    budget: QueryBudget,
    /// Per-call attempt meter of the rejection loop.
    meter: BudgetMeter,
}

impl IntersectionGenerator {
    /// Builds the generator; every operand must itself be observable (a union
    /// of well-bounded convex tuples).
    pub fn new(
        operands: &[GeneralizedRelation],
        params: GeneratorParams,
    ) -> Result<Self, ObservabilityError> {
        if operands.len() < 2 {
            return Err(ObservabilityError::InvalidParams(
                "the intersection generator needs at least two operands".into(),
            ));
        }
        let generators = operands
            .iter()
            .map(|r| UnionGenerator::new(r, params))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IntersectionGenerator {
            operands: operands.to_vec(),
            generators,
            params,
            smallest: None,
            attempts: 0,
            accepted: 0,
            // The paper's sufficient condition is a polynomial relation
            // between the volumes; operationally we flag anything below this
            // floor as "not poly-related" evidence.
            min_acceptance: 1e-4,
            budget: QueryBudget::unlimited(),
            meter: BudgetMeter::unlimited(),
        })
    }

    /// Overrides the acceptance-rate floor used for the poly-related check.
    pub fn set_min_acceptance(&mut self, floor: f64) {
        self.min_acceptance = floor;
    }

    /// Observed acceptance rate of the rejection step so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    /// Estimates the operand volumes and picks the smallest one, as in the
    /// proof of Proposition 4.1.
    fn ensure_smallest<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if let Some(j) = self.smallest {
            return j;
        }
        let budget = self.budget.clone();
        let mut best = 0usize;
        let mut best_vol = f64::INFINITY;
        for (i, g) in self.generators.iter_mut().enumerate() {
            // The pilot estimates are one-time setup: running them under a
            // query budget could cache a garbage "smallest" choice that
            // contaminates every later query, so they run unbudgeted and the
            // operand budget is restored afterwards.
            g.set_budget(QueryBudget::unlimited());
            let v = g.estimate_volume(rng).unwrap_or(f64::INFINITY);
            g.set_budget(budget.clone());
            if v < best_vol {
                best_vol = v;
                best = i;
            }
        }
        self.smallest = Some(best);
        best
    }

    /// Does the point belong to every operand other than `skip`?
    fn in_all_others(&self, x: &[f64], skip: usize) -> bool {
        self.operands
            .iter()
            .enumerate()
            .all(|(i, r)| i == skip || r.contains_f64(x))
    }
}

impl RelationGenerator for IntersectionGenerator {
    fn dim(&self) -> usize {
        self.operands[0].arity()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.meter = BudgetMeter::new(&self.budget);
        let j = self.ensure_smallest(rng);
        let max_attempts = self.params.retry_rounds() * COMPOSE_ATTEMPT_FACTOR;
        for _ in 0..max_attempts {
            if !self.meter.charge_attempt() {
                return None;
            }
            let x = self.generators[j].sample(rng)?;
            self.attempts += 1;
            if self.in_all_others(&x, j) {
                self.accepted += 1;
                return Some(x);
            }
        }
        None
    }

    fn prepare(&mut self, seq: &SeedSequence) {
        // Funds the operand volume estimates (and the lazy setup of every
        // operand's union generator) from the dedicated setup stream, so the
        // choice of smallest operand is fixed before any batch fan-out.
        self.ensure_smallest(&mut seq.setup_stream().rng());
    }

    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        self.prepare(seq);
        batch::sample_batch_prepared(self, n, seq, threads)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        for g in &mut self.generators {
            g.set_budget(budget.clone());
        }
        self.budget = budget;
    }

    fn budget_trip(&self) -> Option<BudgetTrip> {
        self.meter
            .trip()
            .or_else(|| self.generators.iter().find_map(|g| g.budget_trip()))
    }
}

impl RelationVolumeEstimator for IntersectionGenerator {
    fn prepare_estimator(&mut self, seq: &SeedSequence) {
        RelationGenerator::prepare(self, seq);
    }

    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        self.prepare_estimator(seq);
        batch::estimate_volume_batch_prepared(self, repeats, seq, threads)
    }

    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        self.meter = BudgetMeter::new(&self.budget);
        let j = self.ensure_smallest(rng);
        let mu_j = self.generators[j].estimate_volume(rng)?;
        let trials = self.params.samples_per_phase();
        let mut hits = 0usize;
        let mut produced = 0usize;
        for _ in 0..trials {
            if !self.meter.charge_attempt() {
                return None;
            }
            if let Some(x) = self.generators[j].sample(rng) {
                produced += 1;
                self.attempts += 1;
                if self.in_all_others(&x, j) {
                    hits += 1;
                    self.accepted += 1;
                }
            } else if self.generators[j].budget_trip().is_some() {
                // Each failed draw would re-arm and re-exhaust the operand's
                // budget; once one trips there is no point burning the rest
                // of the trials.
                return None;
            }
        }
        if produced == 0 {
            return None;
        }
        let acceptance = hits as f64 / produced as f64;
        if acceptance < self.min_acceptance {
            // The intersection is too small relative to min(S_1, …, S_m):
            // the poly-related condition fails and the estimator gives up.
            return None;
        }
        Some(mu_j * acceptance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn overlapping_squares_intersection() {
        let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
        let b = GeneralizedRelation::from_box_f64(&[1.0, 1.0], &[3.0, 3.0]);
        let mut gen =
            IntersectionGenerator::new(&[a.clone(), b.clone()], GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(35);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 1.0).abs() < 0.45, "volume {vol}");
        let pts = gen.sample_many(100, &mut rng);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(a.contains_f64(p) && b.contains_f64(p));
        }
        assert!(gen.acceptance_rate() > 0.05);
    }

    #[test]
    fn three_way_intersection() {
        let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
        let b = GeneralizedRelation::from_box_f64(&[0.5, 0.0], &[2.5, 2.0]);
        let c = GeneralizedRelation::from_box_f64(&[0.0, 0.5], &[2.0, 2.5]);
        // Intersection = [0.5,2]x[0.5,2] with volume 2.25.
        let mut gen = IntersectionGenerator::new(&[a, b, c], GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let vol = gen.estimate_volume(&mut rng).unwrap();
        assert!((vol - 2.25).abs() < 0.8, "volume {vol}");
    }

    #[test]
    fn tiny_intersection_triggers_poly_related_failure() {
        // The overlap is a sliver of width 1e-6: not poly-related to the
        // operands for any reasonable acceptance floor.
        let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let b = GeneralizedRelation::from_box_f64(&[1.0 - 1e-6, 0.0], &[2.0, 1.0]);
        let mut gen = IntersectionGenerator::new(&[a, b], GeneratorParams::fast()).unwrap();
        gen.set_min_acceptance(1e-2);
        let mut rng = StdRng::seed_from_u64(33);
        assert!(gen.estimate_volume(&mut rng).is_none());
        assert!(gen.acceptance_rate() < 1e-2);
    }

    #[test]
    fn disjoint_operands_are_not_observable() {
        let a = GeneralizedRelation::from_box_f64(&[0.0], &[1.0]);
        let b = GeneralizedRelation::from_box_f64(&[2.0], &[3.0]);
        let mut gen = IntersectionGenerator::new(&[a, b], GeneratorParams::fast()).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        assert!(gen.estimate_volume(&mut rng).is_none());
        assert!(gen.sample(&mut rng).is_none());
    }

    #[test]
    fn needs_at_least_two_operands() {
        let a = GeneralizedRelation::from_box_f64(&[0.0], &[1.0]);
        assert!(IntersectionGenerator::new(&[a], GeneratorParams::fast()).is_err());
    }
}
