//! Algorithm 2 of the paper: the almost-uniform generator for the projection
//! of a convex relation, and the associated volume estimator (Theorem 4.3).
//!
//! As Figure 1 of the paper illustrates, simply projecting uniform samples of
//! `S` is *not* uniform on the projection `T`: a point `y ∈ T` is hit with
//! probability proportional to the volume of the cylinder (fiber)
//! `H_S(y) = S ∩ {x : proj_I(x) = y}`. Algorithm 2 compensates by accepting
//! `y` with probability `1/ĥ`, where `ĥ` is the (estimated) number of γ-grid
//! points in the cylinder.

use rand::Rng;

use cdb_constraint::GeneralizedTuple;
use cdb_geometry::{volume::polytope_volume, GammaGrid, HPolytope, Halfspace};

use crate::batch;
use crate::compose::ObservabilityError;
use crate::dfk::DfkSampler;
use crate::oracle::ConvexBody;
use crate::params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};
use crate::walk::WalkScratch;

/// Generator and volume estimator for the projection `T = proj_I(S)` of a
/// convex relation `S` onto the coordinates `I`.
#[derive(Clone, Debug)]
pub struct ProjectionGenerator {
    tuple: GeneralizedTuple,
    polytope: HPolytope,
    keep: Vec<usize>,
    fiber_coords: Vec<usize>,
    sampler: DfkSampler,
    grid: GammaGrid,
    params: GeneratorParams,
    attempts: u64,
    accepted: u64,
    /// Per-generator walk workspace (cloned per batch worker).
    scratch: WalkScratch,
}

impl ProjectionGenerator {
    /// Builds the generator for `proj_keep(tuple)`. The tuple must be a
    /// well-bounded convex relation (a single generalized tuple), and `keep`
    /// must list distinct coordinates.
    pub fn new<R: Rng + ?Sized>(
        tuple: &GeneralizedTuple,
        keep: &[usize],
        params: GeneratorParams,
        rng: &mut R,
    ) -> Result<Self, ObservabilityError> {
        params
            .validate()
            .map_err(ObservabilityError::InvalidParams)?;
        let d = tuple.arity();
        let mut sorted = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != keep.len() || keep.iter().any(|&k| k >= d) || keep.is_empty() {
            return Err(ObservabilityError::InvalidParams(
                "projection coordinates must be distinct and within the arity".into(),
            ));
        }
        // One closure polytope and one well-boundedness certificate serve
        // both the sampler body and the fiber geometry.
        let polytope = tuple.to_hpolytope();
        let cert = polytope
            .well_bounded()
            .ok_or(ObservabilityError::NotWellBounded { index: 0 })?;
        let body = ConvexBody::from_polytope_cert(polytope.clone(), cert);
        let grid = GammaGrid::for_well_bounded(d, params.gamma, body.r_inf());
        let sampler = DfkSampler::new(body, params, rng);
        let fiber_coords: Vec<usize> = (0..d).filter(|i| !keep.contains(i)).collect();
        Ok(ProjectionGenerator {
            tuple: tuple.clone(),
            polytope,
            keep: keep.to_vec(),
            fiber_coords,
            sampler,
            grid,
            params,
            attempts: 0,
            accepted: 0,
            scratch: WalkScratch::new(),
        })
    }

    /// The projection coordinates `I`.
    pub fn kept_coordinates(&self) -> &[usize] {
        &self.keep
    }

    /// The generalized tuple being projected.
    pub fn tuple(&self) -> &GeneralizedTuple {
        &self.tuple
    }

    /// Observed acceptance rate of the compensation step.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    /// The cylinder `H_S(y)` expressed as a polytope over the fiber
    /// coordinates: every halfspace `a·x ≤ b` of `S` becomes
    /// `a_F·z ≤ b − a_I·y`.
    pub fn fiber_polytope(&self, y: &[f64]) -> HPolytope {
        let fiber_dim = self.fiber_coords.len();
        let halfspaces = self
            .polytope
            .halfspaces()
            .iter()
            .map(|h| {
                let normal: Vec<f64> = self.fiber_coords.iter().map(|&i| h.normal()[i]).collect();
                let fixed: f64 = self
                    .keep
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| h.normal()[i] * y[j])
                    .sum();
                Halfspace::from_slice(&normal, h.offset() - fixed)
            })
            .collect();
        // Built per attempt and queried once: skip structure detection.
        HPolytope::new_dense(fiber_dim, halfspaces)
    }

    /// The paper's `ĥ`: the (estimated) number of grid points in the cylinder
    /// above `y`, at least 1 (the sampled point itself lies in it).
    pub fn cylinder_weight(&self, y: &[f64]) -> f64 {
        if self.fiber_coords.is_empty() {
            return 1.0;
        }
        let fiber = self.fiber_polytope(y);
        let vol = polytope_volume(&fiber);
        let cell = self.grid.step().powi(self.fiber_coords.len() as i32);
        (vol / cell).max(1.0)
    }

    /// Projects a full-dimensional point onto the kept coordinates.
    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.keep.iter().map(|&i| x[i]).collect()
    }

    /// Draws a point of `S` and projects it *without* the compensation step —
    /// the biased baseline of Figure 1, exposed for the experiments.
    pub fn sample_uncorrected<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.project(&self.sampler.sample(rng))
    }

    /// Estimates the volume (in dimension `|I|`) of the projection `T`:
    /// `vol(T) = vol(S) · E[1/ĥ] / p^{d−e}`.
    pub fn estimate_projection_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.fiber_coords.is_empty() {
            return self.sampler.estimate_volume_with(rng, &mut self.scratch);
        }
        let vol_s = self.sampler.estimate_volume_with(rng, &mut self.scratch);
        let trials = self.params.samples_per_phase();
        let mut sum_inv = 0.0;
        for _ in 0..trials {
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            let y = self.project(&x);
            sum_inv += 1.0 / self.cylinder_weight(&y);
        }
        let mean_inv = sum_inv / trials as f64;
        let cell = self.grid.step().powi(self.fiber_coords.len() as i32);
        vol_s * mean_inv / cell
    }
}

impl RelationGenerator for ProjectionGenerator {
    fn dim(&self) -> usize {
        self.keep.len()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        if self.fiber_coords.is_empty() {
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            return Some(self.project(&x));
        }
        // The success probability of one round is at least ~εγ/d³ (proof of
        // Theorem 4.3, with the grid step p = γ·r_inf/d^{3/2} folded in);
        // retry accordingly, with a cap.
        let d = self.tuple.arity();
        let rounds = ((d.pow(3) as f64 / (self.params.eps * self.params.gamma))
            * (1.0 / self.params.delta).ln())
        .ceil() as usize;
        let rounds = rounds.clamp(self.params.retry_rounds(), 500_000);
        for _ in 0..rounds {
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            let y = self.project(&x);
            let h = self.cylinder_weight(&y);
            self.attempts += 1;
            if rng.gen_range(0.0..1.0) < 1.0 / h {
                self.accepted += 1;
                return Some(y);
            }
        }
        None
    }

    // Setup is eager (everything happens in `new`), so the default no-op
    // `prepare` is correct and only the fan-out is overridden.
    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        batch::sample_batch_prepared(self, n, seq, threads)
    }
}

impl RelationVolumeEstimator for ProjectionGenerator {
    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        Some(self.estimate_projection_volume(rng))
    }

    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        batch::estimate_volume_batch_prepared(self, repeats, seq, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The triangle 0 ≤ x ≤ 1, 0 ≤ y ≤ x — the canonical Figure 1 shape: its
    /// projection onto x is [0,1], but the fibers shrink linearly to a point
    /// at x = 0.
    fn figure1_triangle() -> GeneralizedTuple {
        use cdb_constraint::Atom;
        GeneralizedTuple::new(
            2,
            vec![
                Atom::le_from_ints(&[-1, 0], 0), // x >= 0
                Atom::le_from_ints(&[1, 0], -1), // x <= 1
                Atom::le_from_ints(&[0, -1], 0), // y >= 0
                Atom::le_from_ints(&[-1, 1], 0), // y <= x
            ],
        )
    }

    fn params() -> GeneratorParams {
        GeneratorParams {
            gamma: 0.05,
            ..GeneratorParams::fast()
        }
    }

    #[test]
    fn samples_land_in_the_projection() {
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(51);
        let mut gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        let pts = gen.sample_many(200, &mut rng);
        assert!(pts.len() > 100, "too many rejections: {}", pts.len());
        for p in &pts {
            assert_eq!(p.len(), 1);
            assert!(
                p[0] >= -1e-6 && p[0] <= 1.0 + 1e-6,
                "outside projection: {p:?}"
            );
        }
    }

    #[test]
    fn correction_flattens_the_figure1_bias() {
        // Without compensation, the projected samples concentrate near x = 1
        // (large fibers); with compensation the left and right halves are
        // balanced.
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(52);
        let mut gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();

        let n = 400;
        let mut biased_left = 0usize;
        for _ in 0..n {
            if gen.sample_uncorrected(&mut rng)[0] < 0.5 {
                biased_left += 1;
            }
        }
        let corrected = gen.sample_many(n, &mut rng);
        let corrected_left = corrected.iter().filter(|p| p[0] < 0.5).count();

        let biased_frac = biased_left as f64 / n as f64;
        let corrected_frac = corrected_left as f64 / corrected.len() as f64;
        // Uniform-on-triangle puts only 1/4 of the mass at x < 1/2.
        assert!(biased_frac < 0.35, "uncorrected fraction {biased_frac}");
        assert!(
            (corrected_frac - 0.5).abs() < 0.12,
            "corrected fraction {corrected_frac}"
        );
    }

    #[test]
    fn fiber_polytope_matches_geometry() {
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(53);
        let gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        // At x = 0.5 the fiber is the segment 0 <= y <= 0.5.
        let fiber = gen.fiber_polytope(&[0.5]);
        assert!(fiber.contains_slice(&[0.25], 1e-9));
        assert!(!fiber.contains_slice(&[0.75], 1e-9));
        assert!((polytope_volume(&fiber) - 0.5).abs() < 1e-6);
        // The cylinder weight grows with the fiber length.
        assert!(gen.cylinder_weight(&[0.9]) > gen.cylinder_weight(&[0.1]));
    }

    #[test]
    fn projection_volume_of_square_and_triangle() {
        // Projection of the unit square onto x has length 1; same for the triangle.
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(54);
        let mut gen_sq = ProjectionGenerator::new(&square, &[0], params(), &mut rng).unwrap();
        let v_sq = gen_sq.estimate_projection_volume(&mut rng);
        assert!((v_sq - 1.0).abs() < 0.4, "square projection volume {v_sq}");

        let tri = figure1_triangle();
        let mut gen_tri = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        let v_tri = gen_tri.estimate_projection_volume(&mut rng);
        assert!(
            (v_tri - 1.0).abs() < 0.45,
            "triangle projection volume {v_tri}"
        );
    }

    #[test]
    fn projecting_onto_all_coordinates_is_the_identity() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(55);
        let mut gen = ProjectionGenerator::new(&square, &[0, 1], params(), &mut rng).unwrap();
        let p = gen.sample(&mut rng).unwrap();
        assert_eq!(p.len(), 2);
        assert!(square.satisfied_f64(&p, 1e-9));
        let v = gen.estimate_projection_volume(&mut rng);
        assert!((v - 1.0).abs() < 0.35);
    }

    #[test]
    fn invalid_coordinates_are_rejected() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(56);
        assert!(ProjectionGenerator::new(&square, &[0, 0], params(), &mut rng).is_err());
        assert!(ProjectionGenerator::new(&square, &[5], params(), &mut rng).is_err());
        assert!(ProjectionGenerator::new(&square, &[], params(), &mut rng).is_err());
        // Unbounded tuples are rejected too.
        use cdb_constraint::Atom;
        let halfplane = GeneralizedTuple::new(2, vec![Atom::le_from_ints(&[1, 0], 0)]);
        assert!(ProjectionGenerator::new(&halfplane, &[0], params(), &mut rng).is_err());
    }
}
