//! Algorithm 2 of the paper: the almost-uniform generator for the projection
//! of a convex relation, and the associated volume estimator (Theorem 4.3).
//!
//! As Figure 1 of the paper illustrates, simply projecting uniform samples of
//! `S` is *not* uniform on the projection `T`: a point `y ∈ T` is hit with
//! probability proportional to the volume of the cylinder (fiber)
//! `H_S(y) = S ∩ {x : proj_I(x) = y}`. Algorithm 2 compensates by accepting
//! `y` with probability `1/ĥ`, where `ĥ` is the (estimated) number of γ-grid
//! points in the cylinder.
//!
//! # The compensation-weight data flow
//!
//! `ĥ` is a γ-grid count, so the weight of `y` *snapped to its grid cell* is
//! an exact finite-domain memo key. The hot path therefore runs
//! **snap → probe → fill**:
//!
//! 1. **snap** — the projected point is snapped to the integer coordinates
//!    of its γ-grid cell;
//! 2. **probe** — the per-generator [`FiberWeightCache`] is consulted; a hit
//!    skips fiber construction entirely;
//! 3. **fill** — on a miss the [`FiberVolume`] strategy computes the weight
//!    at the snapped cell center: `Exact` re-aims the reusable
//!    [`FiberTemplate`] (no allocation, no fresh polytope) and runs vertex
//!    enumeration; `Estimated` runs the in-crate telescoping estimator with
//!    randomness derived from the cell key, so the weight stays a pure
//!    function of the cell and caching is invisible to the output stream.

use rand::Rng;

use cdb_constraint::GeneralizedTuple;
use cdb_geometry::fiber::FiberTemplate;
use cdb_geometry::{volume::polytope_volume, GammaGrid, HPolytope, Halfspace};

use crate::batch;
use crate::budget::{BudgetTrip, QueryBudget, PROJECTION_RETRY_CAP};
use crate::compose::fiber_weight::{FiberVolume, FiberWeightCache, ProjectionParams};
use crate::compose::stratified::{CellRange, CellSelection, CoarseMap, StratifiedCells};
use crate::compose::ObservabilityError;
use crate::dfk::DfkSampler;
use crate::oracle::ConvexBody;
use crate::params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};
use crate::walk::WalkScratch;

/// Warm selector and weight-cache state captured from a
/// [`ProjectionGenerator`], shareable between generators over the same
/// relation and parameters (see
/// [`ProjectionGenerator::export_warm_state`]). Opaque by design: the
/// fields tie into the generator's lazy-selector internals.
#[derive(Clone, Debug)]
pub struct ProjectionWarmState {
    /// Warm weight cells in canonical (key-sorted) order.
    cells: Vec<(Vec<i64>, f64)>,
    strata: Option<StratifiedCells>,
    coarse: Option<CoarseMap>,
    selector_built: bool,
}

impl ProjectionWarmState {
    /// Number of warm weight cells carried by this state.
    pub fn warm_cells(&self) -> usize {
        self.cells.len()
    }

    /// Whether the lazily built cell selector is included.
    pub fn has_selector(&self) -> bool {
        self.selector_built
    }
}

/// Generator and volume estimator for the projection `T = proj_I(S)` of a
/// convex relation `S` onto the coordinates `I`.
#[derive(Clone, Debug)]
pub struct ProjectionGenerator {
    tuple: GeneralizedTuple,
    polytope: HPolytope,
    keep: Vec<usize>,
    fiber_coords: Vec<usize>,
    sampler: DfkSampler,
    grid: GammaGrid,
    params: ProjectionParams,
    /// Resolved fiber-volume strategy (never [`FiberVolume::Auto`]).
    fiber_volume: FiberVolume,
    /// Reusable fiber system, re-aimed per cache miss.
    fiber: FiberTemplate,
    /// Memoized cylinder weights, one cache per generator (and so per batch
    /// worker clone).
    cache: FiberWeightCache,
    /// Seed of the `Estimated` strategy's per-cell RNG streams; drawn once
    /// at construction so every clone derives identical streams.
    weight_seed: u64,
    /// Volume of one γ-grid cell of the fiber, `p^{d−e}`.
    cell: f64,
    /// Volume of one γ-grid cell of the projection, `p^e`.
    cell_proj: f64,
    /// Resolved cell-selection strategy (never [`CellSelection::Auto`]).
    selection: CellSelection,
    /// γ-grid index ranges of the projected bounding box on the kept
    /// coordinates (`None` only for the identity projection).
    range: Option<CellRange>,
    /// Continuous kept-coordinate bounding box; within-cell jitter is
    /// clamped into it so boundary cells cannot emit points outside the
    /// projection's bounding box.
    keep_lo: Vec<f64>,
    keep_hi: Vec<f64>,
    /// Fully-enumerated stratified selector (built lazily: enumeration costs
    /// one weight fill per candidate cell, which callers that never sample —
    /// e.g. weight-only diagnostics — should not pay).
    strata: Option<StratifiedCells>,
    /// Coarse-to-fine cascade state (lazy, same reason).
    coarse: Option<CoarseMap>,
    /// Whether the lazy selector state has been built.
    selector_built: bool,
    /// Integer grid coordinates of the snapped projected point (reused).
    key_buf: Vec<i64>,
    /// The snapped projected point itself (reused).
    snap_buf: Vec<f64>,
    attempts: u64,
    accepted: u64,
    /// Per-generator walk workspace (cloned per batch worker).
    scratch: WalkScratch,
    /// Work limits installed by [`RelationGenerator::set_budget`]; armed on
    /// the scratch meter at each query-call head. Fiber-weight cache fills
    /// are deliberately exempt (see
    /// [`ProjectionGenerator::estimated_fiber_volume`]): a truncated fill
    /// would poison the memo table for every later query.
    budget: QueryBudget,
}

impl ProjectionGenerator {
    /// Builds the generator for `proj_keep(tuple)` with the default
    /// compensation-weight subsystem (see [`ProjectionParams::new`]). The
    /// tuple must be a well-bounded convex relation (a single generalized
    /// tuple), and `keep` must list distinct coordinates.
    pub fn new<R: Rng + ?Sized>(
        tuple: &GeneralizedTuple,
        keep: &[usize],
        params: GeneratorParams,
        rng: &mut R,
    ) -> Result<Self, ObservabilityError> {
        Self::new_with(tuple, keep, ProjectionParams::new(params), rng)
    }

    /// Builds the generator with explicit [`ProjectionParams`]: fiber-volume
    /// strategy, weight-cache capacity and estimator budget.
    pub fn new_with<R: Rng + ?Sized>(
        tuple: &GeneralizedTuple,
        keep: &[usize],
        params: ProjectionParams,
        rng: &mut R,
    ) -> Result<Self, ObservabilityError> {
        params
            .validate()
            .map_err(ObservabilityError::InvalidParams)?;
        let d = tuple.arity();
        let mut sorted = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != keep.len() || keep.iter().any(|&k| k >= d) || keep.is_empty() {
            return Err(ObservabilityError::InvalidParams(
                "projection coordinates must be distinct and within the arity".into(),
            ));
        }
        // One closure polytope and one well-boundedness certificate serve
        // both the sampler body and the fiber geometry.
        let polytope = tuple.to_hpolytope();
        let cert = polytope
            .well_bounded()
            .ok_or(ObservabilityError::NotWellBounded { index: 0 })?;
        let body = ConvexBody::from_polytope_cert(polytope.clone(), cert);
        let grid = GammaGrid::for_well_bounded(d, params.base.gamma, body.r_inf());
        let sampler = DfkSampler::new(body, params.base, rng);
        let weight_seed = rng.next_u64();
        let fiber_coords: Vec<usize> = (0..d).filter(|i| !keep.contains(i)).collect();
        let fiber = FiberTemplate::new(&polytope, keep);
        let fiber_volume = params.resolve_fiber_volume(fiber_coords.len());
        let cache = FiberWeightCache::new(params.cache_capacity);
        let cell = grid.step().powi(fiber_coords.len() as i32);
        let cell_proj = grid.step().powi(keep.len() as i32);
        // Resolve the cell-selection strategy against the projected
        // bounding box (cheap: one LP per coordinate bound; the expensive
        // per-cell weight enumeration stays lazy). The identity projection
        // keeps the direct sampler path regardless of the request.
        let (selection, range, keep_lo, keep_hi) = if fiber_coords.is_empty() {
            (CellSelection::Rejection, None, Vec::new(), Vec::new())
        } else {
            let (lo, hi) = polytope
                .bounding_box()
                .ok_or(ObservabilityError::NotWellBounded { index: 0 })?;
            let keep_lo: Vec<f64> = keep.iter().map(|&i| lo[i]).collect();
            let keep_hi: Vec<f64> = keep.iter().map(|&i| hi[i]).collect();
            let range = CellRange::from_box(&keep_lo, &keep_hi, grid.step());
            let budget = params.max_enumerated_cells as u64;
            let selection = match params.cell_selection {
                CellSelection::Auto => {
                    if range.cell_count() <= budget {
                        CellSelection::Stratified
                    } else {
                        CellSelection::CoarseToFine
                    }
                }
                CellSelection::Stratified if range.cell_count() > budget => {
                    return Err(ObservabilityError::InvalidParams(format!(
                        "stratified enumeration needs {} cells but max_enumerated_cells is {}; \
                         use CellSelection::Auto or CoarseToFine",
                        range.cell_count(),
                        budget
                    )));
                }
                explicit => explicit,
            };
            (selection, Some(range), keep_lo, keep_hi)
        };
        Ok(ProjectionGenerator {
            tuple: tuple.clone(),
            polytope,
            keep: keep.to_vec(),
            fiber_coords,
            sampler,
            grid,
            params,
            fiber_volume,
            fiber,
            cache,
            weight_seed,
            cell,
            cell_proj,
            selection,
            range,
            keep_lo,
            keep_hi,
            strata: None,
            coarse: None,
            selector_built: false,
            key_buf: Vec::with_capacity(keep.len()),
            snap_buf: Vec::with_capacity(keep.len()),
            attempts: 0,
            accepted: 0,
            scratch: WalkScratch::new(),
            budget: QueryBudget::unlimited(),
        })
    }

    /// The projection coordinates `I`.
    pub fn kept_coordinates(&self) -> &[usize] {
        &self.keep
    }

    /// The generalized tuple being projected.
    pub fn tuple(&self) -> &GeneralizedTuple {
        &self.tuple
    }

    /// The full parameter set, including the compensation-weight knobs.
    pub fn projection_params(&self) -> &ProjectionParams {
        &self.params
    }

    /// Dimension of the fiber (number of dropped coordinates).
    pub fn fiber_dim(&self) -> usize {
        self.fiber_coords.len()
    }

    /// The γ-grid the compensation weights are counted on (its step defines
    /// both the cache cells and the weight denominator `p^{d−e}`).
    pub fn grid(&self) -> &GammaGrid {
        &self.grid
    }

    /// The fiber-volume strategy in effect ([`FiberVolume::Auto`] resolved
    /// against the fiber dimension at construction).
    pub fn resolved_fiber_volume(&self) -> FiberVolume {
        self.fiber_volume
    }

    /// The cell-selection strategy in effect ([`CellSelection::Auto`]
    /// resolved against the enumeration budget at construction; the
    /// identity projection always reports [`CellSelection::Rejection`]).
    pub fn resolved_cell_selection(&self) -> CellSelection {
        self.selection
    }

    /// γ-grid index ranges of the projected bounding box (`None` for the
    /// identity projection).
    pub fn cell_range(&self) -> Option<&CellRange> {
        self.range.as_ref()
    }

    /// The fully-enumerated stratified selector: occupied cells in odometer
    /// order with their `min(raw, 1)` selection weights. Builds the
    /// enumeration on first call; `None` unless the resolved strategy is
    /// [`CellSelection::Stratified`] (or the body has no occupied cell).
    pub fn stratified_cells(&mut self) -> Option<&StratifiedCells> {
        self.ensure_selector();
        self.strata.as_ref()
    }

    /// The memoized-weight cache (hit/miss statistics, occupancy).
    pub fn weight_cache(&self) -> &FiberWeightCache {
        &self.cache
    }

    /// Exports the generator's warm selector and weight-cache state for
    /// sharing through the prepared-relation store: the weight cells in
    /// canonical (sorted) order, plus the lazily built stratified /
    /// coarse-cascade selector. Estimated weights are pure functions of
    /// `(weight_seed, cell)`, so a peer generator over the same relation and
    /// parameters can import this state without changing any result — it
    /// only skips the recomputation.
    pub fn export_warm_state(&self) -> ProjectionWarmState {
        ProjectionWarmState {
            cells: self.cache.export_warm(),
            strata: self.strata.clone(),
            coarse: self.coarse.clone(),
            selector_built: self.selector_built,
        }
    }

    /// Installs a warm state captured by
    /// [`ProjectionGenerator::export_warm_state`] from a generator built
    /// over the same relation and parameters. The weight cache is rebuilt
    /// from scratch in canonical order, so the resulting table state is a
    /// pure function of the warm set — independent of the fill history that
    /// produced it — and sampling after an import is bitwise identical to
    /// sampling after recomputing every imported cell.
    pub fn import_warm_state(&mut self, warm: &ProjectionWarmState) {
        let mut cache = FiberWeightCache::new(self.params.cache_capacity);
        cache.import_warm(&warm.cells);
        self.cache = cache;
        self.strata = warm.strata.clone();
        self.coarse = warm.coarse.clone();
        self.selector_built = warm.selector_built;
    }

    /// Observed acceptance rate of the compensation step.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    /// The cylinder `H_S(y)` expressed as a polytope over the fiber
    /// coordinates: every halfspace `a·x ≤ b` of `S` becomes
    /// `a_F·z ≤ b − a_I·y`. Builds a fresh polytope — the reference
    /// construction; the hot path re-aims the internal [`FiberTemplate`]
    /// instead.
    pub fn fiber_polytope(&self, y: &[f64]) -> HPolytope {
        let fiber_dim = self.fiber_coords.len();
        let halfspaces = self
            .polytope
            .halfspaces()
            .iter()
            .map(|h| {
                let normal: Vec<f64> = self.fiber_coords.iter().map(|&i| h.normal()[i]).collect();
                let fixed: f64 = self
                    .keep
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| h.normal()[i] * y[j])
                    .sum();
                Halfspace::from_slice(&normal, h.offset() - fixed)
            })
            .collect();
        // Built per call and queried once: skip structure detection.
        HPolytope::new_dense(fiber_dim, halfspaces)
    }

    /// The paper's `ĥ` evaluated directly at `y` (no snapping, no cache, no
    /// template): the uncached reference implementation, exposed for the
    /// experiments and equivalence tests. The sampling hot path uses
    /// [`ProjectionGenerator::compensation_weight`].
    pub fn cylinder_weight(&self, y: &[f64]) -> f64 {
        if self.fiber_coords.is_empty() {
            return 1.0;
        }
        let fiber = self.fiber_polytope(y);
        let vol = polytope_volume(&fiber);
        (vol / self.cell).max(1.0)
    }

    /// The memoized compensation weight `ĥ` of the γ-grid cell containing
    /// `y`: snap → probe → fill (see the module docs). The weight of a cell
    /// is a pure function of the cell (and, for the estimated strategy, the
    /// generator's weight seed), so hits and misses produce identical
    /// values and the cache never changes a trajectory.
    pub fn compensation_weight(&mut self, y: &[f64]) -> f64 {
        self.cell_mass(y).max(1.0)
    }

    /// The unclamped cell mass `raw = vol(H_S(center)) / p^{d−e}` of the
    /// γ-grid cell containing `y` — the quantity the cache stores. The
    /// rejection path clamps it to `ĥ = max(raw, 1)`
    /// ([`ProjectionGenerator::compensation_weight`]); the stratified layer
    /// uses `min(raw, 1)` as the cell's selection weight, because the
    /// rejection loop lands in a cell proportionally to `raw` and keeps it
    /// with probability `1/max(raw, 1)`.
    pub fn cell_mass(&mut self, y: &[f64]) -> f64 {
        if self.fiber_coords.is_empty() {
            return 1.0;
        }
        // Snap: integer grid coordinates of y's cell (the grid owns the
        // rounding convention, so cache cells can never diverge from
        // `GammaGrid::snap`).
        let mut key = std::mem::take(&mut self.key_buf);
        key.clear();
        key.extend(y.iter().map(|&v| self.grid.coord_index(v)));
        let mass = self.cell_mass_keyed(&key);
        self.key_buf = key;
        mass
    }

    /// [`ProjectionGenerator::cell_mass`] for an already-snapped integer
    /// cell key: probe → fill. The hash is computed once and shared by the
    /// probe, the insert and the estimator's RNG-stream derivation.
    fn cell_mass_keyed(&mut self, key: &[i64]) -> f64 {
        let hash = FiberWeightCache::key_hash(key);
        match self.cache.get_hashed(hash, key) {
            Some(w) => w,
            None => {
                // Fill at the cell center and memoize.
                let w = self.fill_mass(key, hash);
                self.cache.insert_hashed(hash, key, w);
                w
            }
        }
    }

    /// Computes the unclamped mass of one cell through the resolved
    /// strategy.
    fn fill_mass(&mut self, key: &[i64], hash: u64) -> f64 {
        let mut y = std::mem::take(&mut self.snap_buf);
        y.clear();
        y.extend(key.iter().map(|&k| self.grid.coord_at(k)));
        let vol = match self.fiber_volume {
            FiberVolume::Exact | FiberVolume::Auto => self.fiber.exact_volume(&y),
            FiberVolume::Estimated => self.estimated_fiber_volume(&y, hash),
        };
        self.snap_buf = y;
        vol / self.cell
    }

    /// The `Estimated` strategy: a telescoping `(ε, δ)` volume estimate of
    /// the fiber, funded by an RNG stream derived from the cell-key hash so
    /// the result is a pure function of `(weight_seed, cell)` — identical
    /// across cache states, worker clones and thread counts.
    ///
    /// The fill runs with the query budget meter set aside: a memoized
    /// weight must stay a pure function of its cell, and a fill truncated by
    /// a budget would be cached and poison every later query — including
    /// unbudgeted ones. Budgets bound the query's own walks and attempts;
    /// weight fills are store-level setup work.
    fn estimated_fiber_volume(&mut self, y: &[f64], key_hash: u64) -> f64 {
        let fiber = self.fiber.at(y).clone();
        // Degenerate or empty fibers (cells straddling the boundary) carry
        // no weight; the `max(1.0)` clamp in the caller handles them.
        let Some(cert) = fiber.well_bounded() else {
            return 0.0;
        };
        let body = ConvexBody::from_polytope_cert(fiber, cert);
        let mut rng = SeedSequence::new(self.weight_seed).child(key_hash).rng();
        let estimator = DfkSampler::new(body, self.params.estimator_params(), &mut rng);
        let saved = self.scratch.take_meter();
        let vol = estimator.estimate_volume_with(&mut rng, &mut self.scratch);
        self.scratch.restore_meter(saved);
        vol
    }

    /// Projects a full-dimensional point onto the kept coordinates.
    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.keep.iter().map(|&i| x[i]).collect()
    }

    /// Retry budget of one `sample()` call: the success probability of one
    /// round is at least ~εγ/d³ (proof of Theorem 4.3, with the grid step
    /// p = γ·r_inf/d^{3/2} folded in); retry accordingly, with a cap.
    fn retry_budget(&self) -> usize {
        let d = self.tuple.arity();
        let rounds = ((d.pow(3) as f64 / (self.params.base.eps * self.params.base.gamma))
            * (1.0 / self.params.base.delta).ln())
        .ceil() as usize;
        rounds.clamp(self.params.base.retry_rounds(), PROJECTION_RETRY_CAP)
    }

    /// Builds the lazy stratified state. Consumes **no sampling
    /// randomness**: cells are enumerated in odometer order and their
    /// weights are pure functions of `(weight_seed, cell)`, so a generator
    /// that builds its selector early, late, or in a batch worker's clone
    /// draws bitwise identical streams.
    fn ensure_selector(&mut self) {
        if self.selector_built {
            return;
        }
        self.selector_built = true;
        match self.selection {
            CellSelection::Stratified => {
                let Some(range) = self.range.clone() else {
                    return;
                };
                let mut keys = Vec::new();
                range.for_each_key(|k| keys.push(k.to_vec()));
                let cells: Vec<(Vec<i64>, f64)> = keys
                    .into_iter()
                    .map(|key| {
                        let w = self.cell_mass_keyed(&key).min(1.0);
                        (key, w)
                    })
                    .collect();
                self.strata = StratifiedCells::from_weighted_keys(cells);
            }
            CellSelection::CoarseToFine => {
                if let Some(range) = self.range.clone() {
                    self.coarse = Some(CoarseMap::new(
                        range,
                        self.params.max_enumerated_cells as u64,
                    ));
                }
            }
            CellSelection::Rejection | CellSelection::Auto => {}
        }
    }

    /// Emits a uniform point of cell `key`: the cell center plus a uniform
    /// half-cell jitter per axis, clamped into the projected bounding box.
    /// Consumes exactly one random value per kept axis, in axis order.
    fn jitter_cell<R: Rng + ?Sized>(&self, key: &[i64], rng: &mut R) -> Vec<f64> {
        let step = self.grid.step();
        key.iter()
            .enumerate()
            .map(|(j, &k)| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let v = self.grid.coord_at(k) + step * (u - 0.5);
                v.clamp(self.keep_lo[j], self.keep_hi[j])
            })
            .collect()
    }

    /// The stratified fast path: one alias-table draw selects the cell,
    /// then a uniform within-cell jitter emits the point. Every call
    /// succeeds (`None` only when the enumeration found no occupied cell).
    fn sample_stratified<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.ensure_selector();
        if self.strata.is_none() {
            return None;
        }
        // One alias draw per call: charge one attempt so cancellation and
        // deadlines still reach the (otherwise loop-free) fast path.
        if !self.scratch.budget_meter_mut().charge_attempt() {
            return None;
        }
        self.attempts += 1;
        self.accepted += 1;
        let key = {
            let strata = self.strata.as_ref().expect("checked above");
            strata.sample_key(rng).to_vec()
        };
        Some(self.jitter_cell(&key, rng))
    }

    /// The coarse-to-fine cascade: draw a coarse cell uniformly from the
    /// bounding-box lattice, lazily build the fine alias table inside it,
    /// and accept it with probability `W_c / ratio^e`. Acceptance is the
    /// occupied fraction of the bounding box — bounded by geometry rather
    /// than by the fiber weight `ĥ`.
    fn sample_coarse_to_fine<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.ensure_selector();
        let Some(mut map) = self.coarse.take() else {
            return None;
        };
        let proposal = map.proposal_mass();
        let mut coarse_key = Vec::with_capacity(self.keep.len());
        let mut drawn = None;
        for _ in 0..self.retry_budget() {
            if !self.scratch.budget_meter_mut().charge_attempt() {
                break;
            }
            map.sample_coarse(rng, &mut coarse_key);
            let cell = map.fine_cell(&coarse_key, |k| self.cell_mass_keyed(k));
            self.attempts += 1;
            if rng.gen_range(0.0..1.0) * proposal < cell.mass {
                if let Some(table) = &cell.table {
                    self.accepted += 1;
                    drawn = Some(cell.keys[table.sample(rng)].clone());
                    break;
                }
            }
        }
        self.coarse = Some(map);
        drawn.map(|key| self.jitter_cell(&key, rng))
    }

    /// Draws a point of `S` and projects it *without* the compensation step —
    /// the biased baseline of Figure 1, exposed for the experiments.
    pub fn sample_uncorrected<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.project(&self.sampler.sample(rng))
    }

    /// Estimates the volume (in dimension `|I|`) of the projection `T`.
    ///
    /// Under [`CellSelection::Stratified`] the estimate is the
    /// deterministic Riemann sum `Σ_c min(raw_c, 1) · p^e` over the
    /// enumerated cells — exact at grid resolution, consuming no
    /// randomness. The rejection and coarse-to-fine strategies use the
    /// paper's estimator `vol(T) = vol(S) · E[1/ĥ] / p^{d−e}`.
    /// Note on budgets: when a [`QueryBudget`] installed through
    /// [`RelationGenerator::set_budget`] trips mid-estimate, the returned
    /// value is truncated garbage; the [`RelationVolumeEstimator`] wrapper
    /// detects the trip and reports `None` instead.
    pub fn estimate_projection_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.scratch.arm_budget(&self.budget);
        if self.fiber_coords.is_empty() {
            return self.sampler.estimate_volume_with(rng, &mut self.scratch);
        }
        if self.selection == CellSelection::Stratified {
            self.ensure_selector();
            return self
                .strata
                .as_ref()
                .map_or(0.0, |s| s.total_mass() * self.cell_proj);
        }
        let vol_s = self.sampler.estimate_volume_with(rng, &mut self.scratch);
        let trials = self.params.base.samples_per_phase();
        let mut sum_inv = 0.0;
        for _ in 0..trials {
            if !self.scratch.budget_meter_mut().charge_attempt() {
                return 0.0;
            }
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            if self.scratch.budget_trip().is_some() {
                // The walk was truncated: x is not almost-uniform on S.
                return 0.0;
            }
            let y = self.project(&x);
            sum_inv += 1.0 / self.compensation_weight(&y);
        }
        let mean_inv = sum_inv / trials as f64;
        vol_s * mean_inv / self.cell
    }
}

impl RelationGenerator for ProjectionGenerator {
    fn dim(&self) -> usize {
        self.keep.len()
    }

    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>> {
        self.scratch.arm_budget(&self.budget);
        if self.fiber_coords.is_empty() {
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            if self.scratch.budget_trip().is_some() {
                // The walk was truncated: x is not almost-uniform.
                return None;
            }
            return Some(self.project(&x));
        }
        match self.selection {
            CellSelection::Stratified => return self.sample_stratified(rng),
            CellSelection::CoarseToFine => return self.sample_coarse_to_fine(rng),
            CellSelection::Rejection | CellSelection::Auto => {}
        }
        for _ in 0..self.retry_budget() {
            if !self.scratch.budget_meter_mut().charge_attempt() {
                return None;
            }
            let x = self.sampler.sample_with(rng, &mut self.scratch);
            if self.scratch.budget_trip().is_some() {
                return None;
            }
            let y = self.project(&x);
            let h = self.compensation_weight(&y);
            self.attempts += 1;
            if rng.gen_range(0.0..1.0) < 1.0 / h {
                self.accepted += 1;
                return Some(y);
            }
        }
        None
    }

    // The stratified selector is the only lazy state; it consumes no
    // sampling randomness and its weights are pure functions of their
    // cells, so building it here (before worker clones fan out) is a pure
    // warm-up — a worker that rebuilt it from scratch would draw the same
    // stream bit for bit.
    fn prepare(&mut self, _seq: &SeedSequence) {
        // Setup work is store-charged: never let a stale query meter (or an
        // armed budget) truncate the selector build.
        self.scratch.disarm_budget();
        self.ensure_selector();
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    fn budget_trip(&self) -> Option<BudgetTrip> {
        self.scratch.budget_trip()
    }

    // Worker clones carry the current cache contents; memoized weights are
    // pure functions of their cells, so a warm or cold clone draws the same
    // stream.
    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        batch::sample_batch_prepared(self, n, seq, threads)
    }
}

impl RelationVolumeEstimator for ProjectionGenerator {
    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let v = self.estimate_projection_volume(rng);
        if self.scratch.budget_trip().is_some() {
            // A tripped budget leaves a truncated (garbage) estimate.
            return None;
        }
        Some(v)
    }

    fn prepare_estimator(&mut self, _seq: &SeedSequence) {
        self.scratch.disarm_budget();
        self.ensure_selector();
    }

    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        batch::estimate_volume_batch_prepared(self, repeats, seq, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The triangle 0 ≤ x ≤ 1, 0 ≤ y ≤ x — the canonical Figure 1 shape: its
    /// projection onto x is [0,1], but the fibers shrink linearly to a point
    /// at x = 0.
    fn figure1_triangle() -> GeneralizedTuple {
        use cdb_constraint::Atom;
        GeneralizedTuple::new(
            2,
            vec![
                Atom::le_from_ints(&[-1, 0], 0), // x >= 0
                Atom::le_from_ints(&[1, 0], -1), // x <= 1
                Atom::le_from_ints(&[0, -1], 0), // y >= 0
                Atom::le_from_ints(&[-1, 1], 0), // y <= x
            ],
        )
    }

    fn params() -> GeneratorParams {
        GeneratorParams {
            gamma: 0.05,
            ..GeneratorParams::fast()
        }
    }

    #[test]
    fn samples_land_in_the_projection() {
        // The rejection reference path: compensation loop + memoized weights.
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(51);
        let proj = ProjectionParams::new(params()).with_cell_selection(CellSelection::Rejection);
        let mut gen = ProjectionGenerator::new_with(&tri, &[0], proj, &mut rng).unwrap();
        assert_eq!(gen.resolved_cell_selection(), CellSelection::Rejection);
        let pts = gen.sample_many(200, &mut rng);
        assert!(pts.len() > 100, "too many rejections: {}", pts.len());
        for p in &pts {
            assert_eq!(p.len(), 1);
            assert!(
                p[0] >= -1e-6 && p[0] <= 1.0 + 1e-6,
                "outside projection: {p:?}"
            );
        }
        // The compensation loop memoized its weights.
        assert!(gen.weight_cache().hits() > 0, "cache never hit");
    }

    #[test]
    fn auto_resolves_to_stratified_and_lands_in_the_projection() {
        // The triangle's γ-grid fits the enumeration budget, so the default
        // Auto policy inverts the rejection loop outright.
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(58);
        let mut gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        assert_eq!(gen.resolved_cell_selection(), CellSelection::Stratified);
        let pts = gen.sample_many(200, &mut rng);
        assert_eq!(pts.len(), 200, "stratified draws never fail");
        for p in &pts {
            assert!(
                p[0] >= -1e-6 && p[0] <= 1.0 + 1e-6,
                "outside projection: {p:?}"
            );
        }
        // The enumeration warmed the cache (one fill per candidate cell).
        assert!(gen.weight_cache().len() > 0, "enumeration filled nothing");
        let strata = gen.stratified_cells().expect("occupied cells exist");
        assert!(
            strata.len() > 50,
            "too few occupied cells: {}",
            strata.len()
        );
        // Selection weights are min(raw, 1): never above 1, and the total
        // mass times the cell length reproduces the projection length.
        assert!(strata.weights().iter().all(|&w| 0.0 < w && w <= 1.0));
        let v = strata.total_mass() * gen.grid().step();
        assert!((v - 1.0).abs() < 0.05, "stratified projection length {v}");
    }

    #[test]
    fn coarse_to_fine_matches_the_stratified_distribution() {
        // Force the cascade with a tiny enumeration budget; the projected
        // output must flatten the Figure-1 bias exactly like full
        // enumeration does.
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(59);
        let proj = ProjectionParams::new(params())
            .with_cell_selection(CellSelection::CoarseToFine)
            .with_max_enumerated_cells(16);
        let mut gen = ProjectionGenerator::new_with(&tri, &[0], proj, &mut rng).unwrap();
        assert_eq!(gen.resolved_cell_selection(), CellSelection::CoarseToFine);
        let pts = gen.sample_many(400, &mut rng);
        assert!(pts.len() > 350, "cascade rejected too much: {}", pts.len());
        let left = pts.iter().filter(|p| p[0] < 0.5).count();
        let frac = left as f64 / pts.len() as f64;
        assert!((frac - 0.5).abs() < 0.12, "left fraction {frac}");
        // Acceptance is the occupied fraction of the bounding box — far
        // from the ~1e-2 of the rejection loop on this shape.
        assert!(gen.acceptance_rate() > 0.5, "{}", gen.acceptance_rate());
    }

    #[test]
    fn explicit_stratified_over_budget_is_rejected() {
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(60);
        let proj = ProjectionParams::new(params())
            .with_cell_selection(CellSelection::Stratified)
            .with_max_enumerated_cells(4);
        assert!(matches!(
            ProjectionGenerator::new_with(&tri, &[0], proj, &mut rng),
            Err(ObservabilityError::InvalidParams(_))
        ));
        // Auto degrades to the cascade instead of failing.
        let auto = ProjectionParams::new(params()).with_max_enumerated_cells(4);
        let gen = ProjectionGenerator::new_with(&tri, &[0], auto, &mut rng).unwrap();
        assert_eq!(gen.resolved_cell_selection(), CellSelection::CoarseToFine);
    }

    #[test]
    fn correction_flattens_the_figure1_bias() {
        // Without compensation, the projected samples concentrate near x = 1
        // (large fibers); with compensation the left and right halves are
        // balanced.
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(52);
        let mut gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();

        let n = 400;
        let mut biased_left = 0usize;
        for _ in 0..n {
            if gen.sample_uncorrected(&mut rng)[0] < 0.5 {
                biased_left += 1;
            }
        }
        let corrected = gen.sample_many(n, &mut rng);
        let corrected_left = corrected.iter().filter(|p| p[0] < 0.5).count();

        let biased_frac = biased_left as f64 / n as f64;
        let corrected_frac = corrected_left as f64 / corrected.len() as f64;
        // Uniform-on-triangle puts only 1/4 of the mass at x < 1/2.
        assert!(biased_frac < 0.35, "uncorrected fraction {biased_frac}");
        assert!(
            (corrected_frac - 0.5).abs() < 0.12,
            "corrected fraction {corrected_frac}"
        );
    }

    #[test]
    fn fiber_polytope_matches_geometry() {
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(53);
        let gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        // At x = 0.5 the fiber is the segment 0 <= y <= 0.5.
        let fiber = gen.fiber_polytope(&[0.5]);
        assert!(fiber.contains_slice(&[0.25], 1e-9));
        assert!(!fiber.contains_slice(&[0.75], 1e-9));
        assert!((polytope_volume(&fiber) - 0.5).abs() < 1e-6);
        // The cylinder weight grows with the fiber length.
        assert!(gen.cylinder_weight(&[0.9]) > gen.cylinder_weight(&[0.1]));
    }

    #[test]
    fn cached_weight_agrees_with_the_uncached_reference() {
        let tri = figure1_triangle();
        let mut rng = StdRng::seed_from_u64(57);
        let mut gen = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        assert_eq!(gen.resolved_fiber_volume(), FiberVolume::Exact);
        let step = gen.grid.step();
        for y in [0.1, 0.33, 0.5, 0.77, 0.99] {
            // The memoized weight is the reference weight of the snapped y.
            let snapped = (y / step).round() * step;
            let reference = gen.cylinder_weight(&[snapped]);
            let first = gen.compensation_weight(&[y]);
            let second = gen.compensation_weight(&[y]);
            assert_eq!(first.to_bits(), second.to_bits(), "hit differs from miss");
            assert_eq!(
                first.to_bits(),
                reference.to_bits(),
                "cached weight differs from the reference at y = {y}"
            );
        }
        assert!(gen.weight_cache().hits() >= 5);
    }

    #[test]
    fn projection_volume_of_square_and_triangle() {
        // Projection of the unit square onto x has length 1; same for the triangle.
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(54);
        let mut gen_sq = ProjectionGenerator::new(&square, &[0], params(), &mut rng).unwrap();
        let v_sq = gen_sq.estimate_projection_volume(&mut rng);
        assert!((v_sq - 1.0).abs() < 0.4, "square projection volume {v_sq}");

        let tri = figure1_triangle();
        let mut gen_tri = ProjectionGenerator::new(&tri, &[0], params(), &mut rng).unwrap();
        let v_tri = gen_tri.estimate_projection_volume(&mut rng);
        assert!(
            (v_tri - 1.0).abs() < 0.45,
            "triangle projection volume {v_tri}"
        );
    }

    #[test]
    fn projecting_onto_all_coordinates_is_the_identity() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(55);
        let mut gen = ProjectionGenerator::new(&square, &[0, 1], params(), &mut rng).unwrap();
        let p = gen.sample(&mut rng).unwrap();
        assert_eq!(p.len(), 2);
        assert!(square.satisfied_f64(&p, 1e-9));
        let v = gen.estimate_projection_volume(&mut rng);
        assert!((v - 1.0).abs() < 0.35);
    }

    #[test]
    fn invalid_coordinates_are_rejected() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(56);
        assert!(ProjectionGenerator::new(&square, &[0, 0], params(), &mut rng).is_err());
        assert!(ProjectionGenerator::new(&square, &[5], params(), &mut rng).is_err());
        assert!(ProjectionGenerator::new(&square, &[], params(), &mut rng).is_err());
        // Unbounded tuples are rejected too.
        use cdb_constraint::Atom;
        let halfplane = GeneralizedTuple::new(2, vec![Atom::le_from_ints(&[1, 0], 0)]);
        assert!(ProjectionGenerator::new(&halfplane, &[0], params(), &mut rng).is_err());
        // An invalid estimator budget is rejected by `new_with`.
        let bad = ProjectionParams::new(params()).with_estimator_budget(2.0, 0.1);
        assert!(ProjectionGenerator::new_with(&square, &[0], bad, &mut rng).is_err());
    }
}
