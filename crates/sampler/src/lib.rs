//! Almost-uniform generators and volume estimators for generalized relations.
//!
//! This crate implements the randomized core of the paper:
//!
//! * the Dyer–Frieze–Kannan style generator and volume estimator for a
//!   well-bounded convex body given by a membership oracle ([`DfkSampler`]),
//!   including rounding and the telescoping-body volume scheme;
//! * the `(γ, ε, δ)`-generator abstraction of Definition 2.2 and the
//!   `(ε, δ)`-volume estimator of Definition 2.1 ([`GeneratorParams`],
//!   [`RelationGenerator`], [`RelationVolumeEstimator`]);
//! * the composed generators of Section 4: union (Algorithm 1,
//!   [`UnionGenerator`]), intersection ([`IntersectionGenerator`]),
//!   difference ([`DifferenceGenerator`]) and projection (Algorithm 2,
//!   [`ProjectionGenerator`]);
//! * the fixed-dimension algorithms of Section 3 ([`FixedDimSampler`]);
//! * the naive bounding-box rejection baseline ([`RejectionSampler`]) whose
//!   exponential failure rate motivates the whole construction;
//! * statistical diagnostics used by the experiments ([`diagnostics`]);
//! * the parallel batch layer ([`batch`], [`SeedSequence`]): every generator
//!   and estimator exposes `sample_batch` / `estimate_volume_batch` entry
//!   points that fan independent chains and repeats out across scoped worker
//!   threads.
//!
//! # Seed streams and reproducible parallelism
//!
//! The batch API replaces the single shared [`rand::Rng`] with a
//! [`SeedSequence`]: a deterministic tree of RNG streams rooted at one `u64`
//! seed. Work item `i` (a sample, or a volume-estimate repeat) always
//! consumes child stream `i + 1`, and one-time generator setup consumes
//! child stream `0`, so the output of a batch is **bitwise identical for any
//! number of worker threads** — `threads` only decides how the items are
//! scheduled, never what they compute:
//!
//! ```
//! use cdb_constraint::GeneralizedRelation;
//! use cdb_sampler::{GeneratorParams, RelationGenerator, SeedSequence, UnionGenerator};
//!
//! let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
//! let seq = SeedSequence::new(7);
//! let mut a = UnionGenerator::new(&relation, GeneratorParams::fast()).unwrap();
//! let mut b = UnionGenerator::new(&relation, GeneratorParams::fast()).unwrap();
//! assert_eq!(a.sample_batch(32, &seq, 1), b.sample_batch(32, &seq, 4));
//! ```
//!
//! # Example
//!
//! ```
//! use cdb_constraint::GeneralizedRelation;
//! use cdb_sampler::{GeneratorParams, UnionGenerator, RelationGenerator, RelationVolumeEstimator};
//! use rand::SeedableRng;
//!
//! let relation = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
//!     .union(&GeneralizedRelation::from_box_f64(&[0.5, 0.0], &[1.5, 1.0]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut gen = UnionGenerator::new(&relation, GeneratorParams::fast()).unwrap();
//! let p = gen.sample(&mut rng).unwrap();
//! assert!(relation.contains_f64(&p));
//! let vol = gen.estimate_volume(&mut rng).unwrap();
//! assert!((vol - 1.5).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod compose;
mod dfk;
pub mod diagnostics;
pub mod faults;
mod fixed_dim;
pub mod gauss;
mod oracle;
mod params;
pub mod prepared;
mod rejection;
pub mod walk;

pub use batch::{FanOutReport, TimedItem, WorkerPanic};
pub use budget::{BudgetMeter, BudgetTrip, CancelToken, QueryBudget};
pub use compose::difference::DifferenceGenerator;
pub use compose::fiber_weight::{
    FiberVolume, FiberWeightCache, ProjectionParams, AUTO_EXACT_MAX_FIBER_DIM,
    DEFAULT_MAX_ENUMERATED_CELLS, DEFAULT_WEIGHT_CACHE_CAPACITY,
};
pub use compose::intersection::IntersectionGenerator;
pub use compose::projection::{ProjectionGenerator, ProjectionWarmState};
pub use compose::stratified::{AliasTable, CellRange, CellSelection, StratifiedCells};
pub use compose::union::UnionGenerator;
pub use dfk::DfkSampler;
pub use faults::{FaultGuard, FaultPlan};
pub use fixed_dim::FixedDimSampler;
pub use oracle::{ConvexBody, MembershipOracle};
pub use params::{GeneratorParams, RelationGenerator, RelationVolumeEstimator, SeedSequence};
pub use prepared::{PreparedStore, PreparedStoreStats, DEFAULT_PREPARED_STORE_CAPACITY};
pub use rejection::RejectionSampler;
pub use walk::{WalkKind, WalkScratch};
