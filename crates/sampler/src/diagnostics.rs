//! Statistical diagnostics used by the tests and the experiment harness.
//!
//! The paper's generators come with distributional guarantees
//! (Definition 2.2) that depend on walk lengths we deliberately do not run at
//! their theoretical values; these helpers provide the empirical checks the
//! experiments use instead: chi-square uniformity statistics, histograms and
//! relative errors.

/// Pearson chi-square statistic of observed counts against expected counts.
/// Cells with non-positive expectation are skipped.
pub fn chi_square_statistic(observed: &[usize], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| {
            let diff = o as f64 - e;
            diff * diff / e
        })
        .sum()
}

/// A loose upper quantile for the chi-square distribution with `k` degrees of
/// freedom: `k + 4·sqrt(2k)` is beyond the 0.999 quantile for every `k ≥ 1`,
/// which is what the statistical tests use as a red line.
pub fn chi_square_loose_bound(degrees_of_freedom: usize) -> f64 {
    let k = degrees_of_freedom.max(1) as f64;
    k + 4.0 * (2.0 * k).sqrt()
}

/// Histogram of scalar values over `[lo, hi)` with `bins` equal cells; values
/// outside the range are clamped into the border cells.
pub fn histogram_1d(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "invalid histogram range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Chi-square statistic of a sample of scalars against the uniform
/// distribution on `[lo, hi]`.
pub fn uniformity_chi_square(values: &[f64], lo: f64, hi: f64, bins: usize) -> f64 {
    let counts = histogram_1d(values, lo, hi, bins);
    let expected = vec![values.len() as f64 / bins as f64; bins];
    chi_square_statistic(&counts, &expected)
}

/// Relative error `|estimate − truth| / |truth|` (infinite when the truth is
/// zero and the estimate is not).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Does `estimate` approximate `truth` with ratio `1 + eps`, the approximation
/// notion used throughout the paper?
pub fn approximates_with_ratio(estimate: f64, truth: f64, eps: f64) -> bool {
    if truth <= 0.0 || estimate <= 0.0 {
        return truth == estimate;
    }
    estimate <= (1.0 + eps) * truth && estimate >= truth / (1.0 + eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chi_square_of_perfect_fit_is_zero() {
        let observed = [10usize, 10, 10, 10];
        let expected = [10.0, 10.0, 10.0, 10.0];
        assert_eq!(chi_square_statistic(&observed, &expected), 0.0);
    }

    #[test]
    fn chi_square_grows_with_imbalance() {
        let expected = [25.0, 25.0, 25.0, 25.0];
        let mild = chi_square_statistic(&[30, 20, 26, 24], &expected);
        let severe = chi_square_statistic(&[70, 10, 10, 10], &expected);
        assert!(severe > mild);
        assert!(severe > chi_square_loose_bound(3));
        assert!(mild < chi_square_loose_bound(3));
    }

    #[test]
    fn uniform_samples_pass_uniformity_check() {
        let mut rng = StdRng::seed_from_u64(81);
        let values: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let stat = uniformity_chi_square(&values, 0.0, 1.0, 10);
        assert!(stat < chi_square_loose_bound(9), "stat {stat}");
        // A strongly skewed sample fails.
        let skewed: Vec<f64> = (0..2000)
            .map(|_| rng.gen_range(0.0f64..1.0).powi(3))
            .collect();
        let bad = uniformity_chi_square(&skewed, 0.0, 1.0, 10);
        assert!(bad > chi_square_loose_bound(9), "stat {bad}");
    }

    #[test]
    fn histogram_boundaries() {
        let counts = histogram_1d(&[0.0, 0.05, 0.55, 0.95, 1.5, -0.5], 0.0, 1.0, 2);
        assert_eq!(counts, vec![3, 3]);
    }

    #[test]
    fn relative_error_and_ratio() {
        assert_eq!(relative_error(1.1, 1.0), 0.10000000000000009);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!(approximates_with_ratio(1.1, 1.0, 0.2));
        assert!(approximates_with_ratio(0.9, 1.0, 0.2));
        assert!(!approximates_with_ratio(1.5, 1.0, 0.2));
        assert!(!approximates_with_ratio(0.5, 1.0, 0.2));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn mismatched_cells_panic() {
        let _ = chi_square_statistic(&[1, 2], &[1.0]);
    }
}
