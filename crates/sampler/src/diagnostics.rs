//! Statistical diagnostics used by the tests and the experiment harness.
//!
//! The paper's generators come with distributional guarantees
//! (Definition 2.2) that depend on walk lengths we deliberately do not run at
//! their theoretical values; these helpers provide the empirical checks the
//! experiments use instead: chi-square uniformity statistics, histograms and
//! relative errors.

/// Pearson chi-square statistic of observed counts against expected counts.
/// Cells with non-positive expectation are skipped.
pub fn chi_square_statistic(observed: &[usize], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| {
            let diff = o as f64 - e;
            diff * diff / e
        })
        .sum()
}

/// A loose upper quantile for the chi-square distribution with `k` degrees of
/// freedom: `k + 4·sqrt(2k)` is beyond the 0.999 quantile for every `k ≥ 1`,
/// which is what the statistical tests use as a red line.
pub fn chi_square_loose_bound(degrees_of_freedom: usize) -> f64 {
    let k = degrees_of_freedom.max(1) as f64;
    k + 4.0 * (2.0 * k).sqrt()
}

/// Histogram of scalar values over `[lo, hi)` with `bins` equal cells; values
/// outside the range are clamped into the border cells.
pub fn histogram_1d(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "invalid histogram range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Chi-square statistic of a sample of scalars against the uniform
/// distribution on `[lo, hi]`.
pub fn uniformity_chi_square(values: &[f64], lo: f64, hi: f64, bins: usize) -> f64 {
    let counts = histogram_1d(values, lo, hi, bins);
    let expected = vec![values.len() as f64 / bins as f64; bins];
    chi_square_statistic(&counts, &expected)
}

/// Relative error `|estimate − truth| / |truth|` (infinite when the truth is
/// zero and the estimate is not).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Does `estimate` approximate `truth` with ratio `1 + eps`, the approximation
/// notion used throughout the paper?
pub fn approximates_with_ratio(estimate: f64, truth: f64, eps: f64) -> bool {
    if truth <= 0.0 || estimate <= 0.0 {
        return truth == estimate;
    }
    estimate <= (1.0 + eps) * truth && estimate >= truth / (1.0 + eps)
}

/// Central Poisson count interval: the smallest `[lo, hi]` such that a
/// `Poisson(mean)` count falls below `lo` with probability at most
/// `tail / 2` and above `hi` with probability at most `tail / 2`.
///
/// This is the count-based confidence construction in the spirit of
/// Roe–Woodroofe (as analysed by Mandelkern & Schultz, 2000): the interval
/// is computed from the exact discrete tail sums, not a normal
/// approximation, so it stays valid for *small* means — a cell expecting
/// 0.3 hits gets the honest interval `[0, k]` instead of a negative-width
/// Gaussian band, which is exactly what keeps low-count occupancy gates
/// from flaking.
///
/// The pmf is accumulated in log space (`ln k!` built incrementally), so
/// large means neither underflow `e^{-mean}` nor lose the tails.
pub fn poisson_count_interval(mean: f64, tail: f64) -> (u64, u64) {
    assert!(mean >= 0.0 && mean.is_finite(), "mean must be finite, >= 0");
    assert!(0.0 < tail && tail < 1.0, "tail must lie in (0, 1)");
    if mean == 0.0 {
        return (0, 0);
    }
    let half = tail / 2.0;
    let ln_mean = mean.ln();
    // Scan k upward accumulating the CDF; the scan is bounded well past the
    // upper tail (mean + 20 sqrt(mean) covers any tail over ~1e-80).
    let k_max = (mean + 20.0 * mean.sqrt() + 50.0).ceil() as u64;
    let mut ln_kfact = 0.0f64; // ln 0!
    let mut cdf = 0.0f64;
    let mut lo = 0u64;
    let mut hi = k_max;
    for k in 0..=k_max {
        if k > 0 {
            ln_kfact += (k as f64).ln();
        }
        let ln_pmf = -mean + k as f64 * ln_mean - ln_kfact;
        let prev_cdf = cdf;
        cdf += ln_pmf.exp();
        // lo: largest k with P(X < k) <= half. The CDF is nondecreasing, so
        // the last k whose strictly-below mass fits the budget sticks.
        if prev_cdf <= half {
            lo = k;
        }
        // hi: smallest k with P(X > k) <= half.
        if 1.0 - cdf <= half {
            hi = k;
            break;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chi_square_of_perfect_fit_is_zero() {
        let observed = [10usize, 10, 10, 10];
        let expected = [10.0, 10.0, 10.0, 10.0];
        assert_eq!(chi_square_statistic(&observed, &expected), 0.0);
    }

    #[test]
    fn chi_square_grows_with_imbalance() {
        let expected = [25.0, 25.0, 25.0, 25.0];
        let mild = chi_square_statistic(&[30, 20, 26, 24], &expected);
        let severe = chi_square_statistic(&[70, 10, 10, 10], &expected);
        assert!(severe > mild);
        assert!(severe > chi_square_loose_bound(3));
        assert!(mild < chi_square_loose_bound(3));
    }

    #[test]
    fn uniform_samples_pass_uniformity_check() {
        let mut rng = StdRng::seed_from_u64(81);
        let values: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let stat = uniformity_chi_square(&values, 0.0, 1.0, 10);
        assert!(stat < chi_square_loose_bound(9), "stat {stat}");
        // A strongly skewed sample fails.
        let skewed: Vec<f64> = (0..2000)
            .map(|_| rng.gen_range(0.0f64..1.0).powi(3))
            .collect();
        let bad = uniformity_chi_square(&skewed, 0.0, 1.0, 10);
        assert!(bad > chi_square_loose_bound(9), "stat {bad}");
    }

    #[test]
    fn histogram_boundaries() {
        let counts = histogram_1d(&[0.0, 0.05, 0.55, 0.95, 1.5, -0.5], 0.0, 1.0, 2);
        assert_eq!(counts, vec![3, 3]);
    }

    #[test]
    fn relative_error_and_ratio() {
        assert_eq!(relative_error(1.1, 1.0), 0.10000000000000009);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!(approximates_with_ratio(1.1, 1.0, 0.2));
        assert!(approximates_with_ratio(0.9, 1.0, 0.2));
        assert!(!approximates_with_ratio(1.5, 1.0, 0.2));
        assert!(!approximates_with_ratio(0.5, 1.0, 0.2));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn mismatched_cells_panic() {
        let _ = chi_square_statistic(&[1, 2], &[1.0]);
    }

    #[test]
    fn poisson_interval_brackets_the_mean() {
        for mean in [0.5, 3.0, 50.0, 400.0] {
            let (lo, hi) = poisson_count_interval(mean, 1e-6);
            assert!((lo as f64) <= mean, "mean {mean}: lo {lo}");
            assert!((hi as f64) >= mean, "mean {mean}: hi {hi}");
            // Tighter tails widen, never narrow, the interval.
            let (lo9, hi9) = poisson_count_interval(mean, 1e-9);
            assert!(lo9 <= lo && hi9 >= hi, "mean {mean}: tails inverted");
        }
    }

    #[test]
    fn poisson_interval_handles_small_means_without_normal_pathology() {
        // A normal approximation at mean 0.2 would produce a negative lower
        // bound; the exact construction pins lo = 0 and keeps hi small.
        let (lo, hi) = poisson_count_interval(0.2, 1e-6);
        assert_eq!(lo, 0);
        assert!(hi <= 10, "hi {hi}");
        assert_eq!(poisson_count_interval(0.0, 1e-6), (0, 0));
    }

    #[test]
    fn poisson_interval_tails_match_the_exact_cdf() {
        // Direct check of the defining property at a moderate mean: the
        // interval's outside mass respects the per-side budget, and the
        // interval is minimal (shrinking either side overflows it).
        let mean = 12.0;
        let tail = 1e-4;
        let (lo, hi) = poisson_count_interval(mean, tail);
        let pmf = |k: u64| -> f64 {
            let mut ln = -mean + k as f64 * mean.ln();
            for i in 1..=k {
                ln -= (i as f64).ln();
            }
            ln.exp()
        };
        let below: f64 = (0..lo).map(&pmf).sum();
        let above: f64 = (hi + 1..hi + 200).map(&pmf).sum();
        assert!(below <= tail / 2.0, "below {below}");
        assert!(above <= tail / 2.0, "above {above}");
        assert!(below + pmf(lo) > tail / 2.0, "lo not maximal");
        assert!(above + pmf(hi) > tail / 2.0, "hi not minimal");
    }
}
