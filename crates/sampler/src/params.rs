//! Generator parameters and the generator / estimator traits.

use rand::Rng;

use crate::walk::WalkKind;

/// The `(γ, ε, δ)` parameters of Definition 2.2 together with the practical
/// knobs (walk length, sample counts) the theoretical bounds are mapped to.
///
/// The paper's mixing-time bound is `O((d^19 / εγ) ln(1/δ))`; running the
/// literal constant is pointless on real hardware, so the walk length is a
/// parameter calibrated per experiment (`walk_steps_factor · d` steps) and
/// the uniformity of the output is checked statistically instead
/// (`diagnostics`). The derived sample counts follow the shape of the
/// theoretical bounds: `O(1/ε²·ln(1/δ))` samples per telescoping phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorParams {
    /// Grid/discretization quality `γ` of Definition 2.2.
    pub gamma: f64,
    /// Distribution quality `ε` (ratio `1 + ε` to uniform / to the volume).
    pub eps: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Number of walk steps per generated point, as a multiple of the
    /// dimension.
    pub walk_steps_factor: usize,
    /// The random walk used inside the convex generator.
    pub walk: WalkKind,
    /// Whether the rounding (well-rounding affine transform) step is applied.
    pub rounding: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            gamma: 0.1,
            eps: 0.2,
            delta: 0.1,
            walk_steps_factor: 12,
            walk: WalkKind::HitAndRun,
            rounding: true,
        }
    }
}

impl GeneratorParams {
    /// Parameters tuned for quick unit tests and doc examples: coarser
    /// approximation, shorter walks.
    pub fn fast() -> Self {
        GeneratorParams {
            gamma: 0.2,
            eps: 0.3,
            delta: 0.2,
            walk_steps_factor: 8,
            walk: WalkKind::HitAndRun,
            rounding: false,
        }
    }

    /// Parameters for the benchmark harness: tighter approximation.
    pub fn accurate() -> Self {
        GeneratorParams {
            gamma: 0.05,
            eps: 0.1,
            delta: 0.05,
            walk_steps_factor: 20,
            walk: WalkKind::HitAndRun,
            rounding: true,
        }
    }

    /// Number of walk steps for a body of dimension `d`.
    pub fn walk_steps(&self, d: usize) -> usize {
        (self.walk_steps_factor * d.max(1)).max(4)
    }

    /// Number of samples per telescoping phase of the volume estimator,
    /// `⌈c / ε² · ln(1/δ)⌉` with a small constant.
    pub fn samples_per_phase(&self) -> usize {
        let n = (4.0 / (self.eps * self.eps) * (1.0 / self.delta).ln()).ceil();
        (n as usize).clamp(64, 20_000)
    }

    /// Number of retry rounds used by the composed generators; the paper uses
    /// `k = 4 ln(1/δ)` for the union generator (Theorem 4.1).
    pub fn retry_rounds(&self) -> usize {
        ((4.0 * (1.0 / self.delta).ln()).ceil() as usize).clamp(4, 1_000)
    }

    /// Validates the parameter ranges required by the definitions
    /// (`0 < γ, ε, δ < 1`).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("gamma", self.gamma),
            ("eps", self.eps),
            ("delta", self.delta),
        ] {
            if !(0.0 < v && v < 1.0) {
                return Err(format!("{name} must lie in (0, 1), got {v}"));
            }
        }
        Ok(())
    }
}

/// An almost-uniform generator for a relation (Definition 2.2): produces
/// points whose distribution is within ratio `1 + ε` of uniform on the
/// discretized relation, or fails (returns `None`) with probability at most
/// `δ`.
pub trait RelationGenerator {
    /// Dimension of the generated points.
    fn dim(&self) -> usize;
    /// Draws one almost-uniform point, or fails.
    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>>;

    /// Draws `n` points, skipping failures (the number of returned points can
    /// be smaller than `n`).
    fn sample_many<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).filter_map(|_| self.sample(rng)).collect()
    }
}

/// An `(ε, δ)`-volume estimator for a relation (Definition 2.1).
pub trait RelationVolumeEstimator {
    /// Estimates the volume, or fails (returns `None`) when the relation is
    /// not observable under the given parameters (e.g. the poly-related
    /// condition of Proposition 4.1 is violated).
    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counts_scale_with_parameters() {
        let loose = GeneratorParams {
            eps: 0.5,
            delta: 0.5,
            ..Default::default()
        };
        let tight = GeneratorParams {
            eps: 0.05,
            delta: 0.01,
            ..Default::default()
        };
        assert!(tight.samples_per_phase() > loose.samples_per_phase());
        assert!(tight.retry_rounds() >= loose.retry_rounds());
        assert!(tight.walk_steps(10) == 10 * tight.walk_steps_factor);
        assert!(loose.walk_steps(0) >= 4);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(GeneratorParams::default().validate().is_ok());
        assert!(GeneratorParams {
            eps: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(GeneratorParams {
            delta: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(GeneratorParams {
            gamma: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn presets_are_ordered_by_cost() {
        assert!(
            GeneratorParams::fast().samples_per_phase()
                <= GeneratorParams::accurate().samples_per_phase()
        );
        assert!(
            GeneratorParams::fast().walk_steps_factor
                <= GeneratorParams::accurate().walk_steps_factor
        );
    }
}
