//! Generator parameters, the split-RNG seed sequence and the generator /
//! estimator traits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::budget::{BudgetTrip, QueryBudget};
use crate::walk::WalkKind;

/// A deterministic tree of random-number streams, the backbone of the
/// parallel batch API.
///
/// A `SeedSequence` names one node in an infinite tree rooted at a single
/// `u64` seed. [`SeedSequence::child`] derives the `i`-th child node by
/// mixing the index into the state with a SplitMix64-style avalanche, so
/// distinct children produce statistically independent [`StdRng`] streams
/// while remaining a pure function of `(root seed, path)`.
///
/// The batch samplers rely on one convention, shared by the sequential
/// defaults and the parallel overrides so that results are **bitwise
/// identical for any worker count**:
///
/// * child `0` ([`SeedSequence::setup_stream`]) funds one-time lazy setup
///   (per-component samplers, pilot volume estimates);
/// * child `i + 1` ([`SeedSequence::item_stream`]) funds work item `i`
///   (one sample, or one volume-estimate repeat), independently of which
///   thread executes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedSequence {
    /// Creates the root of a stream tree from a seed.
    pub fn new(seed: u64) -> Self {
        SeedSequence {
            state: mix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Derives the `index`-th child stream. Deterministic, and children with
    /// distinct indices (or distinct parents) get distinct states.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            state: mix64(
                self.state
                    .wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }

    /// The stream that funds one-time generator setup (child `0`).
    pub fn setup_stream(&self) -> SeedSequence {
        self.child(0)
    }

    /// The stream that funds work item `i` (child `i + 1`).
    pub fn item_stream(&self, index: usize) -> SeedSequence {
        self.child(index as u64 + 1)
    }

    /// Instantiates the RNG of this stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }
}

/// The `(γ, ε, δ)` parameters of Definition 2.2 together with the practical
/// knobs (walk length, sample counts) the theoretical bounds are mapped to.
///
/// The paper's mixing-time bound is `O((d^19 / εγ) ln(1/δ))`; running the
/// literal constant is pointless on real hardware, so the walk length is a
/// parameter calibrated per experiment (`walk_steps_factor · d` steps) and
/// the uniformity of the output is checked statistically instead
/// (`diagnostics`). The derived sample counts follow the shape of the
/// theoretical bounds: `O(1/ε²·ln(1/δ))` samples per telescoping phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorParams {
    /// Grid/discretization quality `γ` of Definition 2.2.
    pub gamma: f64,
    /// Distribution quality `ε` (ratio `1 + ε` to uniform / to the volume).
    pub eps: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Number of walk steps per generated point, as a multiple of the
    /// dimension.
    pub walk_steps_factor: usize,
    /// The random walk used inside the convex generator.
    pub walk: WalkKind,
    /// Whether the rounding (well-rounding affine transform) step is applied.
    pub rounding: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            gamma: 0.1,
            eps: 0.2,
            delta: 0.1,
            walk_steps_factor: 12,
            walk: WalkKind::HitAndRun,
            rounding: true,
        }
    }
}

impl GeneratorParams {
    /// Parameters tuned for quick unit tests and doc examples: coarser
    /// approximation, shorter walks.
    pub fn fast() -> Self {
        GeneratorParams {
            gamma: 0.2,
            eps: 0.3,
            delta: 0.2,
            walk_steps_factor: 8,
            walk: WalkKind::HitAndRun,
            rounding: false,
        }
    }

    /// Parameters for the benchmark harness: tighter approximation.
    pub fn accurate() -> Self {
        GeneratorParams {
            gamma: 0.05,
            eps: 0.1,
            delta: 0.05,
            walk_steps_factor: 20,
            walk: WalkKind::HitAndRun,
            rounding: true,
        }
    }

    /// Number of walk steps for a body of dimension `d`.
    pub fn walk_steps(&self, d: usize) -> usize {
        (self.walk_steps_factor * d.max(1)).max(4)
    }

    /// Number of samples per telescoping phase of the volume estimator,
    /// `⌈c / ε² · ln(1/δ)⌉` with a small constant.
    pub fn samples_per_phase(&self) -> usize {
        let n = (4.0 / (self.eps * self.eps) * (1.0 / self.delta).ln()).ceil();
        (n as usize).clamp(64, 20_000)
    }

    /// Number of retry rounds used by the composed generators; the paper uses
    /// `k = 4 ln(1/δ)` for the union generator (Theorem 4.1).
    pub fn retry_rounds(&self) -> usize {
        ((4.0 * (1.0 / self.delta).ln()).ceil() as usize).clamp(4, 1_000)
    }

    /// Validates the parameter ranges required by the definitions
    /// (`0 < γ, ε, δ < 1`).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("gamma", self.gamma),
            ("eps", self.eps),
            ("delta", self.delta),
        ] {
            if !(0.0 < v && v < 1.0) {
                return Err(format!("{name} must lie in (0, 1), got {v}"));
            }
        }
        Ok(())
    }
}

/// An almost-uniform generator for a relation (Definition 2.2): produces
/// points whose distribution is within ratio `1 + ε` of uniform on the
/// discretized relation, or fails (returns `None`) with probability at most
/// `δ`.
pub trait RelationGenerator {
    /// Dimension of the generated points.
    fn dim(&self) -> usize;
    /// Draws one almost-uniform point, or fails.
    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Vec<f64>>;

    /// Draws `n` points, skipping failures (the number of returned points can
    /// be smaller than `n`). This is the sequential single-stream path; see
    /// [`RelationGenerator::sample_batch`] for the deterministic parallel one.
    fn sample_many<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).filter_map(|_| self.sample(rng)).collect()
    }

    /// Performs the generator's one-time lazy setup (per-component samplers,
    /// pilot volume estimates) funded by the setup stream of `seq`.
    /// Idempotent; called implicitly by the batch entry points.
    fn prepare(&mut self, seq: &SeedSequence) {
        let _ = seq;
    }

    /// Installs a [`QueryBudget`] that every subsequent `sample` /
    /// `estimate_volume` call runs under (the counters re-arm per call, so in
    /// a batch the budget applies per item). The default implementation
    /// ignores the budget — implementors without unbounded loops need no
    /// limits.
    fn set_budget(&mut self, budget: QueryBudget) {
        let _ = budget;
    }

    /// Why the most recent `sample` / `estimate_volume` call stopped early,
    /// or `None` when it ran to completion (a `None` result with a `None`
    /// trip is a genuine δ-failure, not budget exhaustion).
    fn budget_trip(&self) -> Option<BudgetTrip> {
        None
    }

    /// Draws `n` points, one per child stream of `seq` (item `i` uses
    /// [`SeedSequence::item_stream`]`(i)`), splitting the items across up to
    /// `threads` worker threads (`0` means one per available core).
    ///
    /// Because every item's randomness is a pure function of `(seq, i)` and
    /// setup is funded by the dedicated setup stream, the output is
    /// **identical for any thread count** — including this sequential default
    /// implementation, which implementors override with a parallel fan-out.
    /// Failed draws are reported as `None` so indices stay aligned with
    /// streams. Parallel overrides run on worker-local clones, so batch
    /// calls do not update diagnostic counters such as the composed
    /// generators' `acceptance_rate()` (see
    /// [`crate::batch::sample_batch_prepared`]).
    fn sample_batch(
        &mut self,
        n: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<Vec<f64>>> {
        let _ = threads;
        self.prepare(seq);
        (0..n)
            .map(|i| self.sample(&mut seq.item_stream(i).rng()))
            .collect()
    }
}

/// An `(ε, δ)`-volume estimator for a relation (Definition 2.1).
pub trait RelationVolumeEstimator {
    /// Estimates the volume, or fails (returns `None`) when the relation is
    /// not observable under the given parameters (e.g. the poly-related
    /// condition of Proposition 4.1 is violated).
    fn estimate_volume<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64>;

    /// Performs the estimator's one-time lazy setup funded by the setup
    /// stream of `seq` — the volume-side counterpart of
    /// [`RelationGenerator::prepare`] (types implementing both traits
    /// typically delegate one to the other). Idempotent; called implicitly
    /// by the batch entry points.
    fn prepare_estimator(&mut self, seq: &SeedSequence) {
        let _ = seq;
    }

    /// Runs `repeats` independent volume estimates, one per child stream of
    /// `seq`, across up to `threads` worker threads (`0` means one per
    /// available core). Same stream convention — setup from the setup
    /// stream, repeat `i` from [`SeedSequence::item_stream`]`(i)` — and
    /// therefore the same thread-count-independence guarantee as
    /// [`RelationGenerator::sample_batch`].
    fn estimate_volume_batch(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Vec<Option<f64>> {
        let _ = threads;
        self.prepare_estimator(seq);
        (0..repeats)
            .map(|i| self.estimate_volume(&mut seq.item_stream(i).rng()))
            .collect()
    }

    /// Median of the successful repeats of
    /// [`RelationVolumeEstimator::estimate_volume_batch`] — the classical
    /// amplification of an `(ε, 1/4)`-estimator into an `(ε, δ)`-estimator
    /// with `O(ln 1/δ)` repetitions. `None` when every repeat failed.
    fn estimate_volume_median(
        &mut self,
        repeats: usize,
        seq: &SeedSequence,
        threads: usize,
    ) -> Option<f64> {
        let mut estimates: Vec<f64> = self
            .estimate_volume_batch(repeats.max(1), seq, threads)
            .into_iter()
            .flatten()
            .collect();
        if estimates.is_empty() {
            return None;
        }
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("volume estimates are finite"));
        Some(estimates[estimates.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counts_scale_with_parameters() {
        let loose = GeneratorParams {
            eps: 0.5,
            delta: 0.5,
            ..Default::default()
        };
        let tight = GeneratorParams {
            eps: 0.05,
            delta: 0.01,
            ..Default::default()
        };
        assert!(tight.samples_per_phase() > loose.samples_per_phase());
        assert!(tight.retry_rounds() >= loose.retry_rounds());
        assert!(tight.walk_steps(10) == 10 * tight.walk_steps_factor);
        assert!(loose.walk_steps(0) >= 4);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(GeneratorParams::default().validate().is_ok());
        assert!(GeneratorParams {
            eps: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(GeneratorParams {
            delta: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(GeneratorParams {
            gamma: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn seed_sequence_children_are_deterministic_and_distinct() {
        let root = SeedSequence::new(42);
        assert_eq!(root.child(3), SeedSequence::new(42).child(3));
        // Sibling streams and cousin streams never collide on a large sample.
        let mut states = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(states.insert(root.child(i)));
            assert!(states.insert(root.child(7).child(i)));
        }
        // Distinct roots give distinct trees.
        assert_ne!(SeedSequence::new(1).child(0), SeedSequence::new(2).child(0));
        // setup/item streams follow the documented child indices.
        assert_eq!(root.setup_stream(), root.child(0));
        assert_eq!(root.item_stream(5), root.child(6));
    }

    #[test]
    fn seed_sequence_rngs_diverge() {
        use rand::RngCore;
        let root = SeedSequence::new(9);
        let mut a = root.child(0).rng();
        let mut b = root.child(1).rng();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "child streams look correlated");
        // The same stream replays identically.
        let mut c = root.child(1).rng();
        let mut d = root.child(1).rng();
        for _ in 0..64 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn presets_are_ordered_by_cost() {
        assert!(
            GeneratorParams::fast().samples_per_phase()
                <= GeneratorParams::accurate().samples_per_phase()
        );
        assert!(
            GeneratorParams::fast().walk_steps_factor
                <= GeneratorParams::accurate().walk_steps_factor
        );
    }
}
