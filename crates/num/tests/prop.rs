//! Property-based tests for `cdb-num`: the ring/field axioms and agreement
//! with 128-bit machine arithmetic on values that fit.

use cdb_num::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn bigint_strategy() -> impl Strategy<Value = (i128, BigInt)> {
    any::<i64>().prop_map(|v| (v as i128, BigInt::from(v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn biguint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let x = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(x.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn biguint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let x = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(x.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u128>(), b in 1u128..) {
        let (q, r) = BigUint::from(a).div_rem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn biguint_shift_roundtrip(a in any::<u128>(), s in 0u64..200) {
        let v = BigUint::from(a);
        prop_assert_eq!(v.shl_bits(s).shr_bits(s), v);
    }

    #[test]
    fn biguint_display_parse_roundtrip(a in any::<u128>()) {
        let v = BigUint::from(a);
        prop_assert_eq!(BigUint::from_decimal(&v.to_string()), Some(v));
    }

    #[test]
    fn bigint_ring_axioms((_ai, a) in bigint_strategy(), (_bi, b) in bigint_strategy(), (_ci, c) in bigint_strategy()) {
        // Commutativity and associativity of + and *.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Additive inverse.
        prop_assert_eq!(&a + &(-&a), BigInt::zero());
    }

    #[test]
    fn bigint_matches_i128((ai, a) in bigint_strategy(), (bi, b) in bigint_strategy()) {
        prop_assert_eq!((&a + &b).to_i128(), Some(ai + bi));
        prop_assert_eq!((&a - &b).to_i128(), Some(ai - bi));
        prop_assert_eq!((&a * &b).to_i128(), Some(ai * bi));
        if bi != 0 {
            prop_assert_eq!((&a / &b).to_i128(), Some(ai / bi));
            prop_assert_eq!((&a % &b).to_i128(), Some(ai % bi));
        }
        prop_assert_eq!(a.cmp(&b), ai.cmp(&bi));
    }

    #[test]
    fn bigint_gcd_divides_both((ai, a) in bigint_strategy(), (bi, b) in bigint_strategy()) {
        let g = a.gcd(&b);
        if ai != 0 || bi != 0 {
            prop_assert!(!g.is_zero());
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(g.is_zero());
        }
    }

    #[test]
    fn rational_field_axioms(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000, cn in -1000i64..1000, cd in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let c = Rational::from_ratio(cn, cd);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_ordering_matches_f64(an in -10_000i64..10_000, ad in 1i64..10_000, bn in -10_000i64..10_000, bd in 1i64..10_000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a > b, fa > fb);
        }
    }

    #[test]
    fn rational_f64_roundtrip(v in -1.0e12f64..1.0e12) {
        let r = Rational::from_f64(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = Rational::from_ratio(an, ad);
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!((&ce - &fl) <= Rational::one());
    }
}
