//! Exact arbitrary-precision arithmetic for the spatial constraint database
//! workspace.
//!
//! The constraint layer (Fourier–Motzkin elimination, exact vertex
//! enumeration, exact simplex pivots) produces rational coefficients whose
//! numerators and denominators grow multiplicatively with every elimination
//! step, so 64-bit or even 128-bit machine integers overflow on realistic
//! inputs. This crate provides the two types every exact layer of the
//! workspace is built on:
//!
//! * [`BigInt`] — a sign–magnitude arbitrary-precision integer over `u64`
//!   limbs, and
//! * [`Rational`] — an always-normalized quotient of two [`BigInt`]s.
//!
//! Both types implement the usual operator traits by value and by reference,
//! total ordering, hashing, and conversion to `f64` (used when a symbolic
//! object is handed to the floating-point samplers).
//!
//! # Example
//!
//! ```
//! use cdb_num::{BigInt, Rational};
//!
//! let a = BigInt::from(1_000_000_007i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1000000014000000049");
//!
//! let half = Rational::new(BigInt::from(1), BigInt::from(2));
//! let third = Rational::from_ratio(1, 3);
//! assert_eq!((&half + &third).to_string(), "5/6");
//! assert!(half > third);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;

/// Greatest common divisor of two non-negative big integers.
///
/// Convenience re-export used by the constraint layer when normalizing the
/// coefficient row of a linear atom.
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    a.gcd(b)
}

/// Least common multiple of two non-negative big integers.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = a.gcd(b);
    let (q, _r) = a.div_rem(&g);
    &q * b
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn gcd_lcm_helpers() {
        let a = BigUint::from(12u64);
        let b = BigUint::from(18u64);
        assert_eq!(gcd(&a, &b), BigUint::from(6u64));
        assert_eq!(lcm(&a, &b), BigUint::from(36u64));
        assert_eq!(lcm(&BigUint::zero(), &b), BigUint::zero());
    }
}
