//! Unsigned arbitrary-precision integers.
//!
//! [`BigUint`] stores its magnitude as little-endian `u64` limbs with the
//! invariant that the most significant limb is non-zero (the number zero is
//! the empty limb vector). All arithmetic is implemented with plain
//! schoolbook algorithms plus a single-limb fast path for division; the
//! coefficient sizes produced by quantifier elimination on database-sized
//! constraint systems stay far below the sizes where asymptotically faster
//! algorithms pay off.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Shl, Shr, Sub};

/// An unsigned arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; empty means zero; last limb is never zero.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Returns the little-endian limbs of this value.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Returns this value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns this value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (round-to-nearest on the top bits, may be
    /// `f64::INFINITY` for huge values).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as f64) * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                // Use the top 128 bits and scale by the remaining bit count.
                let hi = self.limbs[n - 1] as f64;
                let mid = self.limbs[n - 2] as f64;
                let lo = self.limbs[n - 3] as f64;
                let base = hi * 2f64.powi(128) + mid * 2f64.powi(64) + lo;
                base * 2f64.powi(64 * (n as i32 - 3))
            }
        }
    }

    /// Compares two magnitudes.
    pub fn cmp_mag(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds two magnitudes.
    pub fn add_mag(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let a = long[i];
            let b = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtracts `other` from `self`; panics if `other > self`.
    pub fn sub_mag(&self, other: &Self) -> Self {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = if i < other.limbs.len() {
                other.limbs[i]
            } else {
                0
            };
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Schoolbook multiplication of two magnitudes.
    pub fn mul_mag(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies by a single `u64`.
    pub fn mul_u64(&self, rhs: u64) -> Self {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (rhs as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Divides by a single non-zero `u64`, returning `(quotient, remainder)`.
    pub fn div_rem_u64(&self, rhs: u64) -> (Self, u64) {
        assert!(rhs != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Left shift by `bits` bit positions.
    pub fn shl_bits(&self, bits: u64) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits` bit positions.
    pub fn shr_bits(&self, bits: u64) -> Self {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push(lo | hi);
        }
        BigUint::from_limbs(out)
    }

    /// Returns the bit at index `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Long division: returns `(quotient, remainder)`.
    ///
    /// Uses a single-limb fast path and otherwise a shift-and-subtract
    /// schoolbook loop over the bits of the dividend. This is O(n·bits) but
    /// completely branch-predictable and easy to verify; the sizes reached in
    /// this workspace keep it cheap.
    pub fn div_rem(&self, rhs: &Self) -> (Self, Self) {
        assert!(!rhs.is_zero(), "division by zero");
        if self.cmp_mag(rhs) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(rhs.limbs[0]);
            return (q, BigUint::from(r));
        }
        let shift = self.bits() - rhs.bits();
        let mut rem = self.clone();
        let mut quo = BigUint::zero();
        let mut den = rhs.shl_bits(shift);
        let mut bit = shift as i64;
        while bit >= 0 {
            if rem.cmp_mag(&den) != Ordering::Less {
                rem = rem.sub_mag(&den);
                quo = quo.add_mag(&BigUint::one().shl_bits(bit as u64));
            }
            den = den.shr_bits(1);
            bit -= 1;
        }
        (quo, rem)
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_q, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises this value to a small power.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_mag(&base);
            }
            base = base.mul_mag(&base);
            exp >>= 1;
        }
        acc
    }

    /// Parses a non-negative decimal string.
    pub fn from_decimal(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = BigUint::zero();
        for chunk in s.as_bytes().chunks(18) {
            let part: u64 = std::str::from_utf8(chunk).ok()?.parse().ok()?;
            let scale = 10u64.pow(chunk.len() as u32);
            acc = acc.mul_u64(scale).add_mag(&BigUint::from(part));
        }
        Some(acc)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 (largest power of ten in a u64) and emit
        // fixed-width groups.
        let mut groups = Vec::new();
        let mut cur = self.clone();
        let base = 10u64.pow(19);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(base);
            groups.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, g) in groups.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&g.to_string());
            } else {
                s.push_str(&format!("{g:019}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_mag(rhs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_mag(&rhs)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_mag(rhs);
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_mag(rhs)
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.sub_mag(&rhs)
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_mag(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_mag(&rhs)
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn addition_with_carry() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        let c = a.add_mag(&b);
        assert_eq!(c.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn subtraction_with_borrow() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::from(1u64);
        assert_eq!(a.sub_mag(&b).to_u128(), Some(u64::MAX as u128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::from(1u64).sub_mag(&BigUint::from(2u64));
    }

    #[test]
    fn multiplication_large() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(u64::MAX);
        let c = a.mul_mag(&b);
        assert_eq!(c.to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn division_roundtrip_small() {
        let a = BigUint::from(123_456_789_012_345_678u64);
        let b = BigUint::from(97u64);
        let (q, r) = a.div_rem(&b);
        assert_eq!(
            q.mul_mag(&b).add_mag(&r).to_u64(),
            Some(123_456_789_012_345_678u64)
        );
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn division_multi_limb() {
        let a = BigUint::from(u128::MAX)
            .mul_mag(&BigUint::from(u64::MAX))
            .add_mag(&BigUint::from(12345u64));
        let b = BigUint::from(u128::MAX / 7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul_mag(&b).add_mag(&r), a);
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn shifts() {
        let a = BigUint::from(0b1011u64);
        assert_eq!(a.shl_bits(65).shr_bits(65), a);
        assert_eq!(a.shl_bits(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(a.shr_bits(100), BigUint::zero());
    }

    #[test]
    fn gcd_matches_euclid() {
        let a = BigUint::from(2u64.pow(40) * 3 * 5 * 7);
        let b = BigUint::from(2u64.pow(20) * 3 * 11);
        assert_eq!(a.gcd(&b).to_u64(), Some(2u64.pow(20) * 3));
        assert_eq!(BigUint::zero().gcd(&b), b);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(3u64).pow(5).to_u64(), Some(243));
        assert_eq!(BigUint::from(2u64).pow(0).to_u64(), Some(1));
        let big = BigUint::from(10u64).pow(30);
        assert_eq!(big.to_string(), "1000000000000000000000000000000");
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "999999999999999999999999999999999999",
        ];
        for c in cases {
            let v = BigUint::from_decimal(c).unwrap();
            assert_eq!(v.to_string(), c);
        }
        assert!(BigUint::from_decimal("12a").is_none());
        assert!(BigUint::from_decimal("").is_none());
    }

    #[test]
    fn to_f64_accuracy() {
        let v = BigUint::from(1u128 << 100);
        let f = v.to_f64();
        assert!((f - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-12);
        assert_eq!(BigUint::zero().to_f64(), 0.0);
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(500));
    }

    #[test]
    fn cmp_ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(1u128 << 64);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
