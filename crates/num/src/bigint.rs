//! Signed arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

use crate::biguint::BigUint;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Flips the sign (zero stays zero).
    pub fn neg(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Multiplies two signs.
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// A signed arbitrary-precision integer in sign–magnitude representation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// The value `-1`.
    pub fn neg_one() -> Self {
        BigInt {
            sign: Sign::Negative,
            mag: BigUint::one(),
        }
    }

    /// Builds a value from a sign and magnitude (normalizing zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with zero sign");
            BigInt { sign, mag }
        }
    }

    /// The sign of this value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value) of this value.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if this value is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag.is_one()
    }

    /// Returns `true` if this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` if this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.mag.clone(),
        )
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            Sign::Zero => 0.0,
            Sign::Positive => m,
        }
    }

    /// Conversion to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if m <= i64::MAX as u128 {
                    Some(m as i64)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if m <= i64::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Conversion to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (m <= i128::MAX as u128).then_some(m as i128),
            Sign::Negative => {
                if m <= i128::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Euclidean-style `(quotient, remainder)` with truncation toward zero
    /// (matching Rust's `/` and `%` on machine integers).
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        assert!(!rhs.is_zero(), "division by zero");
        let (q_mag, r_mag) = self.mag.div_rem(&rhs.mag);
        let q_sign = if q_mag.is_zero() {
            Sign::Zero
        } else {
            self.sign.mul(rhs.sign)
        };
        let r_sign = if r_mag.is_zero() {
            Sign::Zero
        } else {
            self.sign
        };
        (
            BigInt::from_sign_mag(q_sign, q_mag),
            BigInt::from_sign_mag(r_sign, r_mag),
        )
    }

    /// Greatest common divisor, always non-negative.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let g = self.mag.gcd(&other.mag);
        BigInt::from_sign_mag(
            if g.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            g,
        )
    }

    /// Raises this value to a small power.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if mag.is_zero() {
            Sign::Zero
        } else if self.sign == Sign::Negative && exp % 2 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        if exp == 0 {
            return BigInt::one();
        }
        BigInt::from_sign_mag(sign, mag)
    }

    /// Parses a decimal string with an optional leading `-`.
    pub fn from_decimal(s: &str) -> Option<Self> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s),
        };
        let mag = BigUint::from_decimal(digits)?;
        if mag.is_zero() {
            Some(BigInt::zero())
        } else {
            Some(BigInt::from_sign_mag(sign, mag))
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u64)),
            Ordering::Less => BigInt::from_sign_mag(
                Sign::Negative,
                BigUint::from((v as i128).unsigned_abs() as u64),
            ),
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Positive, BigUint::from(v))
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u128)),
            Ordering::Less => {
                BigInt::from_sign_mag(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Positive, mag)
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.mag.cmp_mag(&self.mag),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.mag.cmp_mag(&other.mag),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag,
        }
    }
}

fn add_impl(a: &BigInt, b: &BigInt) -> BigInt {
    match (a.sign, b.sign) {
        (Sign::Zero, _) => b.clone(),
        (_, Sign::Zero) => a.clone(),
        (sa, sb) if sa == sb => BigInt::from_sign_mag(sa, a.mag.add_mag(&b.mag)),
        (sa, _) => match a.mag.cmp_mag(&b.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(sa, a.mag.sub_mag(&b.mag)),
            Ordering::Less => BigInt::from_sign_mag(sa.neg(), b.mag.sub_mag(&a.mag)),
        },
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        add_impl(self, rhs)
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        add_impl(&self, &rhs)
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = add_impl(self, rhs);
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        add_impl(self, &(-rhs))
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        add_impl(&self, &(-rhs))
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = add_impl(self, &(-rhs));
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = self.sign.mul(rhs.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        BigInt::from_sign_mag(sign, self.mag.mul_mag(&rhs.mag))
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Div for BigInt {
    type Output = BigInt;
    fn div(self, rhs: BigInt) -> BigInt {
        self.div_rem(&rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

impl Rem for BigInt {
    type Output = BigInt;
    fn rem(self, rhs: BigInt) -> BigInt {
        self.div_rem(&rhs).1
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn construction_and_sign() {
        assert!(b(0).is_zero());
        assert!(b(5).is_positive());
        assert!(b(-5).is_negative());
        assert_eq!(b(-5).abs(), b(5));
        assert_eq!(BigInt::neg_one(), b(-1));
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        for x in [-7i128, -3, 0, 4, 9] {
            for y in [-8i128, -2, 0, 5, 11] {
                assert_eq!(&b(x) + &b(y), b(x + y), "{x}+{y}");
                assert_eq!(&b(x) - &b(y), b(x - y), "{x}-{y}");
                assert_eq!(&b(x) * &b(y), b(x * y), "{x}*{y}");
            }
        }
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        for x in [-17i128, -5, 0, 5, 17] {
            for y in [-4i128, -3, 3, 4] {
                let (q, r) = b(x).div_rem(&b(y));
                assert_eq!(q, b(x / y), "{x}/{y}");
                assert_eq!(r, b(x % y), "{x}%{y}");
            }
        }
    }

    #[test]
    fn ordering_crosses_signs() {
        assert!(b(-10) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(10));
        let huge = BigInt::from_decimal("1234567890123456789012345678901234567890123").unwrap();
        assert!(b(i128::MAX) < huge);
        assert!(-&huge < b(i128::MIN));
        assert!(-&huge < b(0));
    }

    #[test]
    fn pow_and_gcd() {
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(0).pow(0), b(1));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(-7)), b(7));
    }

    #[test]
    fn conversions() {
        assert_eq!(b(-42).to_i64(), Some(-42));
        assert_eq!(b(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(b(-42).to_f64(), -42.0);
        assert_eq!(b(1234).to_i128(), Some(1234));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "-1", "-987654321098765432109876543210", "42"] {
            assert_eq!(BigInt::from_decimal(s).unwrap().to_string(), s);
        }
        assert_eq!(BigInt::from_decimal("-0").unwrap(), BigInt::zero());
        assert!(BigInt::from_decimal("--3").is_none());
    }
}
