//! Exact rational numbers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::bigint::{BigInt, Sign};

/// An exact rational number, always stored in lowest terms with a strictly
/// positive denominator.
#[derive(Clone, PartialEq, Eq)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Builds `num / den`, reducing to lowest terms. Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = &num / &g;
            den = &den / &g;
        }
        Rational { num, den }
    }

    /// Builds a rational from machine integers.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Builds a rational equal to an integer.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Builds the closest dyadic rational to an `f64` (exact conversion of
    /// the IEEE-754 value). Returns `None` for NaN or infinities.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1i64 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if exponent == 0 {
            (mantissa, -1074i64)
        } else {
            (mantissa | (1u64 << 52), exponent - 1075)
        };
        let mant = BigInt::from(mant) * BigInt::from(sign);
        let two = BigInt::from(2i64);
        if exp >= 0 {
            Some(Rational::new(mant * two.pow(exp as u32), BigInt::one()))
        } else {
            Some(Rational::new(mant, two.pow((-exp) as u32)))
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if this value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Lossy conversion to `f64`.
    ///
    /// Scales the operands so the division happens on quantities representable
    /// in double precision, keeping the relative error within a few ulps even
    /// for very large numerators and denominators.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.magnitude().bits() as i64;
        // Bring both operands below 2^900 to avoid infinities, preserving the ratio.
        let shift = (nb.max(db) - 900).max(0) as u64;
        let n = if shift > 0 {
            self.num.magnitude().shr_bits(shift)
        } else {
            self.num.magnitude().clone()
        };
        let d = if shift > 0 {
            self.den.magnitude().shr_bits(shift)
        } else {
            self.den.magnitude().clone()
        };
        let mut v = n.to_f64() / d.to_f64();
        if self.num.is_negative() {
            v = -v;
        }
        v
    }

    /// Integer floor of the value.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_zero() || !self.num.is_negative() {
            q
        } else {
            q - BigInt::one()
        }
    }

    /// Integer ceiling of the value.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_zero() || self.num.is_negative() {
            q
        } else {
            q + BigInt::one()
        }
    }

    /// Raises to a (possibly negative) integer power.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        if exp > 0 {
            Rational::new(self.num.pow(exp as u32), self.den.pow(exp as u32))
        } else {
            assert!(!self.is_zero(), "zero to a negative power");
            Rational::new(self.den.pow((-exp) as u32), self.num.pow((-exp) as u32))
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Parses `"a"`, `"-a"`, `"a/b"` or `"-a/b"` decimal forms.
    pub fn from_decimal(s: &str) -> Option<Self> {
        match s.split_once('/') {
            Some((n, d)) => {
                let num = BigInt::from_decimal(n.trim())?;
                let den = BigInt::from_decimal(d.trim())?;
                if den.is_zero() {
                    None
                } else {
                    Some(Rational::new(num, den))
                }
            }
            None => {
                // Also accept a decimal point: "1.25" -> 125/100.
                if let Some((int_part, frac_part)) = s.split_once('.') {
                    let digits = format!("{int_part}{frac_part}");
                    let num = BigInt::from_decimal(digits.trim())?;
                    let den = BigInt::from(10i64).pow(frac_part.len() as u32);
                    Some(Rational::new(num, den))
                } else {
                    Some(Rational {
                        num: BigInt::from_decimal(s.trim())?,
                        den: BigInt::one(),
                    })
                }
            }
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-5, 10).to_string(), "-1/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn field_operations_match_f64() {
        let cases = [(1, 2), (-3, 4), (7, 5), (-11, 13), (0, 1)];
        for (an, ad) in cases {
            for (bn, bd) in cases {
                let a = r(an, ad);
                let b = r(bn, bd);
                let fa = an as f64 / ad as f64;
                let fb = bn as f64 / bd as f64;
                assert!(((&a + &b).to_f64() - (fa + fb)).abs() < 1e-12);
                assert!(((&a - &b).to_f64() - (fa - fb)).abs() < 1e-12);
                assert!(((&a * &b).to_f64() - (fa * fb)).abs() < 1e-12);
                if !b.is_zero() {
                    assert!(((&a / &b).to_f64() - (fa / fb)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 3) > r(3, 5));
        assert_eq!(r(4, 6).cmp(&r(2, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn powers_and_recip() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Rational::one());
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    fn from_f64_exact_dyadics() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75).unwrap(), r(-3, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), r(3, 1));
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::zero());
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
        // Round trip: from_f64 followed by to_f64 is the identity on finite floats.
        for v in [0.1, -123.456, 1e-30, 1e30, std::f64::consts::PI] {
            assert_eq!(Rational::from_f64(v).unwrap().to_f64(), v);
        }
    }

    #[test]
    fn parse_forms() {
        assert_eq!(Rational::from_decimal("3/4").unwrap(), r(3, 4));
        assert_eq!(Rational::from_decimal("-3/4").unwrap(), r(-3, 4));
        assert_eq!(Rational::from_decimal("5").unwrap(), r(5, 1));
        assert_eq!(Rational::from_decimal("1.25").unwrap(), r(5, 4));
        assert_eq!(Rational::from_decimal("-0.5").unwrap(), r(-1, 2));
        assert!(Rational::from_decimal("1/0").is_none());
        assert!(Rational::from_decimal("abc").is_none());
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
        assert_eq!(r(-5, 2).abs(), r(5, 2));
    }

    #[test]
    fn large_coefficient_growth() {
        // Simulates Fourier-Motzkin style growth: repeated a = a*b + c.
        let mut a = r(3, 7);
        let b = r(-11, 13);
        let c = r(17, 19);
        for _ in 0..200 {
            a = &(&a * &b) + &c;
        }
        // The limit of the fixed point iteration is c / (1 - b) = (17/19)/(24/13);
        // |b| < 1 so after 200 iterations the distance is below 1e-14.
        let limit = &c / &(&Rational::one() - &b);
        assert!((a.to_f64() - limit.to_f64()).abs() < 1e-9);
    }
}
