//! Minimal HTTP/1.1 transport: request reading with size limits, and
//! response writing with keep-alive.
//!
//! The service speaks just enough HTTP/1.1 for JSON-over-POST clients
//! (curl, the bench harness's loopback transport, the integration tests):
//! `Content-Length` framed bodies, case-insensitive headers, persistent
//! connections by default, `Connection: close` honored. Chunked encoding,
//! pipelining tricks, and expect/continue are deliberately out of scope —
//! a request using them is rejected rather than misparsed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request line + headers block.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query strings are not used by this API and are kept
    /// attached — no route carries one).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request line — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// The socket's read timeout elapsed with no byte of a new request on
    /// the wire: an idle keep-alive tick. The caller decides whether to
    /// keep waiting (and can check a shutdown flag between ticks).
    Idle,
    /// The bytes on the wire are not an HTTP/1.1 request we accept.
    Malformed(String),
    /// The declared body exceeds the configured limit.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// The socket failed mid-read.
    Io(std::io::Error),
}

/// Reads one request from `reader`, enforcing `max_body` on the declared
/// `Content-Length`. `TooLarge` is returned *before* the body is consumed,
/// so the caller must close the connection after answering it.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let request_line = read_line(reader, true)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(reader, false)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block too large".into()));
        }
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Malformed(
            "chunked bodies are not supported".into(),
        ));
    }

    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if declared > max_body {
        return Err(ReadError::TooLarge {
            declared,
            limit: max_body,
        });
    }
    if declared > 0 {
        let mut body = vec![0u8; declared];
        reader.read_exact(&mut body).map_err(ReadError::Io)?;
        request.body = body;
    }
    Ok(request)
}

/// Reads one CRLF (or bare-LF) terminated line. `at_start` distinguishes a
/// clean keep-alive close (EOF before any byte) from a truncated request.
fn read_line(reader: &mut BufReader<TcpStream>, at_start: bool) -> Result<String, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) if at_start => Err(ReadError::Closed),
        Ok(0) => Err(ReadError::Malformed(
            "connection truncated mid-request".into(),
        )),
        Ok(n) if n > MAX_HEAD_BYTES => Err(ReadError::Malformed("line too long".into())),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            Err(ReadError::Malformed("request is not valid UTF-8".into()))
        }
        Err(e)
            if at_start
                && line.is_empty()
                && matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
        {
            // Read timeout with nothing consumed: the connection is merely
            // idle between requests, not broken.
            Err(ReadError::Idle)
        }
        Err(e) => Err(ReadError::Io(e)),
    }
}

/// The reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response; `close` adds `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{}\r\n",
        status,
        status_text(status),
        body.len(),
        if close { "connection: close\r\n" } else { "" },
    );
    // One write per response: split head/body writes interact with Nagle +
    // delayed ACK into ~40 ms stalls per request on loopback.
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body.as_bytes());
    stream.write_all(&wire)?;
    stream.flush()
}
