//! Server configuration: bind address, worker pool size, request limits,
//! and per-request [`QueryBudget`] defaults with per-relation overrides.

use std::collections::BTreeMap;
use std::time::Duration;

use cdb_sampler::QueryBudget;

/// Declarative budget limits, resolvable into a [`QueryBudget`].
///
/// Only the deterministic counters and the advisory deadline are
/// configurable here; cancellation tokens are a process-local handle and
/// never cross the config or wire boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Walk-step cap (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Attempt cap (`None` = unlimited).
    pub max_attempts: Option<u64>,
    /// Advisory wall-clock deadline in milliseconds (`None` = none).
    pub timeout_ms: Option<u64>,
}

impl BudgetSpec {
    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.max_attempts.is_none() && self.timeout_ms.is_none()
    }

    /// Builds the corresponding [`QueryBudget`].
    pub fn to_budget(&self) -> QueryBudget {
        let mut budget = QueryBudget::unlimited();
        if let Some(steps) = self.max_steps {
            budget = budget.with_max_steps(steps);
        }
        if let Some(attempts) = self.max_attempts {
            budget = budget.with_max_attempts(attempts);
        }
        if let Some(ms) = self.timeout_ms {
            budget = budget.with_timeout(Duration::from_millis(ms));
        }
        budget
    }
}

/// Everything the server needs to start.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` lets the OS pick a free port — the
    /// default, so tests and loopback harnesses never collide).
    pub bind: String,
    /// Worker threads (`0` = one per core).
    pub workers: usize,
    /// Prepared-relation store capacity for a server-owned database.
    pub store_capacity: Option<usize>,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum JSON nesting depth accepted from clients.
    pub max_json_depth: usize,
    /// Per-connection read timeout (idle keep-alive connections are
    /// dropped after this long without a request).
    pub read_timeout: Duration,
    /// Budget applied to requests that carry no explicit budget and match
    /// no per-relation override.
    pub default_budget: BudgetSpec,
    /// Per-relation budget overrides, keyed by relation name.
    pub budget_overrides: BTreeMap<String, BudgetSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 0,
            store_capacity: None,
            max_body_bytes: 1024 * 1024,
            max_json_depth: crate::json::DEFAULT_MAX_DEPTH,
            read_timeout: Duration::from_secs(30),
            default_budget: BudgetSpec::default(),
            budget_overrides: BTreeMap::new(),
        }
    }
}

impl ServerConfig {
    /// Resolves the budget for `relation`: request-level specs are handled
    /// by the handler layer; this picks the per-relation override or falls
    /// back to the default.
    pub fn budget_for(&self, relation: &str) -> &BudgetSpec {
        self.budget_overrides
            .get(relation)
            .unwrap_or(&self.default_budget)
    }

    /// Parses command-line arguments of the form `--key value`.
    ///
    /// Recognized keys: `--bind ADDR`, `--workers N`, `--store-capacity N`,
    /// `--max-body BYTES`, `--max-steps N`, `--max-attempts N`,
    /// `--timeout-ms N`, and `--relation-budget NAME:STEPS:ATTEMPTS` (a
    /// per-relation override; either field may be empty for "unlimited").
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut config = ServerConfig::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
            match flag.as_str() {
                "--bind" => config.bind = value("--bind")?,
                "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
                "--store-capacity" => {
                    config.store_capacity =
                        Some(parse_num(&value("--store-capacity")?, "--store-capacity")?);
                }
                "--max-body" => {
                    config.max_body_bytes = parse_num(&value("--max-body")?, "--max-body")?;
                }
                "--max-steps" => {
                    config.default_budget.max_steps =
                        Some(parse_num(&value("--max-steps")?, "--max-steps")?);
                }
                "--max-attempts" => {
                    config.default_budget.max_attempts =
                        Some(parse_num(&value("--max-attempts")?, "--max-attempts")?);
                }
                "--timeout-ms" => {
                    config.default_budget.timeout_ms =
                        Some(parse_num(&value("--timeout-ms")?, "--timeout-ms")?);
                }
                "--relation-budget" => {
                    let spec = value("--relation-budget")?;
                    let mut parts = spec.splitn(3, ':');
                    let name = parts
                        .next()
                        .filter(|s| !s.is_empty())
                        .ok_or_else(|| format!("--relation-budget {spec:?}: missing name"))?;
                    let steps = parts.next().unwrap_or("");
                    let attempts = parts.next().unwrap_or("");
                    let budget = BudgetSpec {
                        max_steps: parse_opt(steps, "--relation-budget steps")?,
                        max_attempts: parse_opt(attempts, "--relation-budget attempts")?,
                        timeout_ms: None,
                    };
                    config.budget_overrides.insert(name.to_string(), budget);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(config)
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: {text:?} is not a number"))
}

fn parse_opt(text: &str, flag: &str) -> Result<Option<u64>, String> {
    if text.is_empty() {
        Ok(None)
    } else {
        parse_num(text, flag).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_args() {
        let config = ServerConfig::from_args(
            [
                "--bind",
                "0.0.0.0:8080",
                "--workers",
                "4",
                "--max-steps",
                "1000",
                "--relation-budget",
                "disc:500:20",
                "--relation-budget",
                "cube::7",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(config.bind, "0.0.0.0:8080");
        assert_eq!(config.workers, 4);
        assert_eq!(config.default_budget.max_steps, Some(1000));
        assert_eq!(
            config.budget_for("disc"),
            &BudgetSpec {
                max_steps: Some(500),
                max_attempts: Some(20),
                timeout_ms: None
            }
        );
        assert_eq!(
            config.budget_for("cube"),
            &BudgetSpec {
                max_steps: None,
                max_attempts: Some(7),
                timeout_ms: None
            }
        );
        // Unlisted relations fall back to the default.
        assert_eq!(config.budget_for("other").max_steps, Some(1000));
    }

    #[test]
    fn rejects_bad_args() {
        for bad in [
            vec!["--workers"],
            vec!["--workers", "many"],
            vec!["--relation-budget", ":1:2"],
            vec!["--no-such-flag", "x"],
        ] {
            let args = bad.iter().map(|s| s.to_string());
            assert!(ServerConfig::from_args(args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn budget_spec_resolves() {
        assert!(BudgetSpec::default().is_unlimited());
        let spec = BudgetSpec {
            max_steps: Some(10),
            max_attempts: None,
            timeout_ms: Some(5),
        };
        assert!(!spec.is_unlimited());
        // Smoke: the built budget is usable (arming is covered by sampler
        // tests; here we only need construction not to panic).
        let _ = spec.to_budget();
    }
}
