//! Request routing and the per-endpoint handlers.
//!
//! Every handler is a thin pipeline over the unified
//! [`SpatialDatabase::query`] surface: decode the request
//! (`api_types`) → resolve the budget (request > per-relation override >
//! config default) → build a [`QuerySpec`] → run it → encode the outcome.
//! No handler touches a legacy `approx_*` entry point.
//!
//! Seeded execution: a request carrying `"seed"` draws from
//! `SeedSequence::new(seed).item_stream(stream)`; unseeded requests draw
//! from process entropy (time-mixed counter). Single-item requests
//! (sample, volume with `repeats = 1`, reconstruct) consume the stream's
//! RNG directly via [`SpatialDatabase::query_with_rng`] — the *same* draw
//! discipline as the in-process load harness, which is what makes HTTP
//! and in-process transports bitwise comparable. Multi-item requests hand
//! the stream to the seeded batch path, whose per-item streams make
//! results independent of the worker-thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

use cdb_core::{QuerySpec, SpatialDatabase};
use cdb_sampler::{QueryBudget, SeedSequence};

use crate::api_types::{
    decode_budget, reconstruct_response, sample_response, volume_response, InsertRelationRequest,
    ReconstructRequest, SampleRequest, SeedSpec, VolumeRequest,
};
use crate::config::ServerConfig;
use crate::error::AppError;
use crate::http::Request;
use crate::json::{parse, Json};
use crate::metrics::Metrics;

/// Shared server state: the database, config, and metrics.
pub struct AppState {
    /// The spatial database (writer: insert-relation; readers: queries).
    pub db: RwLock<SpatialDatabase>,
    /// Immutable configuration.
    pub config: ServerConfig,
    /// Per-endpoint request metrics.
    pub metrics: Metrics,
    /// Server start time (for `/v1/stats` uptime).
    pub started: Instant,
    /// Resolved worker count (reported in `/v1/stats`).
    pub workers: usize,
}

/// A routed response: which endpoint the request resolved to (an
/// [`crate::metrics::ENDPOINTS`] name, or `""` for unrouted requests) and
/// the outcome.
pub struct Routed {
    /// Metrics endpoint name (`""` when the request never matched a route).
    pub endpoint: &'static str,
    /// Response body or error.
    pub result: Result<Json, AppError>,
}

/// Routes and executes one request. Panics inside a handler are contained
/// here and answered as 500 `handler_panicked`, so one bad request never
/// takes down the worker's connection loop.
pub fn handle(state: &AppState, request: &Request) -> Routed {
    let (endpoint, run): (
        &'static str,
        fn(&AppState, &Request) -> Result<Json, AppError>,
    ) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => ("health", |_, _| {
            Ok(Json::Object(vec![("status".to_string(), Json::str("ok"))]))
        }),
        ("GET", "/v1/stats") => ("stats", stats),
        ("POST", "/v1/relations") => ("insert_relation", insert_relation),
        ("POST", "/v1/sample") => ("sample", |s, r| sample(s, r, false)),
        ("POST", "/v1/sample-batch") => ("sample_batch", |s, r| sample(s, r, true)),
        ("POST", "/v1/volume") => ("volume", volume),
        ("POST", "/v1/reconstruct") => ("reconstruct", reconstruct),
        (
            _,
            "/health" | "/v1/stats" | "/v1/relations" | "/v1/sample" | "/v1/sample-batch"
            | "/v1/volume" | "/v1/reconstruct",
        ) => {
            return Routed {
                endpoint: "",
                result: Err(AppError::method_not_allowed(&request.method, &request.path)),
            }
        }
        _ => {
            return Routed {
                endpoint: "",
                result: Err(AppError::route_not_found(&request.path)),
            }
        }
    };
    let result = catch_unwind(AssertUnwindSafe(|| run(state, request))).unwrap_or_else(|payload| {
        let payload = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        Err(AppError {
            status: 500,
            code: "handler_panicked",
            message: format!("handler panicked: {payload}"),
            cause: None,
            completed: None,
        })
    });
    Routed { endpoint, result }
}

/// Parses the request body as JSON (empty body → empty object, so
/// body-less POSTs fail with a field error rather than a parse error).
fn body_json(state: &AppState, request: &Request) -> Result<Json, AppError> {
    if request.body.is_empty() {
        return Ok(Json::Object(Vec::new()));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| AppError::bad_json("body is not valid UTF-8"))?;
    parse(text, state.config.max_json_depth).map_err(|e| AppError::bad_json(e.to_string()))
}

/// Process-entropy seed for unseeded requests: a time-mixed counter, so
/// the server needs no RNG dependency of its own. SplitMix64 finalizer
/// (same mixer the core uses for preparation seeds).
fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
    let mut z = nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The item stream a request draws from (see the module docs).
fn request_stream(seed: &SeedSpec) -> SeedSequence {
    SeedSequence::new(seed.seed.unwrap_or_else(entropy_seed)).item_stream(seed.stream)
}

/// Resolves the effective budget: request override, else per-relation
/// config override, else the config default.
fn resolve_budget(state: &AppState, relation: &str, body: &Json) -> Result<QueryBudget, AppError> {
    Ok(match decode_budget(body)? {
        Some(spec) => spec.to_budget(),
        None => state.config.budget_for(relation).to_budget(),
    })
}

fn read_db(state: &AppState) -> std::sync::RwLockReadGuard<'_, SpatialDatabase> {
    match state.db.read() {
        Ok(guard) => guard,
        // A poisoned lock means a panic escaped a handler while holding it;
        // the database has no invariant a contained panic can break (the
        // engine contains worker panics itself), so recover and serve.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn stats(state: &AppState, _request: &Request) -> Result<Json, AppError> {
    let store = read_db(state).store_stats();
    Ok(Json::Object(vec![
        ("endpoints".to_string(), state.metrics.snapshot_json()),
        (
            "store".to_string(),
            Json::Object(vec![
                ("hits".to_string(), Json::u64_str(store.hits)),
                ("misses".to_string(), Json::u64_str(store.misses)),
                ("evictions".to_string(), Json::u64_str(store.evictions)),
                ("len".to_string(), Json::count(store.len)),
                (
                    "shards_rebuilt".to_string(),
                    Json::u64_str(store.shards_rebuilt),
                ),
                (
                    "panics_recovered".to_string(),
                    Json::u64_str(store.panics_recovered),
                ),
            ]),
        ),
        ("workers".to_string(), Json::count(state.workers)),
        (
            "uptime_secs".to_string(),
            Json::num(state.started.elapsed().as_secs_f64()),
        ),
    ]))
}

fn insert_relation(state: &AppState, request: &Request) -> Result<Json, AppError> {
    let body = body_json(state, request)?;
    let req = InsertRelationRequest::decode(&body)?;
    let arity = req.relation.arity();
    let tuples = req.relation.tuples().len();
    {
        let mut db = match state.db.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        db.insert(req.name.clone(), req.relation);
    }
    Ok(Json::Object(vec![
        ("name".to_string(), Json::str(req.name)),
        ("arity".to_string(), Json::count(arity)),
        ("tuples".to_string(), Json::count(tuples)),
    ]))
}

fn sample(state: &AppState, request: &Request, batch: bool) -> Result<Json, AppError> {
    let body = body_json(state, request)?;
    let req = SampleRequest::decode(&body, batch)?;
    let budget = resolve_budget(state, &req.relation, &body)?;
    let db = read_db(state);
    let outcome = if batch {
        let mut spec = QuerySpec::sample(req.relation.as_str(), req.n)
            .with_budget(&budget)
            .with_seed_sequence(request_stream(&req.seed));
        if req.partial {
            spec = spec.partial();
        }
        db.query(&spec)?
    } else {
        let spec = QuerySpec::sample(req.relation.as_str(), 1).with_budget(&budget);
        let mut rng = request_stream(&req.seed).rng();
        db.query_with_rng(&spec, &mut rng)?
    };
    Ok(sample_response(&outcome, batch))
}

fn volume(state: &AppState, request: &Request) -> Result<Json, AppError> {
    let body = body_json(state, request)?;
    let req = VolumeRequest::decode(&body)?;
    let budget = resolve_budget(state, &req.relation, &body)?;
    let db = read_db(state);
    let outcome = if req.repeats == 1 {
        // Single estimate: consume the stream RNG directly — the same
        // draw discipline as the in-process load harness.
        let spec = QuerySpec::volume(req.relation.as_str(), 1).with_budget(&budget);
        let mut rng = request_stream(&req.seed).rng();
        db.query_with_rng(&spec, &mut rng)?
    } else {
        let spec = QuerySpec::volume(req.relation.as_str(), req.repeats)
            .with_budget(&budget)
            .with_seed_sequence(request_stream(&req.seed));
        db.query(&spec)?
    };
    Ok(volume_response(&outcome))
}

fn reconstruct(state: &AppState, request: &Request) -> Result<Json, AppError> {
    let body = body_json(state, request)?;
    let req = ReconstructRequest::decode(&body)?;
    let db = read_db(state);
    let spec = QuerySpec::reconstruct("query", req.query.clone(), req.output_arity);
    let mut rng = request_stream(&req.seed).rng();
    let outcome = db.query_with_rng(&spec, &mut rng)?;
    let relation = outcome
        .relation()
        .expect("a reconstruct query that returned Ok holds its relation");
    Ok(reconstruct_response(relation))
}
