//! Per-endpoint request counters and latency accumulators, surfaced at
//! `/v1/stats` alongside the engine's `store_stats()`.
//!
//! All counters are relaxed atomics: `/v1/stats` is an observability
//! endpoint, and a snapshot that is a few requests stale under concurrent
//! load is fine. Latency is accumulated in integer microseconds so the
//! counters stay lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::Json;

/// The instrumented endpoints, in stable display order.
pub const ENDPOINTS: [&str; 7] = [
    "health",
    "stats",
    "insert_relation",
    "sample",
    "sample_batch",
    "volume",
    "reconstruct",
];

#[derive(Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

/// Request metrics for every endpoint.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointCounters; ENDPOINTS.len()],
    /// Requests rejected before they resolved to an endpoint (unknown
    /// route, wrong method, oversized body, malformed head).
    rejected: AtomicU64,
}

impl Metrics {
    /// Records one request against `endpoint` (an [`ENDPOINTS`] name).
    /// Unknown names are counted as rejections, so a routing bug shows up
    /// in `/v1/stats` instead of disappearing.
    pub fn record(&self, endpoint: &str, started: Instant, ok: bool) {
        let Some(index) = ENDPOINTS.iter().position(|e| *e == endpoint) else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let c = &self.endpoints[index];
        c.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.total_micros.fetch_add(micros, Ordering::Relaxed);
        c.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Counts a request rejected before routing (bad head, oversized body,
    /// unknown route, wrong method).
    pub fn record_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The `"endpoints"` object for `/v1/stats`.
    pub fn snapshot_json(&self) -> Json {
        let mut fields = Vec::with_capacity(ENDPOINTS.len() + 1);
        for (name, c) in ENDPOINTS.iter().zip(&self.endpoints) {
            let requests = c.requests.load(Ordering::Relaxed);
            let total = c.total_micros.load(Ordering::Relaxed);
            let mean = if requests > 0 {
                total as f64 / requests as f64
            } else {
                0.0
            };
            fields.push((
                name.to_string(),
                Json::Object(vec![
                    ("requests".to_string(), Json::u64_str(requests)),
                    (
                        "errors".to_string(),
                        Json::u64_str(c.errors.load(Ordering::Relaxed)),
                    ),
                    ("total_micros".to_string(), Json::u64_str(total)),
                    (
                        "max_micros".to_string(),
                        Json::u64_str(c.max_micros.load(Ordering::Relaxed)),
                    ),
                    ("mean_micros".to_string(), Json::num(mean)),
                ]),
            ));
        }
        fields.push((
            "rejected".to_string(),
            Json::u64_str(self.rejected.load(Ordering::Relaxed)),
        ));
        Json::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let m = Metrics::default();
        let t = Instant::now();
        m.record("sample", t, true);
        m.record("sample", t, false);
        m.record("nonexistent", t, true);
        m.record_rejection();
        let snap = m.snapshot_json();
        let sample = snap.get("sample").unwrap();
        assert_eq!(sample.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(sample.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("rejected").unwrap().as_u64(), Some(2));
        assert_eq!(
            snap.get("health")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }
}
