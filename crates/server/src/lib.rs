//! `cdb-server`: an HTTP/1.1 + JSON query service over
//! [`SpatialDatabase`], built on `std::net` with a worker threadpool and a
//! hand-rolled JSON module — no framework dependencies, because the build
//! environment has none.
//!
//! # Shape
//!
//! * [`json`] — value tree, serializer, recursive-descent parser with
//!   depth limits (object fields keep insertion order, so responses are
//!   byte-reproducible).
//! * [`http`] — request reading (size-capped) and response writing.
//! * [`config`] — bind address, worker count, request limits, default and
//!   per-relation [`QueryBudget`](cdb_sampler::QueryBudget) specs.
//! * [`error`] — [`AppError`] and the
//!   `SpatialDbError → status` mapping table.
//! * [`api_types`] — request/response structs and their JSON codecs.
//! * [`handlers`] — routing + per-endpoint pipelines over the unified
//!   [`SpatialDatabase::query`] surface (never the legacy `approx_*`
//!   entry points).
//! * [`metrics`] — per-endpoint counters and latency accumulators.
//! * [`pool`] — the worker threadpool.
//! * [`client`] — a blocking loopback client for tests and the bench
//!   harness's HTTP transport.
//!
//! # Endpoints
//!
//! | method + path          | purpose                                   |
//! |------------------------|-------------------------------------------|
//! | `GET /health`          | liveness                                  |
//! | `GET /v1/stats`        | per-endpoint metrics + store stats        |
//! | `POST /v1/relations`   | insert a relation (box / boxes / formula) |
//! | `POST /v1/sample`      | one almost-uniform point                  |
//! | `POST /v1/sample-batch`| `n` points, optional partial mode         |
//! | `POST /v1/volume`      | `(ε, δ)` volume (median of repeats)       |
//! | `POST /v1/reconstruct` | approximate query reconstruction          |
//!
//! Seeded requests (`"seed"`, optional `"stream"`) are reproducible
//! byte-for-byte; see [`handlers`] for the stream discipline that makes
//! HTTP responses bitwise comparable with in-process results.

pub mod api_types;
pub mod client;
pub mod config;
pub mod error;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cdb_core::SpatialDatabase;

pub use config::{BudgetSpec, ServerConfig};
pub use error::AppError;

use handlers::AppState;
use http::ReadError;
use metrics::Metrics;
use pool::Pool;

/// A running server: owns the accept thread and the worker pool, and shuts
/// down gracefully on [`Server::shutdown`] or drop.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over a fresh [`SpatialDatabase`] (store capacity
    /// from the config, when set).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let db = match config.store_capacity {
            Some(capacity) => SpatialDatabase::new().with_store_capacity(capacity),
            None => SpatialDatabase::new(),
        };
        Server::start_with_db(config, db)
    }

    /// Starts a server over an existing database (the test and loopback
    /// entry point: insert relations first, then serve them).
    pub fn start_with_db(config: ServerConfig, db: SpatialDatabase) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let pool = Pool::new(config.workers);
        let state = Arc::new(AppState {
            db: std::sync::RwLock::new(db),
            workers: pool.size(),
            config,
            metrics: Metrics::default(),
            started: Instant::now(),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("cdb-server-accept".to_string())
            .spawn(move || {
                // `pool` lives (and joins) here: when the accept loop
                // breaks, dropping the pool drains in-flight connections.
                let pool = pool;
                for connection in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = connection else { continue };
                    let state = Arc::clone(&accept_state);
                    let stop = Arc::clone(&accept_stop);
                    pool.submit(move || serve_connection(&state, &stop, stream));
                }
            })?;

        Ok(Server {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with the default `127.0.0.1:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (tests inspect metrics through `/v1/stats` instead;
    /// this is for embedding).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops accepting, drains in-flight connections, and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `incoming()`; poke it awake so it
        // observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's keep-alive session: read → route → respond, until the
/// client closes, idles past the read timeout, the server shuts down, or
/// the client sends something fatal.
///
/// The socket read timeout is a short poll tick, not the configured idle
/// timeout: between requests the worker wakes every tick to check the
/// shutdown flag, so a parked keep-alive connection never blocks a
/// graceful shutdown for the full idle window.
fn serve_connection(state: &Arc<AppState>, stop: &AtomicBool, stream: TcpStream) {
    let poll = std::time::Duration::from_millis(200).min(state.config.read_timeout);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_write_timeout(Some(state.config.read_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut idle = std::time::Duration::ZERO;

    loop {
        let request = match http::read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => {
                idle = std::time::Duration::ZERO;
                request
            }
            Err(ReadError::Idle) => {
                idle += poll;
                if stop.load(Ordering::SeqCst) || idle >= state.config.read_timeout {
                    return;
                }
                continue;
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::TooLarge { declared, limit }) => {
                state.metrics.record_rejection();
                let error = AppError::body_too_large(declared, limit);
                // The unread body still sits on the wire: answer and close.
                let _ = http::write_response(
                    &mut write_half,
                    error.status,
                    &error.to_json().render(),
                    true,
                );
                return;
            }
            Err(ReadError::Malformed(message)) => {
                state.metrics.record_rejection();
                let error = AppError::bad_json(format!("malformed request: {message}"));
                let _ = http::write_response(&mut write_half, 400, &error.to_json().render(), true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };

        let close = request.wants_close();
        let started = Instant::now();
        let routed = handlers::handle(state, &request);
        let (status, body) = match &routed.result {
            Ok(json) => (200, json.render()),
            Err(error) => (error.status, error.to_json().render()),
        };
        if routed.endpoint.is_empty() {
            state.metrics.record_rejection();
        } else {
            state
                .metrics
                .record(routed.endpoint, started, routed.result.is_ok());
        }
        if http::write_response(&mut write_half, status, &body, close).is_err() || close {
            return;
        }
    }
}
