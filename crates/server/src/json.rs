//! Hand-rolled JSON: a value tree, a serializer, and a recursive-descent
//! parser with depth and size limits.
//!
//! The build environment has no crates.io access, so `serde_json` is not an
//! option; the service needs only a small, predictable subset of JSON:
//!
//! * Objects preserve **insertion order** (they are association vectors, not
//!   hash maps), so a serialized response is byte-for-byte reproducible —
//!   the property the seeded-determinism tests pin.
//! * Numbers are `f64`, serialized through Rust's shortest-roundtrip
//!   `{:?}` formatting, so a finite double survives a
//!   serialize → parse → serialize cycle bit-for-bit. Values that must
//!   carry all 64 bits (seeds, digests) travel as decimal **strings**;
//!   [`Json::as_u64`] accepts both forms.
//! * The parser enforces a maximum nesting depth and is driven by an input
//!   that the HTTP layer has already size-capped, so malicious bodies are
//!   rejected before they can exhaust the stack or the heap.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`; non-finite values serialize as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Builds a number value.
    pub fn num(n: f64) -> Json {
        Json::Number(n)
    }

    /// Builds a number from an integer count (exact below 2^53).
    pub fn count(n: usize) -> Json {
        Json::Number(n as f64)
    }

    /// Renders a `u64` losslessly as a decimal string (JSON numbers are
    /// doubles, which cannot carry 64-bit seeds or digests exactly).
    pub fn u64_str(n: u64) -> Json {
        Json::String(n.to_string())
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`: either a non-negative integral number within
    /// the exact-double range, or a decimal string (the lossless form used
    /// for seeds and digests).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => {
                if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 {
                    Some(*n as u64)
                } else {
                    None
                }
            }
            Json::String(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's field list.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes into a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits; it always contains a '.' or an
                    // 'e', both valid JSON.
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Default nesting-depth cap for [`parse`].
pub const DEFAULT_MAX_DEPTH: usize = 32;

/// Parses a complete JSON document, rejecting nesting deeper than
/// `max_depth` and trailing garbage. The caller is responsible for capping
/// the input *size* (the HTTP layer enforces the body limit before the text
/// reaches this function).
pub fn parse(input: &str, max_depth: usize) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        max_depth,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.max_depth {
            return Err(self.err(format!("nesting deeper than {} levels", self.max_depth)));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            // Surrogates are rejected rather than paired: the
                            // service's own payloads never emit them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Advance over one UTF-8 scalar (input came from a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let text = r#"{"a":[1.5,true,null,"x\ny"],"b":{"c":-2.25e3},"d":""}"#;
        let v = parse(text, DEFAULT_MAX_DEPTH).unwrap();
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_f64(),
            Some(-2250.0)
        );
        let again = parse(&v.render(), DEFAULT_MAX_DEPTH).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn f64_roundtrip_is_bitwise() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0, 123456.789] {
            let rendered = Json::num(x).render();
            let back = parse(&rendered, 4).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn u64_travels_as_string() {
        let n = u64::MAX - 7;
        let v = parse(&Json::u64_str(n).render(), 4).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        // Small integers are accepted as plain numbers too.
        assert_eq!(parse("42", 4).unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5", 4).unwrap().as_u64(), None);
        assert_eq!(parse("-1", 4).unwrap().as_u64(), None);
    }

    #[test]
    fn depth_limit_trips() {
        let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
        assert!(parse(&deep, 39).is_err());
        assert!(parse(&deep, 64).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\\q\"",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad, DEFAULT_MAX_DEPTH).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn object_preserves_order_and_escapes() {
        let v = Json::Object(vec![
            ("z".into(), Json::count(1)),
            ("a\"b".into(), Json::str("line\nbreak")),
        ]);
        assert_eq!(v.render(), "{\"z\":1.0,\"a\\\"b\":\"line\\nbreak\"}");
        assert_eq!(parse(&v.render(), 4).unwrap(), v);
    }
}
