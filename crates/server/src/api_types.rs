//! Request and response types for every endpoint, plus their JSON
//! decoding/encoding.
//!
//! Decoding is strict about *types* (a string where a number is expected is
//! a 400) and lenient about *extras* (unknown fields are ignored, so
//! clients can be upgraded before the server). Every decoder returns
//! [`AppError`] directly so handlers stay one-expression pipelines.
//!
//! ## Determinism on the wire
//!
//! Requests carry an optional `"seed"` (decimal string or integer) plus an
//! optional `"stream"` index. The handler funds its generator from
//! `SeedSequence::new(seed).item_stream(stream)` — exactly the convention
//! the in-process load harness uses for request `i` — so an HTTP client
//! that sends `seed = spec.seed, stream = i` reproduces the in-process
//! harness byte-for-byte, and two identical seeded requests always return
//! identical bodies.

use cdb_constraint::{parse_formula, Formula, GeneralizedRelation};
use cdb_core::QueryOutcome;

use crate::config::BudgetSpec;
use crate::error::AppError;
use crate::json::Json;

/// Shared seeded-execution fields (`seed`, `stream`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSpec {
    /// Root seed; `None` means the server draws from entropy.
    pub seed: Option<u64>,
    /// Item-stream index under the root (default `0`).
    pub stream: usize,
}

/// A request-level budget override (same shape as config budgets).
pub fn decode_budget(body: &Json) -> Result<Option<BudgetSpec>, AppError> {
    let Some(raw) = body.get("budget") else {
        return Ok(None);
    };
    if raw.as_object().is_none() {
        return Err(AppError::invalid_params("\"budget\" must be an object"));
    }
    let mut spec = BudgetSpec::default();
    spec.max_steps = opt_u64(raw, "max_steps")?;
    spec.max_attempts = opt_u64(raw, "max_attempts")?;
    spec.timeout_ms = opt_u64(raw, "timeout_ms")?;
    Ok(Some(spec))
}

/// Decodes the shared `seed`/`stream` fields.
pub fn decode_seed(body: &Json) -> Result<SeedSpec, AppError> {
    let stream = match body.get("stream") {
        None | Some(Json::Null) => 0,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| AppError::invalid_params("\"stream\" must be a non-negative integer"))?,
    };
    Ok(SeedSpec {
        seed: opt_u64(body, "seed")?,
        stream,
    })
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, AppError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            AppError::invalid_params(format!(
                "\"{key}\" must be a non-negative integer (or a decimal string)"
            ))
        }),
    }
}

fn require_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, AppError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| AppError::invalid_params(format!("\"{key}\" must be a string")))
}

fn require_usize(body: &Json, key: &str) -> Result<usize, AppError> {
    body.get(key).and_then(Json::as_usize).ok_or_else(|| {
        AppError::invalid_params(format!("\"{key}\" must be a non-negative integer"))
    })
}

fn f64_array(value: &Json, what: &str) -> Result<Vec<f64>, AppError> {
    value
        .as_array()
        .ok_or_else(|| AppError::invalid_params(format!("{what} must be an array of numbers")))?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| {
                AppError::invalid_params(format!("{what} must contain only numbers"))
            })
        })
        .collect()
}

/// `POST /v1/relations`: insert (or replace) a stored relation.
#[derive(Debug)]
pub struct InsertRelationRequest {
    /// Name to store the relation under.
    pub name: String,
    /// The relation body.
    pub relation: GeneralizedRelation,
    /// Number of box tuples the body was built from (`None` for formulas —
    /// the constraint compiler decides the tuple decomposition).
    pub boxes: Option<usize>,
}

impl InsertRelationRequest {
    /// Decodes one of the three accepted shapes:
    ///
    /// * `{"name", "box": {"lo": [...], "hi": [...]}}`
    /// * `{"name", "boxes": [{"lo", "hi"}, ...]}` (union of boxes)
    /// * `{"name", "formula": "...", "arity": n}` (constraint text,
    ///   compiled by `GeneralizedRelation::from_formula`)
    pub fn decode(body: &Json) -> Result<Self, AppError> {
        let name = require_str(body, "name")?.to_string();
        if name.is_empty() {
            return Err(AppError::invalid_params("\"name\" must be non-empty"));
        }
        let shapes = [
            body.get("box").is_some(),
            body.get("boxes").is_some(),
            body.get("formula").is_some(),
        ];
        if shapes.iter().filter(|s| **s).count() != 1 {
            return Err(AppError::invalid_params(
                "provide exactly one of \"box\", \"boxes\" or \"formula\"",
            ));
        }
        if let Some(raw) = body.get("box") {
            let relation = decode_box(raw)?;
            return Ok(InsertRelationRequest {
                name,
                relation,
                boxes: Some(1),
            });
        }
        if let Some(raw) = body.get("boxes") {
            let items = raw
                .as_array()
                .ok_or_else(|| AppError::invalid_params("\"boxes\" must be an array"))?;
            if items.is_empty() {
                return Err(AppError::invalid_params("\"boxes\" must be non-empty"));
            }
            let mut relation: Option<GeneralizedRelation> = None;
            for item in items {
                let next = decode_box(item)?;
                relation = Some(match relation {
                    None => next,
                    Some(r) => {
                        if r.arity() != next.arity() {
                            return Err(AppError::invalid_params("all boxes must share one arity"));
                        }
                        r.union(&next)
                    }
                });
            }
            let relation = relation.expect("non-empty boxes checked above");
            return Ok(InsertRelationRequest {
                name,
                relation,
                boxes: Some(items.len()),
            });
        }
        let text = require_str(body, "formula")?;
        let arity = require_usize(body, "arity")?;
        if arity == 0 {
            return Err(AppError::invalid_params("\"arity\" must be positive"));
        }
        let formula = parse_formula(text, arity)
            .map_err(|e| AppError::invalid_params(format!("formula does not parse: {e}")))?;
        let relation = GeneralizedRelation::from_formula(arity, &formula)
            .map_err(|e| AppError::invalid_params(format!("formula does not compile: {e}")))?;
        Ok(InsertRelationRequest {
            name,
            relation,
            boxes: None,
        })
    }
}

fn decode_box(raw: &Json) -> Result<GeneralizedRelation, AppError> {
    let lo = f64_array(
        raw.get("lo")
            .ok_or_else(|| AppError::invalid_params("box needs \"lo\""))?,
        "\"lo\"",
    )?;
    let hi = f64_array(
        raw.get("hi")
            .ok_or_else(|| AppError::invalid_params("box needs \"hi\""))?,
        "\"hi\"",
    )?;
    if lo.is_empty() || lo.len() != hi.len() {
        return Err(AppError::invalid_params(
            "\"lo\" and \"hi\" must be non-empty and the same length",
        ));
    }
    if lo.iter().zip(&hi).any(|(l, h)| !(l < h)) {
        return Err(AppError::invalid_params(
            "each box side needs lo < hi (finite)",
        ));
    }
    Ok(GeneralizedRelation::from_box_f64(&lo, &hi))
}

/// `POST /v1/sample` / `POST /v1/sample-batch`.
#[derive(Debug)]
pub struct SampleRequest {
    /// Target relation.
    pub relation: String,
    /// Number of points (`1` for the single-sample endpoint).
    pub n: usize,
    /// Seeded-execution fields.
    pub seed: SeedSpec,
    /// Request-level budget override.
    pub budget: Option<BudgetSpec>,
    /// Return completed draws alongside the first failure instead of
    /// failing the whole request (batch endpoint only).
    pub partial: bool,
}

impl SampleRequest {
    /// Decodes a sample request; `batch` enables `"n"` and `"partial"`.
    pub fn decode(body: &Json, batch: bool) -> Result<Self, AppError> {
        let relation = require_str(body, "relation")?.to_string();
        let n = if batch { require_usize(body, "n")? } else { 1 };
        if batch && (n == 0 || n > 100_000) {
            return Err(AppError::invalid_params("\"n\" must be in 1..=100000"));
        }
        let partial = match body.get("partial") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| AppError::invalid_params("\"partial\" must be a boolean"))?,
        };
        Ok(SampleRequest {
            relation,
            n,
            seed: decode_seed(body)?,
            budget: decode_budget(body)?,
            partial: batch && partial,
        })
    }
}

/// `POST /v1/volume`.
#[derive(Debug)]
pub struct VolumeRequest {
    /// Target relation.
    pub relation: String,
    /// Independent repeats whose median is returned (default `1`).
    pub repeats: usize,
    /// Seeded-execution fields.
    pub seed: SeedSpec,
    /// Request-level budget override.
    pub budget: Option<BudgetSpec>,
}

impl VolumeRequest {
    /// Decodes a volume request.
    pub fn decode(body: &Json) -> Result<Self, AppError> {
        let repeats = match body.get("repeats") {
            None => 1,
            Some(_) => require_usize(body, "repeats")?,
        };
        if repeats == 0 || repeats > 10_000 {
            return Err(AppError::invalid_params("\"repeats\" must be in 1..=10000"));
        }
        Ok(VolumeRequest {
            relation: require_str(body, "relation")?.to_string(),
            repeats,
            seed: decode_seed(body)?,
            budget: decode_budget(body)?,
        })
    }
}

/// `POST /v1/reconstruct`.
#[derive(Debug)]
pub struct ReconstructRequest {
    /// The query formula.
    pub query: Formula,
    /// Output arity of the reconstructed relation.
    pub output_arity: usize,
    /// Seeded-execution fields.
    pub seed: SeedSpec,
}

impl ReconstructRequest {
    /// Decodes `{"query": "...", "arity": n, "output_arity": m, ...}`;
    /// `output_arity` defaults to `arity`.
    pub fn decode(body: &Json) -> Result<Self, AppError> {
        let text = require_str(body, "query")?;
        let arity = require_usize(body, "arity")?;
        if arity == 0 {
            return Err(AppError::invalid_params("\"arity\" must be positive"));
        }
        let output_arity = match body.get("output_arity") {
            None => arity,
            Some(_) => require_usize(body, "output_arity")?,
        };
        if output_arity == 0 || output_arity > arity {
            return Err(AppError::invalid_params(
                "\"output_arity\" must be in 1..=arity",
            ));
        }
        let query = parse_formula(text, arity)
            .map_err(|e| AppError::invalid_params(format!("query does not parse: {e}")))?;
        Ok(ReconstructRequest {
            query,
            output_arity,
            seed: decode_seed(body)?,
        })
    }
}

/// Serializes a point list (`null` marks failed draws in partial mode).
fn points_json(points: &[Option<Vec<f64>>]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| match p {
                None => Json::Null,
                Some(coords) => Json::Array(coords.iter().map(|x| Json::num(*x)).collect()),
            })
            .collect(),
    )
}

/// Builds the sample / sample-batch response body.
pub fn sample_response(outcome: &QueryOutcome, batch: bool) -> Json {
    let points = outcome.points();
    let mut fields = Vec::new();
    if batch {
        fields.push(("points".to_string(), points_json(points)));
        fields.push(("completed".to_string(), Json::count(outcome.completed)));
        if let Some(err) = &outcome.error {
            // A partial batch answers 200 with its completed draws; the
            // first failure rides along inline instead of failing the
            // request, under the same code it would carry as a top-level
            // error (so clients reuse one error decoder).
            fields.push((
                "error".to_string(),
                Json::Object(vec![
                    ("code".to_string(), Json::str("partial_failure")),
                    ("message".to_string(), Json::str(err.to_string())),
                ]),
            ));
        }
    } else {
        let point = outcome
            .point()
            .expect("fail-fast single sample holds a point");
        fields.push((
            "point".to_string(),
            Json::Array(point.iter().map(|x| Json::num(*x)).collect()),
        ));
    }
    Json::Object(fields)
}

/// Builds the volume response body.
pub fn volume_response(outcome: &QueryOutcome) -> Json {
    let volume = outcome
        .volume()
        .expect("fail-fast volume query holds an estimate");
    Json::Object(vec![
        ("volume".to_string(), Json::num(volume)),
        ("repeats".to_string(), Json::count(outcome.completed)),
    ])
}

/// FNV-1a over the relation's debug form: the digest the load harness and
/// the determinism suites use to fingerprint reconstruction results.
pub fn relation_digest(relation: &GeneralizedRelation) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in format!("{relation:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Builds the reconstruction response body: tuple count, arity, and the
/// FNV digest (as a decimal string — it uses all 64 bits).
pub fn reconstruct_response(relation: &GeneralizedRelation) -> Json {
    Json::Object(vec![
        ("arity".to_string(), Json::count(relation.arity())),
        ("tuples".to_string(), Json::count(relation.tuples().len())),
        (
            "digest".to_string(),
            Json::u64_str(relation_digest(relation)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn body(text: &str) -> Json {
        parse(text, 32).unwrap()
    }

    #[test]
    fn decodes_insert_shapes() {
        let req =
            InsertRelationRequest::decode(&body(r#"{"name":"sq","box":{"lo":[0,0],"hi":[1,1]}}"#))
                .unwrap();
        assert_eq!(req.name, "sq");
        assert_eq!(req.relation.arity(), 2);
        assert_eq!(req.boxes, Some(1));

        let req = InsertRelationRequest::decode(&body(
            r#"{"name":"u","boxes":[{"lo":[0],"hi":[1]},{"lo":[2],"hi":[3]}]}"#,
        ))
        .unwrap();
        assert_eq!(req.relation.tuples().len(), 2);
        assert_eq!(req.boxes, Some(2));

        let req = InsertRelationRequest::decode(&body(
            r#"{"name":"f","formula":"x0 >= 0 and x0 <= 1 and x1 >= 0 and x1 <= 1","arity":2}"#,
        ))
        .unwrap();
        assert_eq!(req.relation.arity(), 2);
        assert_eq!(req.boxes, None);
    }

    #[test]
    fn rejects_bad_inserts() {
        for bad in [
            r#"{"box":{"lo":[0],"hi":[1]}}"#,
            r#"{"name":"","box":{"lo":[0],"hi":[1]}}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"x","box":{"lo":[0],"hi":[1]},"formula":"x0 >= 0","arity":1}"#,
            r#"{"name":"x","box":{"lo":[1],"hi":[0]}}"#,
            r#"{"name":"x","box":{"lo":[0,0],"hi":[1]}}"#,
            r#"{"name":"x","boxes":[]}"#,
            r#"{"name":"x","boxes":[{"lo":[0],"hi":[1]},{"lo":[0,0],"hi":[1,1]}]}"#,
            r#"{"name":"x","formula":"x0 >=","arity":1}"#,
            r#"{"name":"x","formula":"x0 >= 0","arity":0}"#,
        ] {
            let result = InsertRelationRequest::decode(&body(bad));
            assert!(result.is_err(), "{bad}");
            assert_eq!(result.unwrap_err().status, 400, "{bad}");
        }
    }

    #[test]
    fn decodes_sample_and_seed() {
        let req = SampleRequest::decode(
            &body(r#"{"relation":"sq","n":5,"seed":"18446744073709551615","stream":3,"partial":true}"#),
            true,
        )
        .unwrap();
        assert_eq!(req.n, 5);
        assert_eq!(req.seed.seed, Some(u64::MAX));
        assert_eq!(req.seed.stream, 3);
        assert!(req.partial);

        // Single-sample: n and partial ignored.
        let req =
            SampleRequest::decode(&body(r#"{"relation":"sq","partial":true}"#), false).unwrap();
        assert_eq!(req.n, 1);
        assert!(!req.partial);

        assert!(SampleRequest::decode(&body(r#"{"relation":"sq","n":0}"#), true).is_err());
        assert!(SampleRequest::decode(&body(r#"{"relation":1}"#), false).is_err());
        assert!(SampleRequest::decode(&body(r#"{"relation":"sq","seed":-3}"#), false).is_err());
    }

    #[test]
    fn decodes_budgets() {
        let spec = decode_budget(&body(r#"{"budget":{"max_steps":100,"timeout_ms":5}}"#))
            .unwrap()
            .unwrap();
        assert_eq!(spec.max_steps, Some(100));
        assert_eq!(spec.max_attempts, None);
        assert_eq!(spec.timeout_ms, Some(5));
        assert!(decode_budget(&body(r#"{"budget":7}"#)).is_err());
        assert!(decode_budget(&body(r#"{"budget":{"max_steps":"lots"}}"#)).is_err());
        assert!(decode_budget(&body(r#"{}"#)).unwrap().is_none());
    }

    #[test]
    fn decodes_reconstruct() {
        let req = ReconstructRequest::decode(&body(
            r#"{"query":"x0 >= 0 and x0 <= 1","arity":1,"seed":7}"#,
        ))
        .unwrap();
        assert_eq!(req.output_arity, 1);
        assert_eq!(req.seed.seed, Some(7));
        assert!(ReconstructRequest::decode(&body(
            r#"{"query":"x0 >= 0","arity":1,"output_arity":2}"#
        ))
        .is_err());
    }

    #[test]
    fn digest_is_stable() {
        let r = GeneralizedRelation::from_box_f64(&[0.0], &[1.0]);
        assert_eq!(relation_digest(&r), relation_digest(&r.clone()));
        let response = reconstruct_response(&r);
        assert_eq!(
            response.get("digest").unwrap().as_u64(),
            Some(relation_digest(&r))
        );
    }
}
