//! `cdb_server`: run the HTTP/JSON query service from the command line.
//!
//! ```text
//! cdb_server [--bind ADDR] [--workers N] [--store-capacity N]
//!            [--max-body BYTES] [--max-steps N] [--max-attempts N]
//!            [--timeout-ms N] [--relation-budget NAME:STEPS:ATTEMPTS]
//!            [--demo]
//! ```
//!
//! `--demo` preloads three relations (`square`, `diamond`, `union`) so the
//! README quickstart works against an empty store. The process serves
//! until stdin reaches EOF (or the terminal sends `^D`), then shuts down
//! gracefully — a shape that composes with shell pipelines and CI.

use std::io::Read;

use cdb_constraint::{parse_formula, GeneralizedRelation};
use cdb_core::SpatialDatabase;
use cdb_server::{Server, ServerConfig};

fn demo_database() -> SpatialDatabase {
    let mut db = SpatialDatabase::new();
    db.insert(
        "square",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
    );
    let diamond = parse_formula(
        "x0 + x1 <= 1 and x0 - x1 <= 1 and -1*x0 + x1 <= 1 and -1*x0 - x1 <= 1",
        2,
    )
    .expect("demo diamond formula parses");
    db.insert(
        "diamond",
        GeneralizedRelation::from_formula(2, &diamond).expect("demo diamond compiles"),
    );
    db.insert(
        "union",
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
            .union(&GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 2.0])),
    );
    db
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let demo = args.iter().any(|a| a == "--demo");
    args.retain(|a| a != "--demo");

    let config = match ServerConfig::from_args(args.into_iter()) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("cdb_server: {message}");
            std::process::exit(2);
        }
    };

    let result = if demo {
        Server::start_with_db(config, demo_database())
    } else {
        Server::start(config)
    };
    let mut server = match result {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cdb_server: failed to start: {e}");
            std::process::exit(1);
        }
    };

    println!("cdb_server listening on http://{}", server.addr());
    if demo {
        println!("demo relations loaded: square, diamond, union");
    }
    println!("serving until stdin closes (^D to stop)");

    // Block until stdin EOF, then shut down gracefully.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
    println!("cdb_server: shut down cleanly");
}
