//! A fixed-size worker threadpool over an `mpsc` channel.
//!
//! Accepted connections are jobs; each worker owns one connection at a
//! time (keep-alive sessions pin a worker until the client closes or
//! idles out, which is the right trade for a loopback/bench service).
//! Dropping the [`Pool`] closes the channel; workers finish their current
//! job and exit, so shutdown is graceful by construction.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool.
pub struct Pool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `size` workers (`0` = one per core).
    pub fn new(size: usize) -> Self {
        let size = if size == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            size
        };
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("cdb-server-worker-{i}"))
                    .spawn(move || loop {
                        // A worker panic poisons nothing: the job itself
                        // catches panics (see handlers); if one escapes
                        // anyway, only this worker dies and the lock is
                        // recovered by the next receiver.
                        let job = {
                            let guard = match receiver.lock() {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: shutdown
                        }
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; returns `false` if the pool is shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(sender) => sender.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Closes the queue and joins every worker.
    pub fn join(&mut self) {
        self.sender.take(); // close the channel: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = Pool::new(3);
        assert_eq!(pool.size(), 3);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        // After join, submissions are refused rather than lost silently.
        assert!(!pool.submit(|| {}));
    }

    #[test]
    fn survives_a_panicking_job() {
        let mut pool = Pool::new(1);
        pool.submit(|| {
            // Silence the default panic hook noise for this expected panic.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let _ = std::panic::catch_unwind(|| panic!("contained"));
            std::panic::set_hook(prev);
        });
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.store(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
