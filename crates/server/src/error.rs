//! `AppError`: the service-level error type and its mapping from the
//! engine's [`SpatialDbError`] taxonomy to HTTP status codes.
//!
//! The mapping (also documented in `ARCHITECTURE.md`):
//!
//! | engine error                         | status | code                |
//! |--------------------------------------|--------|---------------------|
//! | `UnknownRelation`                    | 404    | `unknown_relation`  |
//! | `InvalidParams`                      | 400    | `invalid_params`    |
//! | `NotObservable{InvalidParams}`       | 400    | `invalid_params`    |
//! | `NotObservable{..}` (structural)     | 422    | `not_observable`    |
//! | `BudgetExhausted`                    | 429    | `budget_exhausted`  |
//! | `GenerationFailed`                   | 503    | `generation_failed` |
//! | `WorkerPanicked`                     | 500    | `worker_panicked`   |
//! | `Reconstruction` / `Symbolic`        | 422    | `not_estimable`     |
//!
//! Transport-level failures (malformed JSON → 400 `bad_json`, oversized
//! body → 413 `body_too_large`, unknown route → 404 `route_not_found`,
//! wrong method → 405 `method_not_allowed`) are built by the handler layer
//! with the same constructors.
//!
//! The split between 429, 500 and 503 is deliberate: a tripped budget is
//! the *client's* resource ceiling (retry with a bigger budget → 429), a
//! δ-bounded generation failure is transient by construction (retry with a
//! fresh seed → 503), and a contained worker panic is a server bug → 500.

use cdb_core::SpatialDbError;
use cdb_sampler::compose::ObservabilityError;
use cdb_sampler::BudgetTrip;

use crate::json::Json;

/// A service-level error: HTTP status plus a machine-readable body.
#[derive(Clone, Debug)]
pub struct AppError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code (`snake_case`).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Budget-trip cause (`steps` / `attempts` / `deadline` / `cancelled`),
    /// present only for `budget_exhausted`.
    pub cause: Option<&'static str>,
    /// Items completed before the failure, when the engine reported it.
    pub completed: Option<usize>,
}

impl AppError {
    /// A 400 with code `invalid_params`.
    pub fn invalid_params(message: impl Into<String>) -> Self {
        AppError {
            status: 400,
            code: "invalid_params",
            message: message.into(),
            cause: None,
            completed: None,
        }
    }

    /// A 400 with code `bad_json` (the body failed to parse).
    pub fn bad_json(message: impl Into<String>) -> Self {
        AppError {
            status: 400,
            code: "bad_json",
            message: message.into(),
            cause: None,
            completed: None,
        }
    }

    /// A 404 with code `route_not_found`.
    pub fn route_not_found(path: &str) -> Self {
        AppError {
            status: 404,
            code: "route_not_found",
            message: format!("no route matches {path:?}"),
            cause: None,
            completed: None,
        }
    }

    /// A 405 with code `method_not_allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        AppError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} is not supported on {path:?}"),
            cause: None,
            completed: None,
        }
    }

    /// A 413 with code `body_too_large`.
    pub fn body_too_large(declared: usize, limit: usize) -> Self {
        AppError {
            status: 413,
            code: "body_too_large",
            message: format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
            cause: None,
            completed: None,
        }
    }

    /// The JSON error envelope: `{"error": {"code", "message", ...}}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code".to_string(), Json::str(self.code)),
            ("message".to_string(), Json::str(self.message.clone())),
        ];
        if let Some(cause) = self.cause {
            fields.push(("cause".to_string(), Json::str(cause)));
        }
        if let Some(completed) = self.completed {
            fields.push(("completed".to_string(), Json::count(completed)));
        }
        Json::Object(vec![("error".to_string(), Json::Object(fields))])
    }
}

/// Wire name of a [`BudgetTrip`].
pub fn trip_code(trip: BudgetTrip) -> &'static str {
    match trip {
        BudgetTrip::Steps => "steps",
        BudgetTrip::Attempts => "attempts",
        BudgetTrip::Deadline => "deadline",
        BudgetTrip::Cancelled => "cancelled",
    }
}

impl From<SpatialDbError> for AppError {
    fn from(err: SpatialDbError) -> Self {
        let message = err.to_string();
        match err {
            SpatialDbError::UnknownRelation(_) => AppError {
                status: 404,
                code: "unknown_relation",
                message,
                cause: None,
                completed: None,
            },
            SpatialDbError::InvalidParams(_) => AppError {
                status: 400,
                code: "invalid_params",
                message,
                cause: None,
                completed: None,
            },
            SpatialDbError::NotObservable { source, .. } => {
                // Bad parameters are the caller's fault (400); structural
                // non-observability is a property of the stored relation
                // the request was otherwise well-formed about (422).
                let status = match source {
                    ObservabilityError::InvalidParams(_) => 400,
                    _ => 422,
                };
                AppError {
                    status,
                    code: if status == 400 {
                        "invalid_params"
                    } else {
                        "not_observable"
                    },
                    message,
                    cause: None,
                    completed: None,
                }
            }
            SpatialDbError::BudgetExhausted {
                cause, completed, ..
            } => AppError {
                status: 429,
                code: "budget_exhausted",
                message,
                cause: Some(trip_code(cause)),
                completed: Some(completed),
            },
            SpatialDbError::GenerationFailed { .. } => AppError {
                status: 503,
                code: "generation_failed",
                message,
                cause: None,
                completed: None,
            },
            SpatialDbError::WorkerPanicked { .. } => AppError {
                status: 500,
                code: "worker_panicked",
                message,
                cause: None,
                completed: None,
            },
            SpatialDbError::Reconstruction(_) | SpatialDbError::Symbolic(_) => AppError {
                status: 422,
                code: "not_estimable",
                message,
                cause: None,
                completed: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::QueryPhase;

    #[test]
    fn maps_the_taxonomy() {
        let cases: Vec<(SpatialDbError, u16, &str)> = vec![
            (
                SpatialDbError::UnknownRelation("x".into()),
                404,
                "unknown_relation",
            ),
            (
                SpatialDbError::InvalidParams("n".into()),
                400,
                "invalid_params",
            ),
            (
                SpatialDbError::NotObservable {
                    relation: "x".into(),
                    source: ObservabilityError::Empty,
                },
                422,
                "not_observable",
            ),
            (
                SpatialDbError::NotObservable {
                    relation: "x".into(),
                    source: ObservabilityError::InvalidParams("eps".into()),
                },
                400,
                "invalid_params",
            ),
            (
                SpatialDbError::GenerationFailed {
                    relation: "x".into(),
                    attempts: 3,
                    phase: QueryPhase::Sampling,
                },
                503,
                "generation_failed",
            ),
            (
                SpatialDbError::WorkerPanicked {
                    worker: 1,
                    payload: "boom".into(),
                },
                500,
                "worker_panicked",
            ),
        ];
        for (err, status, code) in cases {
            let app: AppError = err.into();
            assert_eq!((app.status, app.code), (status, code), "{}", app.message);
        }
    }

    #[test]
    fn budget_exhaustion_carries_cause_and_completed() {
        let app: AppError = SpatialDbError::BudgetExhausted {
            relation: "x".into(),
            cause: BudgetTrip::Attempts,
            completed: 7,
        }
        .into();
        assert_eq!(app.status, 429);
        assert_eq!(app.cause, Some("attempts"));
        assert_eq!(app.completed, Some(7));
        let body = app.to_json();
        let err = body.get("error").unwrap();
        assert_eq!(err.get("cause").unwrap().as_str(), Some("attempts"));
        assert_eq!(err.get("completed").unwrap().as_usize(), Some(7));
    }
}
