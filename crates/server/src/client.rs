//! A minimal blocking HTTP/1.1 JSON client for loopback use: the
//! integration tests and the bench harness's HTTP transport.
//!
//! Keep-alive by default; a send on a connection the server has since
//! closed is retried once on a fresh connection (the standard keep-alive
//! race). Not a general-purpose client — no TLS, no redirects, no chunked
//! responses (the server never sends them).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{parse, Json, DEFAULT_MAX_DEPTH};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or talking to the server failed.
    Io(std::io::Error),
    /// The response was not HTTP/1.1 as this client understands it.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o failed: {e}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A server response: status code and raw body text.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Raw body bytes as text.
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, ClientError> {
        parse(&self.body, DEFAULT_MAX_DEPTH)
            .map_err(|e| ClientError::BadResponse(format!("unparseable body: {e}")))
    }
}

/// A blocking keep-alive client bound to one server address.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    connection: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` with a 30 s I/O timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            connection: None,
        }
    }

    /// Overrides the per-operation I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(BufReader::new(stream))
    }

    /// Sends `body` (rendered JSON, or `None` for a body-less GET) and
    /// reads the response. Retries once on a fresh connection if the
    /// kept-alive one turns out dead.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Response, ClientError> {
        let payload = body.map(Json::render);
        let reused = self.connection.is_some();
        let mut conn = match self.connection.take() {
            Some(conn) => conn,
            None => self.connect()?,
        };
        match exchange(&mut conn, method, path, payload.as_deref()) {
            Ok((response, keep)) => {
                if keep {
                    self.connection = Some(conn);
                }
                Ok(response)
            }
            Err(ClientError::Io(_)) if reused => {
                // Keep-alive race: the server closed between requests.
                let mut conn = self.connect()?;
                let (response, keep) = exchange(&mut conn, method, path, payload.as_deref())?;
                if keep {
                    self.connection = Some(conn);
                }
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// Convenience: request + parse the body as JSON.
    pub fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let response = self.request(method, path, body)?;
        let json = response.json()?;
        Ok((response.status, json))
    }
}

fn exchange(
    conn: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    payload: Option<&str>,
) -> Result<(Response, bool), ClientError> {
    let body = payload.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: loopback\r\ncontent-length: {}\r\n{}\r\n",
        body.len(),
        if payload.is_some() {
            "content-type: application/json\r\n"
        } else {
            ""
        },
    );
    {
        // One write per request (see `http::write_response` for why).
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body.as_bytes());
        let stream = conn.get_mut();
        stream.write_all(&wire)?;
        stream.flush()?;
    }

    let status_line = read_line(conn)?;
    let mut parts = status_line.split(' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| ClientError::BadResponse(format!("bad status line {status_line:?}")))?,
        _ => {
            return Err(ClientError::BadResponse(format!(
                "bad status line {status_line:?}"
            )))
        }
    };

    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let line = read_line(conn)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ClientError::BadResponse(format!("bad header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ClientError::BadResponse(format!("bad content-length {value:?}")))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }

    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ClientError::BadResponse("body is not UTF-8".into()))?;
    Ok((Response { status, body }, !close))
}

fn read_line(conn: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    let n = conn.read_line(&mut line)?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}
