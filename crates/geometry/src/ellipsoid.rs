//! Ellipsoids `{ x : (x − c)ᵀ A (x − c) ≤ 1 }` with `A` symmetric positive
//! definite.
//!
//! Ellipsoids play two roles in the reproduction: they are the simplest
//! *polynomial*-constraint convex bodies for the Section 5 extension (the
//! Dyer–Frieze–Kannan machinery only needs a membership oracle), and they are
//! the shape implicitly produced by the rounding step of the sampler.

use cdb_linalg::{Cholesky, Matrix, Vector};

use crate::ball::unit_ball_volume;

/// An ellipsoid in H-like form `{ x : (x − c)ᵀ A (x − c) ≤ 1 }`.
#[derive(Clone, Debug)]
pub struct Ellipsoid {
    center: Vector,
    shape: Matrix,
    chol: Cholesky,
}

impl Ellipsoid {
    /// Builds an ellipsoid from its center and SPD shape matrix `A`.
    /// Returns `None` when `A` is not positive definite.
    pub fn new(center: Vector, shape: Matrix) -> Option<Self> {
        if shape.rows() != center.dim() || !shape.is_square() {
            return None;
        }
        let chol = shape.cholesky().ok()?;
        Some(Ellipsoid {
            center,
            shape,
            chol,
        })
    }

    /// The ball of radius `r` centered at `center`.
    pub fn ball(center: Vector, r: f64) -> Option<Self> {
        if r <= 0.0 {
            return None;
        }
        let d = center.dim();
        Ellipsoid::new(center, Matrix::identity(d).scale(1.0 / (r * r)))
    }

    /// An axis-aligned ellipsoid with the given semi-axis lengths.
    pub fn axis_aligned(center: Vector, semi_axes: &[f64]) -> Option<Self> {
        if semi_axes.len() != center.dim() || semi_axes.iter().any(|&a| a <= 0.0) {
            return None;
        }
        let diag: Vec<f64> = semi_axes.iter().map(|a| 1.0 / (a * a)).collect();
        Ellipsoid::new(center, Matrix::diagonal(&diag))
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.center.dim()
    }

    /// The center `c`.
    pub fn center(&self) -> &Vector {
        &self.center
    }

    /// The shape matrix `A`.
    pub fn shape(&self) -> &Matrix {
        &self.shape
    }

    /// Quadratic form value `(x − c)ᵀ A (x − c)`.
    pub fn quadratic(&self, x: &Vector) -> f64 {
        let diff = x - &self.center;
        self.shape.mul_vector(&diff).dot(&diff)
    }

    /// Membership test with tolerance.
    pub fn contains(&self, x: &Vector, tol: f64) -> bool {
        self.quadratic(x) <= 1.0 + tol
    }

    /// Exact volume: `vol(B_d) / sqrt(det A)`.
    pub fn volume(&self) -> f64 {
        unit_ball_volume(self.dim()) / self.chol.determinant().sqrt()
    }

    /// An axis-aligned bounding box of the ellipsoid.
    ///
    /// The half-width along coordinate `i` is `sqrt((A⁻¹)_{ii})`.
    pub fn bounding_box(&self) -> (Vector, Vector) {
        let d = self.dim();
        let inv = self
            .shape
            .inverse()
            .expect("SPD shape matrix is invertible");
        let mut lo = Vector::zeros(d);
        let mut hi = Vector::zeros(d);
        for i in 0..d {
            let w = inv[(i, i)].max(0.0).sqrt();
            lo[i] = self.center[i] - w;
            hi[i] = self.center[i] + w;
        }
        (lo, hi)
    }

    /// Largest ball radius around the center that stays inside the ellipsoid
    /// (`1 / sqrt(λ_max(A))`, bounded below here via the Cholesky factor's
    /// largest row norm — a valid lower bound that is tight for axis-aligned
    /// shapes).
    pub fn inner_radius_lower_bound(&self) -> f64 {
        let l = self.chol.factor();
        let d = self.dim();
        let mut max_row_norm: f64 = 0.0;
        for i in 0..d {
            let mut s = 0.0;
            for j in 0..d {
                s += l[(i, j)] * l[(i, j)];
            }
            max_row_norm = max_row_norm.max(s.sqrt());
        }
        1.0 / max_row_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn unit_ball_membership_and_volume() {
        let b = Ellipsoid::ball(Vector::zeros(2), 1.0).unwrap();
        assert!(b.contains(&Vector::from(vec![0.5, 0.5]), 0.0));
        assert!(!b.contains(&Vector::from(vec![0.9, 0.9]), 0.0));
        assert!((b.volume() - PI).abs() < 1e-9);
    }

    #[test]
    fn axis_aligned_volume() {
        // Semi-axes 2 and 3: area = 6π.
        let e = Ellipsoid::axis_aligned(Vector::zeros(2), &[2.0, 3.0]).unwrap();
        assert!((e.volume() - 6.0 * PI).abs() < 1e-9);
        assert!(e.contains(&Vector::from(vec![1.9, 0.0]), 0.0));
        assert!(!e.contains(&Vector::from(vec![2.1, 0.0]), 0.0));
        assert!(e.contains(&Vector::from(vec![0.0, 2.9]), 0.0));
    }

    #[test]
    fn shifted_ball() {
        let b = Ellipsoid::ball(Vector::from(vec![10.0, -5.0]), 0.5).unwrap();
        assert!(b.contains(&Vector::from(vec![10.2, -5.1]), 0.0));
        assert!(!b.contains(&Vector::from(vec![9.0, -5.0]), 0.0));
        assert!((b.volume() - PI * 0.25).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_contains_ellipsoid_extremes() {
        let e = Ellipsoid::axis_aligned(Vector::from(vec![1.0, 2.0]), &[0.5, 3.0]).unwrap();
        let (lo, hi) = e.bounding_box();
        assert!((lo[0] - 0.5).abs() < 1e-9 && (hi[0] - 1.5).abs() < 1e-9);
        assert!((lo[1] + 1.0).abs() < 1e-9 && (hi[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_constructions_rejected() {
        assert!(Ellipsoid::ball(Vector::zeros(2), 0.0).is_none());
        assert!(Ellipsoid::axis_aligned(Vector::zeros(2), &[1.0]).is_none());
        assert!(Ellipsoid::axis_aligned(Vector::zeros(2), &[1.0, -1.0]).is_none());
        let indefinite = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(Ellipsoid::new(Vector::zeros(2), indefinite).is_none());
    }

    #[test]
    fn inner_radius_bound_is_safe() {
        let e = Ellipsoid::axis_aligned(Vector::zeros(3), &[0.5, 1.0, 2.0]).unwrap();
        let r = e.inner_radius_lower_bound();
        assert!(r > 0.0 && r <= 0.5 + 1e-9);
        // A ball of radius r around the center is inside the ellipsoid.
        for i in 0..3 {
            let mut p = Vector::zeros(3);
            p[i] = r * 0.999;
            assert!(e.contains(&p, 1e-12));
        }
    }
}
