//! Fiber (cylinder) geometry for coordinate projections.
//!
//! Algorithm 2 of the paper compensates the projection bias of Figure 1 by
//! weighting each projected point `y` with the size of its *fiber*
//! `H_S(y) = S ∩ { x : proj_I(x) = y }`, expressed over the dropped
//! coordinates `F` as the polytope `{ z : A_F·z ≤ b − A_I·y }`. The fiber's
//! constraint *normals* (`A_F`) never change — only the offsets shift with
//! `y` — so building a fresh [`HPolytope`] per query wastes both the
//! structure bookkeeping and one allocation per halfspace.
//!
//! [`FiberTemplate`] constructs the fiber system once and re-aims it at each
//! new base point through [`HPolytope::set_offsets`]: every subsequent query
//! is one `rows × |I|` product plus an O(rows) offset rewrite, with zero
//! allocations.

use crate::volume::polytope_volume;
use crate::{HPolytope, Halfspace};

/// A reusable fiber (cylinder) polytope over the dropped coordinates of a
/// projection, with offsets rewritten in place per projected point.
#[derive(Clone, Debug)]
pub struct FiberTemplate {
    /// The fiber polytope, re-aimed in place by [`FiberTemplate::at`].
    poly: HPolytope,
    /// `rows × |keep|` row-major matrix `A_I` (the kept-coordinate columns of
    /// the source constraint matrix).
    a_keep: Vec<f64>,
    /// The source offsets `b`.
    base_b: Vec<f64>,
    /// Number of kept (projection) coordinates.
    keep_len: usize,
    /// Scratch buffer for the shifted offsets `b − A_I·y`.
    shift: Vec<f64>,
}

impl FiberTemplate {
    /// Builds the fiber template of `proj_keep(source)`: the fiber above `y`
    /// lives in the complement coordinates (ascending order) and is obtained
    /// from the template by an offset rewrite. `keep` must list distinct
    /// in-range coordinates.
    pub fn new(source: &HPolytope, keep: &[usize]) -> Self {
        let d = source.dim();
        assert!(
            keep.iter().all(|&k| k < d),
            "projection coordinate out of range"
        );
        let fiber_coords: Vec<usize> = (0..d).filter(|i| !keep.contains(i)).collect();
        let fiber_dim = fiber_coords.len();
        let rows = source.n_constraints();
        let mut a_keep = Vec::with_capacity(rows * keep.len());
        let halfspaces: Vec<Halfspace> = source
            .halfspaces()
            .iter()
            .map(|h| {
                a_keep.extend(keep.iter().map(|&i| h.normal()[i]));
                let normal: Vec<f64> = fiber_coords.iter().map(|&i| h.normal()[i]).collect();
                Halfspace::from_slice(&normal, h.offset())
            })
            .collect();
        // Re-aimed per query and scanned a handful of times each: pin the
        // dense representation, skipping structure detection.
        let poly = HPolytope::new_dense(fiber_dim, halfspaces);
        FiberTemplate {
            poly,
            a_keep,
            base_b: source.dense_b().to_vec(),
            keep_len: keep.len(),
            shift: vec![0.0; rows],
        }
    }

    /// Dimension of the fiber (number of dropped coordinates).
    pub fn fiber_dim(&self) -> usize {
        self.poly.dim()
    }

    /// Re-aims the template at the projected point `y` (`|y| == |keep|`) and
    /// returns the fiber polytope `{ z : A_F·z ≤ b − A_I·y }`. Allocation-free
    /// after construction; the returned reference is invalidated by the next
    /// call.
    pub fn at(&mut self, y: &[f64]) -> &HPolytope {
        assert_eq!(y.len(), self.keep_len, "projected point length mismatch");
        for (i, s) in self.shift.iter_mut().enumerate() {
            let row = &self.a_keep[i * self.keep_len..(i + 1) * self.keep_len];
            // The iterator `sum()` reduction, matching the halfspace-by-
            // halfspace construction of a fresh fiber polytope bit for bit
            // (including the signed zeros its fold seed produces).
            let fixed: f64 = row.iter().zip(y).map(|(&a, &yj)| a * yj).sum();
            *s = self.base_b[i] - fixed;
        }
        self.poly.set_offsets(&self.shift);
        &self.poly
    }

    /// Exact fiber volume above `y` by vertex enumeration — the `Exact`
    /// entry point of the compensation-weight subsystem. Exponential in
    /// [`FiberTemplate::fiber_dim`]; see the `Estimated` strategy in
    /// `cdb-sampler` for higher fiber dimensions.
    pub fn exact_volume(&mut self, y: &[f64]) -> f64 {
        polytope_volume(self.at(y))
    }

    /// Residuals `b − A_I·y` of the kept block alone, written into `out`
    /// with the same reduction as [`FiberTemplate::at`] — exposed for
    /// diagnostics and tests.
    pub fn shifted_offsets_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.keep_len, "projected point length mismatch");
        assert_eq!(
            out.len(),
            self.base_b.len(),
            "offset buffer length mismatch"
        );
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.a_keep[i * self.keep_len..(i + 1) * self.keep_len];
            let fixed: f64 = row.iter().zip(y).map(|(&a, &yj)| a * yj).sum();
            *o = self.base_b[i] - fixed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-1 triangle `0 ≤ x ≤ 1, 0 ≤ y ≤ x`.
    fn triangle() -> HPolytope {
        HPolytope::new(
            2,
            vec![
                Halfspace::lower_bound(2, 0, 0.0),
                Halfspace::upper_bound(2, 0, 1.0),
                Halfspace::lower_bound(2, 1, 0.0),
                Halfspace::from_slice(&[-1.0, 1.0], 0.0), // y ≤ x
            ],
        )
    }

    /// A fresh fiber polytope built the slow way, for equality checks.
    fn fresh_fiber(source: &HPolytope, keep: &[usize], y: &[f64]) -> HPolytope {
        let d = source.dim();
        let fiber_coords: Vec<usize> = (0..d).filter(|i| !keep.contains(i)).collect();
        let halfspaces = source
            .halfspaces()
            .iter()
            .map(|h| {
                let normal: Vec<f64> = fiber_coords.iter().map(|&i| h.normal()[i]).collect();
                let fixed: f64 = keep
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| h.normal()[i] * y[j])
                    .sum();
                Halfspace::from_slice(&normal, h.offset() - fixed)
            })
            .collect();
        HPolytope::new_dense(fiber_coords.len(), halfspaces)
    }

    #[test]
    fn template_matches_fresh_construction_exactly() {
        let tri = triangle();
        let mut template = FiberTemplate::new(&tri, &[0]);
        assert_eq!(template.fiber_dim(), 1);
        for y in [[0.0], [0.25], [0.5], [0.997], [1.0]] {
            let fresh = fresh_fiber(&tri, &[0], &y);
            let fiber = template.at(&y);
            assert_eq!(fiber, &fresh, "fiber at {y:?} differs");
            // Offsets are bitwise identical, not merely equal.
            for (a, b) in fiber.dense_b().iter().zip(fresh.dense_b()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn template_reaiming_tracks_the_fiber_geometry() {
        let tri = triangle();
        let mut template = FiberTemplate::new(&tri, &[0]);
        // At x = 0.5 the fiber is the segment 0 ≤ y ≤ 0.5.
        let fiber = template.at(&[0.5]);
        assert!(fiber.contains_slice(&[0.25], 1e-9));
        assert!(!fiber.contains_slice(&[0.75], 1e-9));
        assert!((template.exact_volume(&[0.5]) - 0.5).abs() < 1e-9);
        // Re-aiming the same template moves the fiber.
        assert!((template.exact_volume(&[0.1]) - 0.1).abs() < 1e-9);
        assert!((template.exact_volume(&[0.9]) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn higher_dimensional_fibers() {
        // The box [0,1]^3 projected onto x0: fibers are unit squares.
        let cube = HPolytope::axis_box(&[0.0; 3], &[1.0; 3]);
        let mut template = FiberTemplate::new(&cube, &[0]);
        assert_eq!(template.fiber_dim(), 2);
        assert!((template.exact_volume(&[0.5]) - 1.0).abs() < 1e-9);
        // Outside the projection the fiber is empty.
        assert_eq!(template.exact_volume(&[2.0]), 0.0);
    }

    #[test]
    fn shifted_offsets_match_the_definition() {
        let tri = triangle();
        let template = FiberTemplate::new(&tri, &[0]);
        let mut out = vec![0.0; 4];
        template.shifted_offsets_into(&[0.5], &mut out);
        // Rows: -x ≤ 0 → 0 + 0.5; x ≤ 1 → 1 - 0.5; -y ≤ 0 → 0; -x + y ≤ 0 → 0.5.
        assert_eq!(out, vec![0.5, 0.5, 0.0, 0.5]);
    }

    #[test]
    fn keeping_every_coordinate_gives_a_zero_dimensional_template() {
        let tri = triangle();
        let mut template = FiberTemplate::new(&tri, &[0, 1]);
        assert_eq!(template.fiber_dim(), 0);
        let fiber = template.at(&[0.5, 0.25]);
        assert_eq!(fiber.dim(), 0);
    }
}
